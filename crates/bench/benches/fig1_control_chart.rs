//! FIG1 bench: regenerating the example control chart (Figure 1) at
//! reduced scale — a fresh normal run scored into a T² chart with its
//! 95 %/99 % limits.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use temspc::experiments::{fig1, fig2};
use temspc_bench::bench_context;

fn bench_fig1(c: &mut Criterion) {
    let ctx = bench_context("temspc_bench_fig1");
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("control_chart", |b| {
        b.iter(|| {
            let r = fig1::run(black_box(&ctx)).expect("fig1");
            black_box(r.fraction_below_99)
        })
    });
    group.bench_function("fig2_wire_trace", |b| {
        b.iter(|| {
            let r = fig2::run(black_box(&ctx)).expect("fig2");
            black_box(r.received_xmeas1)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
