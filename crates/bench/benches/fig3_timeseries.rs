//! FIG3 bench: regenerating the XMEAS(1) traces of Figure 3 (IDV(6) vs
//! integrity attack on XMV(3)) at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use temspc::experiments::fig3;
use temspc_bench::bench_context;

fn bench_fig3(c: &mut Criterion) {
    let ctx = bench_context("temspc_bench_fig3");
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("xmeas1_traces", |b| {
        b.iter(|| {
            let r = fig3::run(black_box(&ctx)).expect("fig3");
            black_box((r.pre_onset_mean, r.post_onset_mean))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
