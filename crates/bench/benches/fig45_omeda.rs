//! FIG4/FIG5 bench: regenerating the dual-level oMEDA panels of Figures 4
//! and 5 at reduced scale (one run per scenario).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use temspc::experiments::fig45;
use temspc_bench::bench_context;

fn bench_fig45(c: &mut Criterion) {
    let ctx = bench_context("temspc_bench_fig45");
    let mut group = c.benchmark_group("fig45");
    group.sample_size(10);
    group.bench_function("omeda_panels", |b| {
        b.iter(|| {
            let r = fig45::run(black_box(&ctx)).expect("fig45");
            black_box(r.controller_panels.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig45);
criterion_main!(benches);
