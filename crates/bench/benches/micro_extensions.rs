//! Micro-benchmarks of the extension substrates: TPB persistence, the GMM
//! baseline, PRESS cross-validation and traffic aggregation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use temspc_fieldbus::TrafficMonitor;
use temspc_linalg::rng::GaussianSampler;
use temspc_linalg::Matrix;
use temspc_mspc::crossval::press_cross_validation;
use temspc_mspc::gmm::{GmmConfig, GmmModel};
use temspc_mspc::{MspcConfig, MspcModel};

fn synthetic(n: usize, m: usize, seed: u64) -> Matrix {
    let mut rng = GaussianSampler::seed_from(seed);
    let mut x = Matrix::zeros(n, m);
    for r in 0..n {
        let t1 = rng.next_gaussian();
        let t2 = rng.next_gaussian();
        for c in 0..m {
            let w1 = ((c * 3 + 1) % 7) as f64 / 7.0 - 0.5;
            let w2 = ((c * 5 + 2) % 11) as f64 / 11.0 - 0.5;
            x.set(r, c, w1 * t1 + w2 * t2 + 0.1 * rng.next_gaussian());
        }
    }
    x
}

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_extensions");

    // TPB persistence of a realistic MSPC model.
    let calib = synthetic(1000, 53, 1);
    let model = MspcModel::fit(&calib, MspcConfig::default()).unwrap();
    group.bench_function("tpb_serialize_mspc_model", |b| {
        b.iter(|| temspc_persist::to_bytes(black_box(&model)).unwrap())
    });
    let bytes = temspc_persist::to_bytes(&model).unwrap();
    group.bench_function("tpb_deserialize_mspc_model", |b| {
        b.iter(|| temspc_persist::from_bytes::<MspcModel>(black_box(&bytes)).unwrap())
    });

    // GMM baseline.
    let gx = synthetic(500, 20, 2);
    group.sample_size(10);
    group.bench_function("gmm_fit_500x20_k4", |b| {
        b.iter(|| GmmModel::fit(black_box(&gx), GmmConfig::default()).unwrap())
    });
    let gmm = GmmModel::fit(&gx, GmmConfig::default()).unwrap();
    let obs: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
    group.bench_function("gmm_score_20", |b| {
        b.iter(|| gmm.score(black_box(&obs)).unwrap())
    });

    // PRESS cross-validation.
    let px = synthetic(150, 8, 3);
    group.bench_function("press_cv_150x8_a4_f4", |b| {
        b.iter(|| press_cross_validation(black_box(&px), 4, 4).unwrap())
    });

    // Traffic aggregation throughput.
    group.bench_function("traffic_observe_window", |b| {
        let mut tap = TrafficMonitor::new(0.02, 41, 12);
        let up = vec![1.0; 41];
        let down = vec![50.0; 12];
        let mut hour = 0.0;
        b.iter(|| {
            hour += 0.0005;
            black_box(tap.observe_uplink(hour, 346, &up));
            black_box(tap.observe_downlink(hour, 114, &down));
        })
    });

    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
