//! Fleet scaling benchmark: wall-clock of a multi-plant campaign as the
//! fleet grows from 1 to 16 plants, at 1 thread vs a pooled thread
//! count — the speedup of the worker pool is the headline number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use temspc::{CalibrationConfig, DualMspc};
use temspc_fleet::{FleetConfig, FleetEngine};

fn quick_monitor() -> DualMspc {
    DualMspc::calibrate(&CalibrationConfig {
        runs: 2,
        duration_hours: 0.5,
        record_every: 10,
        base_seed: 100,
        threads: 0,
    })
    .unwrap()
}

fn fleet_config(plants: usize, threads: usize) -> FleetConfig {
    FleetConfig {
        plants,
        threads,
        hours: 0.25,
        onset_hour: 0.05,
        attack_fraction: 0.25,
        fleet_seed: 7,
        checkpoint_every: 0,
        ..FleetConfig::default()
    }
}

fn bench_fleet(c: &mut Criterion) {
    let monitor = quick_monitor();
    let mut group = c.benchmark_group("micro_fleet");
    group.sample_size(10);

    // Engines are built *outside* the timing loop: each holds its
    // persistent worker pool, so the iterations measure the steady-state
    // campaign cost a long-lived service pays — not thread spawning and
    // cold per-thread caches, which the old per-run pool re-paid every
    // iteration.
    for &plants in &[1usize, 2, 4, 8, 16] {
        let one_thread = FleetEngine::new(&monitor, fleet_config(plants, 1));
        group.bench_with_input(
            BenchmarkId::new("plants_1thread", plants),
            &plants,
            |b, _| b.iter(|| black_box(&one_thread).run().unwrap()),
        );
        let four_threads = FleetEngine::new(&monitor, fleet_config(plants, 4));
        group.bench_with_input(
            BenchmarkId::new("plants_4threads", plants),
            &plants,
            |b, _| b.iter(|| black_box(&four_threads).run().unwrap()),
        );
    }

    // The pooled calibration path vs the sequential one, same campaign.
    let calib = CalibrationConfig {
        runs: 4,
        duration_hours: 0.25,
        record_every: 10,
        base_seed: 500,
        threads: 4,
    };
    group.bench_function("calibration_sequential_4runs", |b| {
        b.iter(|| temspc::collect_calibration_data(black_box(&calib)).unwrap())
    });
    group.bench_function("calibration_pooled_4runs", |b| {
        b.iter(|| temspc_fleet::collect_calibration_data_pooled(black_box(&calib)).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
