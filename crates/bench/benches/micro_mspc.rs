//! Micro-benchmarks of the MSPC kernels: PCA fit, observation scoring,
//! dataset scoring, oMEDA, control-limit computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use temspc_linalg::rng::GaussianSampler;
use temspc_linalg::Matrix;
use temspc_mspc::pca::ComponentSelection;
use temspc_mspc::{omeda, MspcConfig, MspcModel, PcaModel};

/// Synthetic 53-variable plant-like calibration data.
fn synthetic(n: usize, m: usize, seed: u64) -> Matrix {
    let mut rng = GaussianSampler::seed_from(seed);
    let mut x = Matrix::zeros(n, m);
    let k = 8.min(m);
    for r in 0..n {
        let latents: Vec<f64> = (0..k).map(|_| rng.next_gaussian()).collect();
        for c in 0..m {
            let mut v = 0.1 * rng.next_gaussian();
            for (j, l) in latents.iter().enumerate() {
                v += l * (((c + j * 7) % 13) as f64 / 13.0 - 0.5);
            }
            x.set(r, c, v);
        }
    }
    x
}

fn bench_mspc(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_mspc");

    for &n in &[500usize, 2000] {
        let x = synthetic(n, 53, 1);
        group.bench_with_input(BenchmarkId::new("pca_fit_eigen", n), &x, |b, x| {
            b.iter(|| PcaModel::fit(black_box(x), ComponentSelection::VarianceFraction(0.9)))
        });
    }

    let x = synthetic(500, 12, 2);
    group.bench_function("pca_fit_nipals_500x12_a4", |b| {
        b.iter(|| PcaModel::fit_nipals(black_box(&x), 4))
    });

    let calib = synthetic(2000, 53, 3);
    let model = MspcModel::fit(&calib, MspcConfig::default()).unwrap();
    let obs: Vec<f64> = (0..53).map(|i| (i as f64 * 0.37).sin()).collect();
    group.bench_function("score_observation_53", |b| {
        b.iter(|| model.score(black_box(&obs)))
    });

    let fresh = synthetic(2000, 53, 4);
    group.bench_function("score_dataset_2000x53", |b| {
        b.iter(|| model.score_dataset(black_box(&fresh)))
    });

    let event = synthetic(100, 53, 5);
    let dummy = vec![1.0; 100];
    group.bench_function("omeda_100x53", |b| {
        b.iter(|| omeda(black_box(&event), black_box(&dummy), model.pca()))
    });

    group.finish();
}

criterion_group!(benches, bench_mspc);
criterion_main!(benches);
