//! Micro-benchmarks of the simulation substrate: plant step, control
//! scan, full closed-loop hour, and the fieldbus frame codec.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use temspc::{ClosedLoopRunner, Scenario, ScenarioKind};
use temspc_control::DecentralizedController;
use temspc_fieldbus::{Frame, FrameKind};
use temspc_tesim::{PlantConfig, TePlant};

fn bench_plant(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_plant");

    group.bench_function("plant_step_1.8s", |b| {
        let mut plant = TePlant::new(PlantConfig::default(), 1);
        let xmv = plant.nominal_xmv();
        b.iter(|| {
            if plant.step(black_box(&xmv)).is_err() {
                plant = TePlant::new(PlantConfig::default(), 1);
            }
            black_box(plant.hour())
        })
    });

    group.bench_function("measurements_41", |b| {
        let mut plant = TePlant::new(PlantConfig::default(), 2);
        let xmv = plant.nominal_xmv();
        plant.step(&xmv).unwrap();
        b.iter(|| black_box(plant.measurements()))
    });

    group.bench_function("control_scan_53", |b| {
        let mut plant = TePlant::new(PlantConfig::default(), 3);
        let xmv = plant.nominal_xmv();
        plant.step(&xmv).unwrap();
        let xmeas = plant.measurements();
        let mut controller = DecentralizedController::new();
        b.iter(|| black_box(controller.step(black_box(xmeas.as_slice()))))
    });

    let mut group2 = {
        group.finish();
        c.benchmark_group("closed_loop")
    };
    group2.sample_size(10);
    group2.bench_function("one_hour_2000_steps", |b| {
        b.iter(|| {
            let scenario = Scenario::short(ScenarioKind::Normal, 1.0, f64::INFINITY, 7);
            let data = ClosedLoopRunner::new(&scenario).run(100, |_| {}).unwrap();
            black_box(data.hours.len())
        })
    });
    group2.finish();

    let mut group3 = c.benchmark_group("fieldbus");
    let frame = Frame::new(FrameKind::SensorReport, 42, 10.0, vec![1.5; 41]);
    group3.bench_function("frame_encode_41", |b| {
        b.iter(|| black_box(&frame).encode().unwrap())
    });
    let wire = frame.encode().unwrap();
    group3.bench_function("frame_decode_41", |b| {
        b.iter(|| Frame::decode(black_box(&wire)).unwrap())
    });
    group3.finish();
}

criterion_group!(benches, bench_plant);
criterion_main!(benches);
