//! TAB1 bench: regenerating the ARL table (detection run lengths per
//! scenario) at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use temspc::experiments::{arl, netdos, verdicts};
use temspc::netmon::NetworkMonitor;
use temspc::CalibrationConfig;
use temspc_bench::bench_context;

fn bench_tab1(c: &mut Criterion) {
    let ctx = bench_context("temspc_bench_tab1");
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("tab1_arl", |b| {
        b.iter(|| {
            let r = arl::run(black_box(&ctx)).expect("arl");
            black_box(r.rows.len())
        })
    });
    group.bench_function("tab2_verdicts", |b| {
        b.iter(|| {
            let r = verdicts::run(black_box(&ctx)).expect("verdicts");
            black_box(r.accuracy())
        })
    });
    let network = NetworkMonitor::calibrate(
        &CalibrationConfig {
            runs: 2,
            duration_hours: 0.5,
            record_every: 50,
            base_seed: 900,
            threads: 0,
        },
        0.02,
    )
    .expect("network calibration");
    group.bench_function("tab3_network_ablation", |b| {
        b.iter(|| {
            let r = netdos::run(black_box(&ctx), black_box(&network)).expect("netdos");
            black_box(r.network_arl)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tab1);
criterion_main!(benches);
