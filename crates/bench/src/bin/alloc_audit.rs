//! `alloc_audit` — counts heap allocations in the closed-loop hot path.
//!
//! Installs a counting `#[global_allocator]` and runs the same scenario
//! at two durations, twice each (the first run of each pair warms the
//! per-thread scratches; only the second is counted). The difference
//! between the two warm counts, divided by the extra simulated time,
//! is the **marginal allocations per simulated hour** — the number the
//! steady-state closed loop actually pays per step, with per-run setup
//! (plant construction, recording-matrix pre-sizing, `RunData`
//! assembly) cancelled out.
//!
//! ```text
//! cargo run --release -p temspc-bench --bin alloc_audit
//! cargo run --release -p temspc-bench --bin alloc_audit -- --monitored
//! ```
//!
//! At 2000 samples per simulated hour, a per-hour marginal of 0 means
//! the per-step loop performs zero steady-state heap allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use temspc::{CalibrationConfig, ClosedLoopRunner, DualMspc, Scenario, ScenarioKind};
use temspc_tesim::SAMPLES_PER_HOUR;

/// System allocator wrapper counting every alloc/realloc call.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counter has no
// effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn count_allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn scenario(hours: f64) -> Scenario {
    Scenario::short(ScenarioKind::Normal, hours, hours * 0.5, 11)
}

/// Warm run + counted run of the raw closed loop at `hours`.
fn raw_loop_allocs(hours: f64) -> u64 {
    ClosedLoopRunner::new(&scenario(hours))
        .run(50, |_| {})
        .expect("audit run");
    count_allocations(|| {
        ClosedLoopRunner::new(&scenario(hours))
            .run(50, |_| {})
            .expect("audit run");
    })
}

/// Warm run + counted run of the fully monitored loop (closed loop +
/// dual-level MSPC scoring) at `hours`.
fn monitored_loop_allocs(monitor: &DualMspc, hours: f64) -> u64 {
    monitor.run_scenario(&scenario(hours)).expect("audit run");
    count_allocations(|| {
        monitor.run_scenario(&scenario(hours)).expect("audit run");
    })
}

fn report(path_name: &str, short_hours: f64, long_hours: f64, short: u64, long: u64) {
    let extra_hours = long_hours - short_hours;
    let marginal = long.saturating_sub(short);
    let per_hour = marginal as f64 / extra_hours;
    let per_step = per_hour / SAMPLES_PER_HOUR as f64;
    println!("{path_name}:");
    println!("  warm run @ {short_hours} h: {short} allocations");
    println!("  warm run @ {long_hours} h: {long} allocations");
    println!(
        "  marginal: {marginal} allocations / {extra_hours} extra simulated h \
         = {per_hour:.1} allocs/sim-hour ({per_step:.4} per step)"
    );
}

fn main() {
    let monitored = std::env::args().any(|a| a == "--monitored");
    let (short_hours, long_hours) = (0.25, 0.75);

    let short = raw_loop_allocs(short_hours);
    let long = raw_loop_allocs(long_hours);
    report("closed loop (raw)", short_hours, long_hours, short, long);

    if monitored {
        let monitor = DualMspc::calibrate(&CalibrationConfig {
            runs: 2,
            duration_hours: 0.5,
            record_every: 10,
            base_seed: 100,
            threads: 1,
        })
        .expect("audit calibration");
        let short = monitored_loop_allocs(&monitor, short_hours);
        let long = monitored_loop_allocs(&monitor, long_hours);
        report(
            "closed loop + dual MSPC scoring",
            short_hours,
            long_hours,
            short,
            long,
        );
    }
}
