//! `bench_fleet` — the threads × plants parallel-efficiency sweep,
//! folded into `BENCH_fleet.json`.
//!
//! Two modes:
//!
//! - **Sweep** (default): time every (threads, plants) cell with a
//!   persistent engine, print the speedup/efficiency table, and fold the
//!   medians into the trajectory file. The run label carries the
//!   machine's `available_parallelism` (e.g. `post-PR5@ap4`) so the
//!   committed trajectory stays interpretable across machines; bench ids
//!   (`fleet_sweep/plants{P}_threads{T}`) carry only cell coordinates.
//! - **Smoke** (`--smoke`): the CI scaling gate — 2 threads vs 1 thread
//!   at one fleet size, asserting speedup ≥ a tolerant threshold
//!   (default 1.3×). When `available_parallelism < 2` the check cannot
//!   mean anything, so it skips with a logged notice and exits 0.
//!
//! ```text
//! cargo run --release -p temspc-bench --bin bench_fleet -- --label post-PR5
//! cargo run --release -p temspc-bench --bin bench_fleet -- --smoke
//! ```

use std::process::ExitCode;

use temspc_bench::sweep::{run_sweep, SweepConfig};
use temspc_bench::trajectory::{fold_into_trajectory, Run};

fn usage() -> String {
    "usage: bench_fleet [--plants 4,8,16] [--threads 1,2,4] [--hours 0.25] [--samples 3] \
     [--label <label>] [--trajectory BENCH_fleet.json] [--dry-run]\n\
     \x20      bench_fleet --smoke [--smoke-plants 8] [--min-speedup 1.3] [--hours 0.25] \
     [--samples 3]"
        .to_owned()
}

fn parse_list(text: &str) -> Result<Vec<usize>, String> {
    text.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad list element {p:?} (expected e.g. 1,2,4)"))
        })
        .collect()
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn run_main() -> Result<(), String> {
    let mut config = SweepConfig::default();
    let mut label: Option<String> = None;
    let mut trajectory_path = "BENCH_fleet.json".to_owned();
    let mut dry_run = false;
    let mut smoke = false;
    let mut smoke_plants = 8usize;
    let mut min_speedup = 1.3f64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--plants" => config.plants = parse_list(&next("--plants")?)?,
            "--threads" => config.threads = parse_list(&next("--threads")?)?,
            "--hours" => {
                config.hours = next("--hours")?
                    .parse()
                    .map_err(|_| "bad --hours".to_owned())?;
            }
            "--samples" => {
                config.samples = next("--samples")?
                    .parse()
                    .map_err(|_| "bad --samples".to_owned())?;
            }
            "--label" => label = Some(next("--label")?),
            "--trajectory" => trajectory_path = next("--trajectory")?,
            "--dry-run" => dry_run = true,
            "--smoke" => smoke = true,
            "--smoke-plants" => {
                smoke_plants = next("--smoke-plants")?
                    .parse()
                    .map_err(|_| "bad --smoke-plants".to_owned())?;
            }
            "--min-speedup" => {
                min_speedup = next("--min-speedup")?
                    .parse()
                    .map_err(|_| "bad --min-speedup".to_owned())?;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
    }

    if smoke {
        return run_smoke(&config, smoke_plants, min_speedup);
    }

    let ap = available_parallelism();
    let report = run_sweep(&config);
    print!("{}", report.table());
    let label = label.unwrap_or_else(|| format!("sweep@ap{ap}"));
    // Machine context goes into the label, not the ids.
    let label = if label.contains("@ap") {
        label
    } else {
        format!("{label}@ap{ap}")
    };
    fold_into_trajectory(
        &trajectory_path,
        Run {
            label,
            results: report.to_results(),
        },
        dry_run,
    )
}

/// The CI scaling gate: 2 threads must beat 1 thread by `min_speedup` at
/// `plants` plants — unless the runner has only one core, in which case
/// the comparison is meaningless and is skipped loudly.
fn run_smoke(config: &SweepConfig, plants: usize, min_speedup: f64) -> Result<(), String> {
    let ap = available_parallelism();
    if ap < 2 {
        println!(
            "bench_fleet --smoke: SKIPPED — available_parallelism={ap} < 2; \
             a 2-thread vs 1-thread comparison cannot show scaling on this runner"
        );
        return Ok(());
    }
    let report = run_sweep(&SweepConfig {
        plants: vec![plants],
        threads: vec![1, 2],
        ..config.clone()
    });
    print!("{}", report.table());
    let cell = report
        .cell(2, plants)
        .ok_or_else(|| "smoke sweep produced no 2-thread cell".to_owned())?;
    if cell.speedup >= min_speedup {
        println!(
            "bench_fleet --smoke: OK — 2-thread speedup {:.2}x >= {min_speedup:.2}x at \
             {plants} plants (available_parallelism={ap})",
            cell.speedup
        );
        Ok(())
    } else {
        Err(format!(
            "scaling regression: 2-thread speedup {:.2}x < {min_speedup:.2}x at {plants} \
             plants (available_parallelism={ap})",
            cell.speedup
        ))
    }
}

fn main() -> ExitCode {
    match run_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_fleet: {e}");
            ExitCode::FAILURE
        }
    }
}
