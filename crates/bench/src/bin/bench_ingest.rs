//! `bench_ingest` — the loopback ingestion sweep, folded into
//! `BENCH_ingest.json`.
//!
//! Two modes:
//!
//! - **Sweep** (default): time every (connections, rate) cell of the
//!   ingestion grid against a live loopback server, print the throughput
//!   table, and fold the elapsed medians into the trajectory file. The
//!   run label carries `available_parallelism` (e.g. `post-PR6@ap4`);
//!   bench ids (`ingest_sweep/conns{C}_rate{R}`, prefixed `store{K}_`
//!   when `--cohorts K` serves through a model store) carry only the
//!   cell coordinates.
//! - **Smoke** (`--smoke`): the CI ingestion gate — 64 concurrent
//!   connections must complete end-to-end with **zero** dropped steps,
//!   zero reassembly errors, and an achieved per-connection frame rate
//!   of at least 1 frame/s.
//!
//! ```text
//! cargo run --release -p temspc-bench --bin bench_ingest -- --label post-PR6
//! cargo run --release -p temspc-bench --bin bench_ingest -- --smoke
//! ```

use std::process::ExitCode;

use temspc_bench::ingest_sweep::{run_ingest_sweep, IngestSweepConfig};
use temspc_bench::trajectory::{fold_into_trajectory, Run};

fn usage() -> String {
    "usage: bench_ingest [--connections 1,16,64] [--rates 0,100] [--tape-hours 0.05] \
     [--queue-depth 64] [--batch-steps 256] [--threads 0] [--cohorts 0] [--label <label>] \
     [--trajectory BENCH_ingest.json] [--dry-run]\n\
     \x20      bench_ingest --smoke [--smoke-connections 64] [--min-rate 1.0] [--tape-hours 0.05]\n\
     \x20      --cohorts K >= 1 serves through a model store (store{K}_ bench-id prefix)"
        .to_owned()
}

fn parse_usize_list(text: &str) -> Result<Vec<usize>, String> {
    text.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad list element {p:?} (expected e.g. 1,16,64)"))
        })
        .collect()
}

fn parse_f64_list(text: &str) -> Result<Vec<f64>, String> {
    text.split(',')
        .map(|p| {
            p.trim()
                .parse::<f64>()
                .map_err(|_| format!("bad list element {p:?} (expected e.g. 0,100)"))
        })
        .collect()
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn run_main() -> Result<(), String> {
    let mut config = IngestSweepConfig::default();
    let mut label: Option<String> = None;
    let mut trajectory_path = "BENCH_ingest.json".to_owned();
    let mut dry_run = false;
    let mut smoke = false;
    let mut smoke_connections = 64usize;
    let mut min_rate = 1.0f64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--connections" => config.connections = parse_usize_list(&next("--connections")?)?,
            "--rates" => config.rates = parse_f64_list(&next("--rates")?)?,
            "--tape-hours" => {
                config.tape_hours = next("--tape-hours")?
                    .parse()
                    .map_err(|_| "bad --tape-hours".to_owned())?;
            }
            "--queue-depth" => {
                config.queue_depth = next("--queue-depth")?
                    .parse()
                    .map_err(|_| "bad --queue-depth".to_owned())?;
            }
            "--batch-steps" => {
                config.batch_steps = next("--batch-steps")?
                    .parse()
                    .map_err(|_| "bad --batch-steps".to_owned())?;
            }
            "--threads" => {
                config.threads = next("--threads")?
                    .parse()
                    .map_err(|_| "bad --threads".to_owned())?;
            }
            "--cohorts" => {
                config.cohorts = next("--cohorts")?
                    .parse()
                    .map_err(|_| "bad --cohorts".to_owned())?;
            }
            "--label" => label = Some(next("--label")?),
            "--trajectory" => trajectory_path = next("--trajectory")?,
            "--dry-run" => dry_run = true,
            "--smoke" => smoke = true,
            "--smoke-connections" => {
                smoke_connections = next("--smoke-connections")?
                    .parse()
                    .map_err(|_| "bad --smoke-connections".to_owned())?;
            }
            "--min-rate" => {
                min_rate = next("--min-rate")?
                    .parse()
                    .map_err(|_| "bad --min-rate".to_owned())?;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
    }

    if smoke {
        return run_smoke(&config, smoke_connections, min_rate);
    }

    let ap = available_parallelism();
    let report = run_ingest_sweep(&config);
    print!("{}", report.table());
    for cell in &report.cells {
        if cell.drops > 0 || cell.reassembly_errors > 0 {
            return Err(format!(
                "unhealthy cell conns={} rate={}: {} dropped step(s), {} reassembly error(s)",
                cell.connections, cell.rate, cell.drops, cell.reassembly_errors
            ));
        }
    }
    let label = label.unwrap_or_else(|| format!("ingest@ap{ap}"));
    // Machine context goes into the label, not the ids.
    let label = if label.contains("@ap") {
        label
    } else {
        format!("{label}@ap{ap}")
    };
    fold_into_trajectory(
        &trajectory_path,
        Run {
            label,
            results: report.to_results(),
        },
        dry_run,
    )
}

/// The CI ingestion gate: `connections` concurrent loopback streams must
/// complete with zero drops, zero reassembly errors, and at least
/// `min_rate` frames/s per connection.
fn run_smoke(config: &IngestSweepConfig, connections: usize, min_rate: f64) -> Result<(), String> {
    let report = run_ingest_sweep(&IngestSweepConfig {
        connections: vec![connections],
        rates: vec![0.0],
        ..config.clone()
    });
    print!("{}", report.table());
    let cell = report
        .cells
        .first()
        .ok_or_else(|| "smoke sweep produced no cell".to_owned())?;
    if cell.completed != connections {
        return Err(format!(
            "only {}/{connections} connections completed end-to-end",
            cell.completed
        ));
    }
    if cell.drops > 0 {
        return Err(format!("{} step(s) dropped under backpressure", cell.drops));
    }
    if cell.reassembly_errors > 0 {
        return Err(format!("{} reassembly error(s)", cell.reassembly_errors));
    }
    if cell.achieved_rate < min_rate {
        return Err(format!(
            "achieved {:.2} frames/s per connection < required {min_rate:.2}",
            cell.achieved_rate
        ));
    }
    println!(
        "bench_ingest --smoke: OK — {connections} connections, {:.1} frames/s each, zero drops",
        cell.achieved_rate
    );
    Ok(())
}

fn main() -> ExitCode {
    match run_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_ingest: {e}");
            ExitCode::FAILURE
        }
    }
}
