//! `bench_scoring` — folds bench measurements into `BENCH_scoring.json`.
//!
//! The vendored criterion stub appends one NDJSON record per measurement
//! when `TEMSPC_BENCH_JSON=<path>` is set:
//!
//! ```text
//! {"id":"micro_mspc/score_dataset_2000x53","median_ns":1270245}
//! ```
//!
//! This tool reads those records, appends them as one labelled run to a
//! trajectory file (default `BENCH_scoring.json`), and prints a
//! comparison of the new run against the previous and first runs. The
//! trajectory is the repo's committed record of how the scoring hot path
//! performs over time (see [`temspc_bench::trajectory`] for the format).
//!
//! Usage:
//!
//! ```text
//! TEMSPC_BENCH_JSON=/tmp/run.ndjson cargo bench -p temspc-bench --bench micro_mspc
//! cargo run -p temspc-bench --bin bench_scoring -- \
//!     --ndjson /tmp/run.ndjson --label post-PR2 --trajectory BENCH_scoring.json
//! ```

use std::process::ExitCode;

use temspc_bench::trajectory::{fold_into_trajectory, parse_ndjson, Run};

fn usage() -> String {
    "usage: bench_scoring --ndjson <path>... --label <label> \
     [--trajectory BENCH_scoring.json] [--dry-run]"
        .to_owned()
}

fn run_main() -> Result<(), String> {
    let mut ndjson_paths: Vec<String> = Vec::new();
    let mut label = None;
    let mut trajectory_path = "BENCH_scoring.json".to_owned();
    let mut dry_run = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ndjson" => ndjson_paths.push(args.next().ok_or_else(usage)?),
            "--label" => label = Some(args.next().ok_or_else(usage)?),
            "--trajectory" => trajectory_path = args.next().ok_or_else(usage)?,
            "--dry-run" => dry_run = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
    }
    let label = label.ok_or_else(usage)?;
    if ndjson_paths.is_empty() {
        return Err(usage());
    }

    let mut results = Vec::new();
    for path in &ndjson_paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        for rec in parse_ndjson(&text)? {
            if let Some(slot) = results
                .iter_mut()
                .find(|(k, _): &&mut (String, f64)| *k == rec.0)
            {
                slot.1 = rec.1;
            } else {
                results.push(rec);
            }
        }
    }
    if results.is_empty() {
        return Err("no measurements found in the NDJSON input".to_owned());
    }
    fold_into_trajectory(&trajectory_path, Run { label, results }, dry_run)
}

fn main() -> ExitCode {
    match run_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_scoring: {e}");
            ExitCode::FAILURE
        }
    }
}
