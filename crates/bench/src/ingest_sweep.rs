//! Loopback ingestion sweep: wall-clock and drop accounting for the
//! `temspc-ingest` socket server over a connections × frame-rate grid.
//!
//! Each cell binds a fresh [`IngestServer`] on an ephemeral loopback
//! port, replays one recorded capture tape over `connections` concurrent
//! sockets with [`temspc_ingest::drive`] (rate 0 = unthrottled), and
//! measures first-connect → last-report wall-clock, i.e. including the
//! server's scoring drain, not just the socket writes. Cells report the
//! achieved per-connection frame rate and the server's drop/reassembly
//! counters — a healthy server sustains the grid with **zero** drops,
//! and the `--smoke` gate in `bench_ingest` enforces exactly that.
//!
//! Results feed `BENCH_ingest.json` through [`crate::trajectory`]; bench
//! ids are machine-independent (`ingest_sweep/conns{C}_rate{R}`, with
//! `rate0` meaning unthrottled) while `available_parallelism` goes into
//! the run label, like the fleet sweep.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::time::Instant;

use temspc::{CalibrationConfig, DualMspc, Scenario, ScenarioKind};
use temspc_fleet::{ModelStore, StoreConfig};
use temspc_ingest::{drive, DriveConfig, IngestConfig, IngestReport, IngestServer};

/// Configuration of one connections × rates ingestion sweep.
#[derive(Debug, Clone)]
pub struct IngestSweepConfig {
    /// Concurrent connection counts to sweep (the grid's columns).
    pub connections: Vec<usize>,
    /// Per-connection frame rates in frames/second to sweep (the grid's
    /// rows); 0.0 means unthrottled.
    pub rates: Vec<f64>,
    /// Simulated hours on the capture tape every connection replays.
    pub tape_hours: f64,
    /// Per-connection step queue depth on the server (small values
    /// exercise the park/unpark backpressure path under load).
    pub queue_depth: usize,
    /// Steps per scoring batch handed to the worker pool.
    pub batch_steps: usize,
    /// Scoring worker threads (0 → available parallelism).
    pub threads: usize,
    /// Per-plant model resolution: 0 serves every connection from one
    /// shared monitor (the classic path); ≥ 1 resolves each connection
    /// through a `ModelStore` with this many cohorts, timing the
    /// store-backed serve path (`store{K}_` bench-id prefix).
    pub cohorts: usize,
}

impl Default for IngestSweepConfig {
    fn default() -> Self {
        IngestSweepConfig {
            connections: vec![1, 16, 64],
            rates: vec![0.0],
            tape_hours: 0.05,
            queue_depth: 64,
            batch_steps: 256,
            threads: 0,
            cohorts: 0,
        }
    }
}

/// One timed cell of the ingestion sweep.
#[derive(Debug, Clone, Copy)]
pub struct IngestSweepCell {
    /// Concurrent connections of this cell.
    pub connections: usize,
    /// Requested per-connection frame rate (0.0 = unthrottled).
    pub rate: f64,
    /// Store cohorts this cell resolved models through (0 = shared
    /// monitor).
    pub cohorts: usize,
    /// Total frames the server ingested.
    pub frames: u64,
    /// Total plant steps scored.
    pub steps: u64,
    /// Steps dropped under backpressure (healthy runs: 0).
    pub drops: u64,
    /// Streams that died on a wire-grammar error (healthy runs: 0).
    pub reassembly_errors: u64,
    /// Connections that completed their tape and scored end-to-end.
    pub completed: usize,
    /// First connect → last report, nanoseconds (includes the scoring
    /// drain, not just socket writes).
    pub elapsed_ns: u64,
    /// Achieved frames/second per connection over the full cell.
    pub achieved_rate: f64,
}

/// The sweep's outcome: every cell plus machine context.
#[derive(Debug, Clone)]
pub struct IngestSweepReport {
    /// `std::thread::available_parallelism()` at sweep time.
    pub available_parallelism: usize,
    /// All timed cells in (rate, connections) sweep order.
    pub cells: Vec<IngestSweepCell>,
}

/// Formats a rate for bench ids: `0` for unthrottled, else the integer
/// frames/second (rates are swept at integral values).
fn rate_id(rate: f64) -> String {
    format!("{}", rate.round() as u64)
}

impl IngestSweepReport {
    /// The cell for `(connections, rate)`, if swept.
    pub fn cell(&self, connections: usize, rate: f64) -> Option<&IngestSweepCell> {
        self.cells
            .iter()
            .find(|c| c.connections == connections && c.rate == rate)
    }

    /// Trajectory results: `ingest_sweep/conns{C}_rate{R}` → elapsed ns
    /// (`ingest_sweep/store{K}_conns{C}_rate{R}` for store-backed
    /// cells, so shared and per-plant serving trend separately).
    pub fn to_results(&self) -> Vec<(String, f64)> {
        self.cells
            .iter()
            .map(|c| {
                let store = if c.cohorts > 0 {
                    format!("store{}_", c.cohorts)
                } else {
                    String::new()
                };
                (
                    format!(
                        "ingest_sweep/{store}conns{}_rate{}",
                        c.connections,
                        rate_id(c.rate)
                    ),
                    c.elapsed_ns as f64,
                )
            })
            .collect()
    }

    /// A human-readable throughput table.
    pub fn table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:>6} {:>10} {:>10} {:>9} {:>7} {:>8} {:>12} {:>14}",
            "conns", "rate", "frames", "steps", "drops", "tears", "elapsed ms", "achieved f/s"
        );
        for c in &self.cells {
            let rate = if c.rate > 0.0 {
                format!("{:.0} f/s", c.rate)
            } else {
                "unthrott.".to_string()
            };
            let _ = writeln!(
                s,
                "{:>6} {:>10} {:>10} {:>9} {:>7} {:>8} {:>12.1} {:>14.1}",
                c.connections,
                rate,
                c.frames,
                c.steps,
                c.drops,
                c.reassembly_errors,
                c.elapsed_ns as f64 / 1e6,
                c.achieved_rate
            );
        }
        let _ = writeln!(
            s,
            "(available_parallelism={}, elapsed includes the scoring drain)",
            self.available_parallelism
        );
        s
    }
}

/// The sweep's calibration campaign (same reduced scale as the fleet
/// sweep); cohort 0 of a store built on it equals the shared monitor.
fn sweep_calibration() -> CalibrationConfig {
    CalibrationConfig {
        runs: 2,
        duration_hours: 0.5,
        record_every: 10,
        base_seed: 100,
        threads: 0,
    }
}

/// The monitor every served stream scores against on the shared path.
fn sweep_monitor() -> DualMspc {
    DualMspc::calibrate(&sweep_calibration()).expect("ingest sweep calibration")
}

/// Where each cell's connections resolve their monitor from. Both
/// variants box their payload to keep the enum small and even-sized.
enum SweepModels {
    Shared(Box<DualMspc>),
    Store(Box<ModelStore>, usize),
}

/// Records one capture tape for the sweep and persists it where
/// [`drive`] can read it. The tape is deterministic (fixed seed), so
/// every cell replays identical traffic.
fn sweep_tape(hours: f64) -> PathBuf {
    let scenario = Scenario::short(ScenarioKind::Idv6, hours, hours / 4.0, 42);
    let capture = temspc::capture_scenario(&scenario).expect("ingest sweep capture");
    let path = std::env::temp_dir().join(format!("temspc_bench_ingest_{}.cap", std::process::id()));
    temspc::persistence::save_capture(&capture, &path).expect("ingest sweep tape write");
    path
}

/// Runs one cell: bind, serve on a background thread until every driven
/// connection reports, and time the whole exchange.
fn run_cell(
    models: &SweepModels,
    config: &IngestSweepConfig,
    tape: &Path,
    connections: usize,
    rate: f64,
) -> IngestSweepCell {
    let server_config = IngestConfig {
        addr: "127.0.0.1:0".into(),
        max_connections: connections + 8,
        queue_depth: config.queue_depth,
        batch_steps: config.batch_steps,
        threads: config.threads,
        expect: Some(connections),
        incidents: None,
    };
    let server = match models {
        SweepModels::Shared(monitor) => IngestServer::bind(monitor, server_config),
        SweepModels::Store(store, cohorts) => {
            IngestServer::bind_with_store(store, *cohorts, server_config)
        }
    }
    .expect("ingest sweep bind");
    let addr = server.local_addr().expect("ingest sweep local_addr");
    // `expect` ends the serve loop once every connection finalizes; the
    // stop flag is only the error path.
    let stop = AtomicBool::new(false);

    let started = Instant::now();
    let report: IngestReport = std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.run(&stop).expect("ingest sweep serve"));
        drive(&DriveConfig {
            addr: addr.to_string(),
            tapes: vec![tape.to_path_buf()],
            connections,
            rate,
            chunk: 0,
        })
        .expect("ingest sweep drive");
        serving.join().expect("ingest sweep server thread panicked")
    });
    let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);

    let per_conn_frames = report.frames as f64 / connections.max(1) as f64;
    IngestSweepCell {
        connections,
        rate,
        cohorts: match models {
            SweepModels::Shared(_) => 0,
            SweepModels::Store(_, cohorts) => *cohorts,
        },
        frames: report.frames,
        steps: report.steps,
        drops: report.drops,
        reassembly_errors: report.reassembly_errors,
        completed: report.connections.iter().filter(|c| c.completed).count(),
        elapsed_ns,
        achieved_rate: per_conn_frames / (elapsed_ns as f64 / 1e9).max(1e-9),
    }
}

/// Runs the sweep: one tape, one cell per (rate, connections) pair.
/// With `cohorts` ≥ 1 the cells serve through a store populated (by
/// calibrate-on-miss) in a scratch directory, which is removed after
/// the sweep.
pub fn run_ingest_sweep(config: &IngestSweepConfig) -> IngestSweepReport {
    let store_dir =
        std::env::temp_dir().join(format!("temspc_bench_ingest_store_{}", std::process::id()));
    let models = if config.cohorts > 0 {
        let store_config = StoreConfig::new(&store_dir, sweep_calibration());
        SweepModels::Store(Box::new(ModelStore::new(store_config)), config.cohorts)
    } else {
        SweepModels::Shared(Box::new(sweep_monitor()))
    };
    let tape = sweep_tape(config.tape_hours);
    let available_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut cells = Vec::new();
    for &rate in &config.rates {
        for &connections in &config.connections {
            cells.push(run_cell(&models, config, &tape, connections, rate));
        }
    }
    let _ = std::fs::remove_file(&tape);
    if config.cohorts > 0 {
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    IngestSweepReport {
        available_parallelism,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_ids_and_table_cover_every_cell() {
        let report = IngestSweepReport {
            available_parallelism: 4,
            cells: vec![
                IngestSweepCell {
                    connections: 64,
                    rate: 0.0,
                    cohorts: 0,
                    frames: 25_600,
                    steps: 6_400,
                    drops: 0,
                    reassembly_errors: 0,
                    completed: 64,
                    elapsed_ns: 2_000_000_000,
                    achieved_rate: 200.0,
                },
                IngestSweepCell {
                    connections: 64,
                    rate: 100.0,
                    cohorts: 2,
                    frames: 25_600,
                    steps: 6_400,
                    drops: 0,
                    reassembly_errors: 0,
                    completed: 64,
                    elapsed_ns: 4_000_000_000,
                    achieved_rate: 100.0,
                },
            ],
        };
        let results = report.to_results();
        assert_eq!(results[0].0, "ingest_sweep/conns64_rate0");
        assert_eq!(results[1].0, "ingest_sweep/store2_conns64_rate100");
        let table = report.table();
        assert!(table.contains("unthrott."));
        assert!(table.contains("100 f/s"));
        assert!(report.cell(64, 100.0).is_some());
        assert!(report.cell(8, 0.0).is_none());
    }

    #[test]
    fn tiny_sweep_serves_with_zero_drops() {
        let report = run_ingest_sweep(&IngestSweepConfig {
            connections: vec![2],
            rates: vec![0.0],
            tape_hours: 0.02,
            queue_depth: 16,
            batch_steps: 64,
            threads: 2,
            cohorts: 0,
        });
        assert_eq!(report.cells.len(), 1);
        let cell = &report.cells[0];
        assert_eq!(cell.connections, 2);
        assert_eq!(cell.completed, 2);
        assert!(cell.frames > 0, "no frames ingested");
        assert!(cell.steps > 0, "no steps scored");
        assert_eq!(cell.drops, 0, "loopback sweep dropped steps");
        assert_eq!(cell.reassembly_errors, 0);
        assert!(cell.elapsed_ns > 0);
        assert!(cell.achieved_rate > 0.0);
    }

    #[test]
    fn store_backed_sweep_serves_with_zero_drops() {
        let report = run_ingest_sweep(&IngestSweepConfig {
            connections: vec![2],
            rates: vec![0.0],
            tape_hours: 0.02,
            queue_depth: 16,
            batch_steps: 64,
            threads: 2,
            cohorts: 1,
        });
        assert_eq!(report.cells.len(), 1);
        let cell = &report.cells[0];
        assert_eq!(cell.cohorts, 1);
        assert_eq!(cell.completed, 2);
        assert_eq!(cell.drops, 0, "store-backed sweep dropped steps");
        assert_eq!(cell.reassembly_errors, 0);
        assert_eq!(report.to_results()[0].0, "ingest_sweep/store1_conns2_rate0");
    }
}
