//! Shared fixtures for the `temspc` benchmark suite.
//!
//! Each bench regenerates one figure/table of the paper at a reduced
//! scale (the full-scale campaign lives in
//! `examples/paper_experiments.rs`); the `micro_*` benches time the hot
//! kernels (plant step, control scan, MSPC scoring, oMEDA, frame codec).

pub mod ingest_sweep;
pub mod sweep;
pub mod trajectory;

use temspc::experiments::ExperimentContext;
use temspc::{CalibrationConfig, DualMspc, MonitorConfig};

/// A reduced-scale experiment context for benches: 2 calibration runs of
/// 1 h, one run per scenario of 1.2 h, onset at 0.5 h.
pub fn bench_context(results_dir: &str) -> ExperimentContext {
    let monitor = DualMspc::calibrate_with(
        &CalibrationConfig {
            runs: 2,
            duration_hours: 1.0,
            record_every: 10,
            base_seed: 1_000,
            threads: 0,
        },
        MonitorConfig::default(),
    )
    .expect("bench calibration");
    let mut ctx = ExperimentContext {
        results_dir: std::env::temp_dir().join(results_dir),
        scenario_runs: 1,
        duration_hours: 1.2,
        onset_hour: 0.5,
        base_seed: 42,
        monitor,
    };
    ctx.scenario_runs = 1;
    ctx
}
