//! Parallel-efficiency sweep: wall-clock of a fleet campaign over a
//! threads × plants grid, with per-cell speedup and efficiency against
//! the 1-thread column.
//!
//! Each cell builds its [`FleetEngine`] (and therefore its persistent
//! worker pool) **once**, runs one untimed warm-up campaign to spawn the
//! workers and warm their `thread_local!` scratches, and then times
//! `samples` further campaigns, taking the median. This measures the
//! steady-state regime a long-lived monitoring service runs in — not the
//! thread-spawn cost the old per-run pool paid on every campaign.
//!
//! Results feed `BENCH_fleet.json` through [`crate::trajectory`]; bench
//! ids are machine-independent (`fleet_sweep/plants{P}_threads{T}`)
//! while the machine's `available_parallelism` goes into the run label,
//! so trajectories recorded on differently-sized machines remain
//! interpretable.

use std::fmt::Write as _;
use std::time::Instant;

use temspc::{CalibrationConfig, DualMspc};
use temspc_fleet::{FleetConfig, FleetEngine};

/// Configuration of one threads × plants sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Fleet sizes to sweep (the grid's columns).
    pub plants: Vec<usize>,
    /// Thread counts to sweep (the grid's rows); include 1 to anchor the
    /// speedup baseline.
    pub threads: Vec<usize>,
    /// Simulated hours per plant per campaign.
    pub hours: f64,
    /// Timed campaigns per cell (median taken); one extra untimed
    /// campaign warms the pool first.
    pub samples: usize,
    /// Fleet seed (the sweep is deterministic in everything but time).
    pub fleet_seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            plants: vec![4, 8, 16],
            threads: vec![1, 2, 4],
            hours: 0.25,
            samples: 3,
            fleet_seed: 7,
        }
    }
}

/// One timed cell of the sweep grid.
#[derive(Debug, Clone, Copy)]
pub struct SweepCell {
    /// Fleet size of this cell.
    pub plants: usize,
    /// Worker threads of this cell.
    pub threads: usize,
    /// Median wall-clock of one campaign, nanoseconds.
    pub median_ns: u64,
    /// `t(1 thread, same plants) / t(this cell)`; 1.0 when no 1-thread
    /// baseline was swept.
    pub speedup: f64,
    /// `speedup / threads` — 1.0 is perfect linear scaling.
    pub efficiency: f64,
}

/// The sweep's outcome: every cell plus the machine context needed to
/// interpret it.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// `std::thread::available_parallelism()` at sweep time — speedups
    /// beyond this core count are not physically possible.
    pub available_parallelism: usize,
    /// All timed cells, in (threads, plants) sweep order.
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// The cell for `(threads, plants)`, if swept.
    pub fn cell(&self, threads: usize, plants: usize) -> Option<&SweepCell> {
        self.cells
            .iter()
            .find(|c| c.threads == threads && c.plants == plants)
    }

    /// Trajectory results: `fleet_sweep/plants{P}_threads{T}` → median
    /// ns. Ids carry only the cell coordinates; machine context belongs
    /// in the run label.
    pub fn to_results(&self) -> Vec<(String, f64)> {
        self.cells
            .iter()
            .map(|c| {
                (
                    format!("fleet_sweep/plants{}_threads{}", c.plants, c.threads),
                    c.median_ns as f64,
                )
            })
            .collect()
    }

    /// A human-readable efficiency table (speedup×/efficiency per cell).
    pub fn table(&self) -> String {
        let mut plants: Vec<usize> = self.cells.iter().map(|c| c.plants).collect();
        plants.sort_unstable();
        plants.dedup();
        let mut threads: Vec<usize> = self.cells.iter().map(|c| c.threads).collect();
        threads.sort_unstable();
        threads.dedup();

        let mut s = String::new();
        let _ = writeln!(
            s,
            "threads \\ plants (median ms | speedup | efficiency), available_parallelism={}",
            self.available_parallelism
        );
        let _ = write!(s, "{:>8}", "");
        for &p in &plants {
            let _ = write!(s, " {:>22}", format!("{p} plants"));
        }
        s.push('\n');
        for &t in &threads {
            let _ = write!(s, "{t:>8}");
            for &p in &plants {
                match self.cell(t, p) {
                    Some(c) => {
                        let _ = write!(
                            s,
                            " {:>22}",
                            format!(
                                "{:.1} | {:.2}x | {:.0}%",
                                c.median_ns as f64 / 1e6,
                                c.speedup,
                                c.efficiency * 100.0
                            )
                        );
                    }
                    None => {
                        let _ = write!(s, " {:>22}", "-");
                    }
                }
            }
            s.push('\n');
        }
        s
    }
}

/// The monitor every sweep campaign scores against (reduced-scale, same
/// settings as the `micro_fleet` bench).
fn sweep_monitor() -> DualMspc {
    DualMspc::calibrate(&CalibrationConfig {
        runs: 2,
        duration_hours: 0.5,
        record_every: 10,
        base_seed: 100,
        threads: 0,
    })
    .expect("sweep calibration")
}

fn fleet_config(config: &SweepConfig, plants: usize, threads: usize) -> FleetConfig {
    FleetConfig {
        plants,
        threads,
        hours: config.hours,
        onset_hour: 0.05,
        attack_fraction: 0.25,
        fleet_seed: config.fleet_seed,
        checkpoint_every: 0,
        ..FleetConfig::default()
    }
}

/// Runs the sweep. Cells are timed with a persistent engine (pool
/// spawned once per cell, warm-up campaign untimed); speedups are
/// against the 1-thread cell of the same fleet size when present.
pub fn run_sweep(config: &SweepConfig) -> SweepReport {
    let monitor = sweep_monitor();
    let available_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut cells = Vec::new();
    for &threads in &config.threads {
        for &plants in &config.plants {
            let engine = FleetEngine::new(&monitor, fleet_config(config, plants, threads));
            engine.run().expect("sweep warm-up campaign");
            let mut times: Vec<u64> = (0..config.samples.max(1))
                .map(|_| {
                    let start = Instant::now();
                    engine.run().expect("sweep campaign");
                    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
                })
                .collect();
            times.sort_unstable();
            let median_ns = times[times.len() / 2];
            cells.push(SweepCell {
                plants,
                threads,
                median_ns,
                speedup: 1.0,
                efficiency: 1.0,
            });
        }
    }

    // Anchor speedup/efficiency on the 1-thread column.
    let baselines: Vec<(usize, u64)> = cells
        .iter()
        .filter(|c| c.threads == 1)
        .map(|c| (c.plants, c.median_ns))
        .collect();
    for cell in &mut cells {
        if let Some(&(_, base_ns)) = baselines.iter().find(|(p, _)| *p == cell.plants) {
            cell.speedup = base_ns as f64 / cell.median_ns.max(1) as f64;
            cell.efficiency = cell.speedup / cell.threads.max(1) as f64;
        }
    }

    SweepReport {
        available_parallelism,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_table_and_results_cover_every_cell() {
        let report = SweepReport {
            available_parallelism: 4,
            cells: vec![
                SweepCell {
                    plants: 8,
                    threads: 1,
                    median_ns: 2_000_000,
                    speedup: 1.0,
                    efficiency: 1.0,
                },
                SweepCell {
                    plants: 8,
                    threads: 2,
                    median_ns: 1_100_000,
                    speedup: 2_000_000.0 / 1_100_000.0,
                    efficiency: 2_000_000.0 / 1_100_000.0 / 2.0,
                },
            ],
        };
        let results = report.to_results();
        assert_eq!(
            results[0].0, "fleet_sweep/plants8_threads1",
            "ids must be machine-independent"
        );
        assert_eq!(results.len(), 2);
        let table = report.table();
        assert!(table.contains("available_parallelism=4"));
        assert!(table.contains("8 plants"));
        assert!(report.cell(2, 8).is_some());
        assert!(report.cell(4, 8).is_none());
    }

    #[test]
    fn tiny_sweep_produces_consistent_speedups() {
        // Smallest real sweep: 1 thread only, so every speedup is 1.0.
        let report = run_sweep(&SweepConfig {
            plants: vec![1],
            threads: vec![1],
            hours: 0.02,
            samples: 1,
            fleet_seed: 3,
        });
        assert_eq!(report.cells.len(), 1);
        assert!(report.cells[0].median_ns > 0);
        assert_eq!(report.cells[0].speedup, 1.0);
        assert_eq!(report.cells[0].efficiency, 1.0);
    }
}
