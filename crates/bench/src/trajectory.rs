//! The `temspc-bench/1` trajectory format: labelled bench runs appended
//! over time to a committed JSON file (`BENCH_scoring.json`,
//! `BENCH_fleet.json`), plus the NDJSON record stream the vendored
//! criterion stub emits under `TEMSPC_BENCH_JSON`.
//!
//! ```text
//! {
//!   "schema": "temspc-bench/1",
//!   "runs": [
//!     { "label": "pre-PR2-baseline", "results": { "<id>": <median_ns>, ... } },
//!     { "label": "post-PR2",         "results": { ... } }
//!   ]
//! }
//! ```
//!
//! Both formats are produced only by this workspace, so parsing is a
//! deliberately small line scanner rather than a general JSON parser
//! (the build environment has no registry access for serde_json).

use std::fmt::Write as _;

/// One labelled bench run: ordered `(bench id, median ns)` pairs.
#[derive(Debug, Clone, Default)]
pub struct Run {
    /// Label of the run (e.g. `post-PR5@ap4`); machine-dependent context
    /// like `available_parallelism` belongs here, not in the bench ids,
    /// so trajectories stay comparable across machines.
    pub label: String,
    /// `(bench id, median ns)` in emission order.
    pub results: Vec<(String, f64)>,
}

impl Run {
    /// The measurement for `id`, if present.
    pub fn get(&self, id: &str) -> Option<f64> {
        self.results.iter().find(|(k, _)| k == id).map(|(_, v)| *v)
    }
}

/// Parses NDJSON records of the form `{"id":"...","median_ns":N}`.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_ndjson(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let id = extract_string_field(line, "id")
            .ok_or_else(|| format!("line {}: no \"id\" field: {line}", lineno + 1))?;
        let ns = extract_number_field(line, "median_ns")
            .ok_or_else(|| format!("line {}: no \"median_ns\" field: {line}", lineno + 1))?;
        // Last record for an id wins (re-running a bench overwrites).
        if let Some(slot) = out.iter_mut().find(|(k, _): &&mut (String, f64)| *k == id) {
            slot.1 = ns;
        } else {
            out.push((id, ns));
        }
    }
    Ok(out)
}

/// Extracts `"key":"value"` from a single-line JSON record.
pub fn extract_string_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = line[start..].trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_owned())
}

/// Extracts `"key":number` from a single-line JSON record.
pub fn extract_number_field(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let digits: String = line[start..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    digits.parse().ok()
}

/// Parses a trajectory file previously written by [`write_trajectory`].
pub fn parse_trajectory(text: &str) -> Vec<Run> {
    let mut runs: Vec<Run> = Vec::new();
    for raw in text.lines() {
        let line = raw.trim().trim_end_matches(',');
        if let Some(label) = extract_string_field(line, "label") {
            runs.push(Run {
                label,
                results: Vec::new(),
            });
            continue;
        }
        // A result line is `"<id>": <number>` — structural keys have
        // string/object/array values and fail the number parse.
        if let (Some(rest), Some(run)) = (line.strip_prefix('"'), runs.last_mut()) {
            if let Some(q) = rest.find('"') {
                let key = &rest[..q];
                if key != "schema" {
                    if let Some(v) = extract_number_field(line, key) {
                        run.results.push((key.to_owned(), v));
                    }
                }
            }
        }
    }
    runs
}

/// Serializes the trajectory in the fixed line-oriented layout
/// [`parse_trajectory`] reads back.
pub fn write_trajectory(runs: &[Run]) -> String {
    let mut s = String::from("{\n  \"schema\": \"temspc-bench/1\",\n  \"runs\": [\n");
    for (ri, run) in runs.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"label\": \"{}\",", run.label);
        s.push_str("      \"results\": {\n");
        for (i, (id, ns)) in run.results.iter().enumerate() {
            let comma = if i + 1 < run.results.len() { "," } else { "" };
            if ns.fract() == 0.0 {
                let _ = writeln!(s, "        \"{id}\": {}{comma}", *ns as u64);
            } else {
                let _ = writeln!(s, "        \"{id}\": {ns}{comma}");
            }
        }
        s.push_str("      }\n");
        let comma = if ri + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    s.push_str("  ]\n}\n");
    s
}

/// Prints a per-bench comparison of `new` against `old`.
pub fn print_comparison(old: &Run, new: &Run) {
    println!("\n{} vs {}:", new.label, old.label);
    println!(
        "  {:<44} {:>14} {:>14} {:>9}",
        "bench", "old ns", "new ns", "speedup"
    );
    for (id, new_ns) in &new.results {
        if let Some(old_ns) = old.get(id) {
            let speedup = if *new_ns > 0.0 {
                old_ns / new_ns
            } else {
                f64::NAN
            };
            println!("  {id:<44} {old_ns:>14.0} {new_ns:>14.0} {speedup:>8.2}x");
        }
    }
}

/// Appends (or replaces, by label) `new_run` in the trajectory file at
/// `path`, printing comparisons against the previous and first runs.
/// With `dry_run` the file is left untouched.
///
/// # Errors
///
/// Returns a message on I/O failure.
pub fn fold_into_trajectory(path: &str, new_run: Run, dry_run: bool) -> Result<(), String> {
    let mut runs = match std::fs::read_to_string(path) {
        Ok(text) => parse_trajectory(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("cannot read {path}: {e}")),
    };
    // Re-running under an existing label replaces that run.
    runs.retain(|r| r.label != new_run.label);
    runs.push(new_run);

    if let [.., prev, newest] = &runs[..] {
        print_comparison(prev, newest);
        if runs.len() > 2 {
            print_comparison(&runs[0], newest);
        }
    }

    if dry_run {
        println!("\n--dry-run: not writing {path}");
    } else {
        std::fs::write(path, write_trajectory(&runs))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "\nwrote {path} ({} run{})",
            runs.len(),
            if runs.len() == 1 { "" } else { "s" }
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndjson_roundtrip_and_last_record_wins() {
        let text = "{\"id\":\"g/a\",\"median_ns\":100}\n{\"id\":\"g/b\",\"median_ns\":200}\n\
                    {\"id\":\"g/a\",\"median_ns\":150}\n";
        let r = parse_ndjson(text).unwrap();
        assert_eq!(r, vec![("g/a".into(), 150.0), ("g/b".into(), 200.0)]);
    }

    #[test]
    fn trajectory_roundtrip() {
        let runs = vec![
            Run {
                label: "baseline".into(),
                results: vec![("micro_mspc/x".into(), 1270245.0), ("g/y".into(), 7.0)],
            },
            Run {
                label: "post".into(),
                results: vec![("micro_mspc/x".into(), 600000.0)],
            },
        ];
        let text = write_trajectory(&runs);
        let parsed = parse_trajectory(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].label, "baseline");
        assert_eq!(parsed[0].results, runs[0].results);
        assert_eq!(parsed[1].results, runs[1].results);
        // Idempotent: serialize(parse(text)) == text.
        assert_eq!(write_trajectory(&parsed), text);
    }
}
