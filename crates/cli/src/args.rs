//! A small, dependency-free command-line argument parser.
//!
//! Supports `--key value`, `--key=value` and boolean `--flag` options
//! after a positional subcommand, with typed accessors and precise error
//! messages.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: a subcommand, an optional action positional
/// (e.g. `temspc store list`), plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    subcommand: Option<String>,
    action: Option<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Argument-parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// An option was given without a value.
    MissingValue(String),
    /// A value could not be parsed as the requested type.
    BadValue {
        /// Option name.
        option: String,
        /// Provided value.
        value: String,
        /// Target type name.
        ty: &'static str,
    },
    /// A positional argument appeared after options.
    UnexpectedPositional(String),
    /// A required option was absent.
    Required(String),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingValue(o) => write!(f, "option --{o} requires a value"),
            ArgsError::BadValue { option, value, ty } => {
                write!(f, "option --{option}: '{value}' is not a valid {ty}")
            }
            ArgsError::UnexpectedPositional(p) => write!(f, "unexpected argument '{p}'"),
            ArgsError::Required(o) => write!(f, "missing required option --{o}"),
        }
    }
}

impl std::error::Error for ArgsError {}

/// Option names that do not take a value.
const BOOLEAN_FLAGS: &[&str] = &["no-noise", "verbose", "resume", "dry-run", "digest"];

impl ParsedArgs {
    /// Parses a raw argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] for malformed input.
    pub fn parse<I, S>(args: I) -> Result<Self, ArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut parsed = ParsedArgs::default();
        let mut iter = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            if let Some(stripped) = arg.strip_prefix("--") {
                if let Some((key, value)) = stripped.split_once('=') {
                    parsed.options.insert(key.to_string(), value.to_string());
                } else if BOOLEAN_FLAGS.contains(&stripped) {
                    parsed.flags.push(stripped.to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgsError::MissingValue(stripped.to_string()))?;
                    parsed.options.insert(stripped.to_string(), value);
                }
            } else if parsed.subcommand.is_none() {
                parsed.subcommand = Some(arg);
            } else if parsed.action.is_none() {
                parsed.action = Some(arg);
            } else {
                return Err(ArgsError::UnexpectedPositional(arg));
            }
        }
        Ok(parsed)
    }

    /// The subcommand, if any.
    pub fn subcommand(&self) -> Option<&str> {
        self.subcommand.as_deref()
    }

    /// The second positional (the action of `temspc store <action>`).
    pub fn action(&self) -> Option<&str> {
        self.action.as_deref()
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// String option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Required string option.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::Required`] when absent.
    pub fn require(&self, key: &str) -> Result<&str, ArgsError> {
        self.get(key).ok_or_else(|| ArgsError::Required(key.into()))
    }

    /// Typed option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::BadValue`] if present but unparsable.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgsError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgsError::BadValue {
                option: key.to_string(),
                value: raw.to_string(),
                ty: std::any::type_name::<T>(),
            }),
        }
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_and_options() {
        let a = ParsedArgs::parse(["simulate", "--hours", "4", "--idv=6", "--no-noise"]).unwrap();
        assert_eq!(a.subcommand(), Some("simulate"));
        assert_eq!(a.get("hours"), Some("4"));
        assert_eq!(a.get("idv"), Some("6"));
        assert!(a.flag("no-noise"));
        assert!(!a.flag("verbose"));
        assert_eq!(a.action(), None);
    }

    #[test]
    fn parses_store_style_action_positional() {
        let a = ParsedArgs::parse(["store", "list", "--dir", "models"]).unwrap();
        assert_eq!(a.subcommand(), Some("store"));
        assert_eq!(a.action(), Some("list"));
        assert_eq!(a.get("dir"), Some("models"));
    }

    #[test]
    fn typed_accessors() {
        let a = ParsedArgs::parse(["x", "--hours", "2.5", "--seed", "42"]).unwrap();
        assert_eq!(a.get_parsed("hours", 1.0).unwrap(), 2.5);
        assert_eq!(a.get_parsed("seed", 0u64).unwrap(), 42);
        assert_eq!(a.get_parsed("missing", 7i32).unwrap(), 7);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            ParsedArgs::parse(["x", "--hours"]).unwrap_err(),
            ArgsError::MissingValue("hours".into())
        );
        let a = ParsedArgs::parse(["x", "--hours", "abc"]).unwrap();
        assert!(matches!(
            a.get_parsed("hours", 0.0f64),
            Err(ArgsError::BadValue { .. })
        ));
        assert_eq!(
            ParsedArgs::parse(["x", "y", "z"]).unwrap_err(),
            ArgsError::UnexpectedPositional("z".into())
        );
        let a = ParsedArgs::parse(["x"]).unwrap();
        assert_eq!(
            a.require("out").unwrap_err(),
            ArgsError::Required("out".into())
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let a = ParsedArgs::parse(Vec::<String>::new()).unwrap();
        assert_eq!(a.subcommand(), None);
    }

    #[test]
    fn error_display_is_informative() {
        assert_eq!(
            ArgsError::Required("out".into()).to_string(),
            "missing required option --out"
        );
        assert!(ArgsError::BadValue {
            option: "hours".into(),
            value: "x".into(),
            ty: "f64"
        }
        .to_string()
        .contains("not a valid f64"));
    }
}
