//! Implementations of the CLI subcommands.

use std::error::Error;

use temspc::diagnosis::{diagnose, VerdictThresholds};
use temspc::experiments::{arl, fig1, fig2, fig3, fig45, verdicts, ExperimentContext};
use temspc::persistence::{load_monitor, load_network_monitor, save_monitor, save_network_monitor};
use temspc::{CalibrationConfig, ClosedLoopRunner, NetworkMonitor, Scenario, ScenarioKind};
use temspc_fieldbus::{Attack, AttackKind, AttackTarget};
use temspc_tesim::measurement::XMEAS_INFO;

use crate::args::ParsedArgs;

/// Usage text.
pub const USAGE: &str = r#"temspc — disturbances vs intrusions in process control, with dual-level MSPC

USAGE:
  temspc simulate  [--hours 4] [--idv 0] [--attack none|xmv3|xmeas1|dos]
                   [--onset <h>] [--seed 1] [--csv run.csv] [--no-noise]
  temspc calibrate [--runs 4] [--hours 2] [--threads 0] --out model.tpb
                   [--net-out net.tpb]
  temspc detect    --model model.tpb [--net net.tpb] [--scenario idv6]
                   [--hours 4] [--onset 1] [--seed 42]
  temspc capture   --out run.cap [--scenario idv6] [--hours 4] [--onset 1]
                   [--seed 42]
  temspc replay    --model model.tpb --capture run.cap [--net net.tpb] [--digest]
  temspc fleet     [--plants 8] [--threads 4] [--hours 2] [--attack-fraction 0.25]
                   [--onset 0.5] [--seed 2016] [--model model.tpb]
                   [--model-store dir [--cohorts 2] [--store-capacity 4]
                    [--seed-stride 1000000]]
                   [--calib-runs 4] [--calib-hours 2] [--calib-seed 1000]
                   [--checkpoint fleet.tpb [--resume]] [--checkpoint-every 4]
                   [--metrics fleet.prom]
                   [--record-captures dir | --replay dir]
  temspc ingest    serve [--model model.tpb |
                    --model-store dir [--cohorts 2] [--store-capacity 4]
                    [--seed-stride 1000000]]
                   [--addr 127.0.0.1:4840]
                   [--max-connections 1024] [--queue-depth 256]
                   [--batch-steps 512] [--threads 0] [--expect <n>]
                   [--incidents incidents.log]
                   [--report ingest_session.tpb] [--metrics ingest.prom]
  temspc ingest    drive [--addr 127.0.0.1:4840] [--tapes a.cap,b.cap]
                   [--tape-dir captures] [--connections 1] [--rate 0]
                   [--chunk 0]
  temspc store     list|calibrate|evict|export --dir models
                   [--key cohort_0 | --cohorts 2] [--out model.tpb]
                   [--calib-runs 4] [--calib-hours 2] [--calib-seed 1000]
  temspc bench     sweep|smoke [--plants 4,8,16] [--threads 1,2,4]
                   [--hours 0.25] [--samples 3] [--label <label>]
                   [--trajectory BENCH_fleet.json] [--dry-run]
                   [--min-speedup 1.3] [--smoke-plants 8]
  temspc experiments [--mode quick|paper] [--out results]
  temspc list
  temspc help

SCENARIOS: normal, idv6, xmv3 (integrity), xmeas1 (integrity), dos

CAPTURE/REPLAY: `capture` records every wire frame of a run into a .cap
tape; `replay` re-scores the recorded traffic through the same charts,
printing the same detection lines as a live `detect` of that scenario.
`fleet --record-captures dir` writes one tape per plant; a later
`fleet --replay dir` (same fleet flags) scores them without
re-simulating.

MODEL STORE: `fleet --model-store dir` resolves each plant's monitor
from a sharded per-cohort calibration store (one .tpb per key, bounded
in-memory LRU residency, calibrate-on-miss with deterministic per-cohort
seeds, hot reload on generation bump). `store calibrate` pre-populates
or refreshes keys; `store list` shows keys and generations; `store
evict` deletes a persisted key.

LIVE INGESTION: `ingest serve` accepts live fieldbus traffic over TCP
(thousands of concurrent plant connections on one non-blocking event
loop), scores each stream with the same T2/SPE path `replay` uses, and
flushes a TPB session report on SIGINT/SIGTERM after draining in-flight
batches. `ingest drive` replays recorded .cap tapes over real sockets
as a load generator. Served detections are bit-identical to offline
replay: diff the digest `serve` prints against `replay --digest` of the
same tape. `fleet` and `serve` both drain and checkpoint on Ctrl-C.

BENCH: `bench sweep` times fleet campaigns over a threads x plants grid
on the persistent worker pool, prints the speedup/efficiency table, and
folds the medians into a temspc-bench/1 trajectory file (labels carry
the machine's available_parallelism). `bench smoke` is the CI scaling
gate: 2 threads vs 1 thread at one fleet size, asserting speedup >=
--min-speedup; it skips with a notice on single-core runners."#;

type CmdResult = Result<(), Box<dyn Error>>;

fn scenario_kind(name: &str) -> Result<ScenarioKind, String> {
    Ok(match name {
        "normal" => ScenarioKind::Normal,
        "idv6" => ScenarioKind::Idv6,
        "xmv3" | "integrity_xmv3" => ScenarioKind::IntegrityXmv3,
        "xmeas1" | "integrity_xmeas1" => ScenarioKind::IntegrityXmeas1,
        "dos" | "dos_xmv3" => ScenarioKind::DosXmv3,
        other => return Err(format!("unknown scenario '{other}'")),
    })
}

/// `temspc simulate` — run the closed loop, print a summary, optionally
/// dump a CSV of both views.
pub fn simulate(args: &ParsedArgs) -> CmdResult {
    let hours: f64 = args.get_parsed("hours", 4.0)?;
    let idv: usize = args.get_parsed("idv", 0)?;
    let onset: f64 = args.get_parsed("onset", hours / 2.0)?;
    let seed: u64 = args.get_parsed("seed", 1)?;
    let attack = args.get_or("attack", "none").to_string();

    let mut scenario = Scenario::short(ScenarioKind::Normal, hours, onset, seed);
    if idv == 6 && attack == "none" {
        scenario.kind = ScenarioKind::Idv6;
    }
    let attacks: Vec<Attack> = match attack.as_str() {
        "none" => Vec::new(),
        "xmv3" => vec![Attack::new(
            AttackTarget::Actuator(3),
            AttackKind::IntegrityConstant(0.0),
            onset..f64::INFINITY,
        )],
        "xmeas1" => vec![Attack::new(
            AttackTarget::Sensor(1),
            AttackKind::IntegrityConstant(0.0),
            onset..f64::INFINITY,
        )],
        "dos" => vec![Attack::new(
            AttackTarget::Actuator(3),
            AttackKind::DenialOfService,
            onset..f64::INFINITY,
        )],
        other => return Err(format!("unknown attack '{other}'").into()),
    };
    if idv > 0 && idv != 6 {
        // Arbitrary disturbances: schedule through the generic path.
        let mut set = temspc_tesim::DisturbanceSet::new();
        set.schedule(temspc_tesim::Disturbance::from_idv_number(idv), onset);
        // Run manually to honor both the custom IDV and custom attacks.
        return simulate_custom(hours, set, attacks, seed, args);
    }

    let runner = if attacks.is_empty() {
        ClosedLoopRunner::new(&scenario)
    } else {
        ClosedLoopRunner::with_attacks(&scenario, attacks)
    };
    let data = runner.run(20, |_| {})?;
    print_run_summary(&data);
    maybe_write_csv(args, &data)?;
    Ok(())
}

fn simulate_custom(
    hours: f64,
    idv: temspc_tesim::DisturbanceSet,
    attacks: Vec<Attack>,
    seed: u64,
    args: &ParsedArgs,
) -> CmdResult {
    use temspc_control::DecentralizedController;
    use temspc_fieldbus::{FieldbusLink, MitmAdversary};
    use temspc_tesim::{PlantConfig, TePlant, SAMPLES_PER_HOUR};

    let mut cfg = PlantConfig::default();
    if args.flag("no-noise") {
        cfg.measurement_noise = false;
        cfg.process_randomness = false;
    }
    let mut plant = TePlant::new(cfg, seed);
    plant.set_disturbances(idv);
    let mut controller = DecentralizedController::new();
    let mut link = FieldbusLink::new(MitmAdversary::new(attacks));
    let mut hours_v = Vec::new();
    let mut cview = temspc_linalg_matrix();
    let mut pview = temspc_linalg_matrix();
    let steps = (hours * SAMPLES_PER_HOUR as f64) as usize;
    for k in 0..steps {
        let hour = plant.hour();
        let xmeas = plant.measurements();
        let received = link.uplink(hour, xmeas.as_slice())?;
        let commanded = controller.step(&received);
        let delivered = link.downlink(hour, &commanded)?;
        if plant.step(&delivered).is_err() {
            break;
        }
        if k % 20 == 0 {
            hours_v.push(hour);
            let mut c = received.clone();
            c.extend_from_slice(&commanded);
            cview.push_row(&c);
            let mut p = xmeas.as_slice().to_vec();
            p.extend_from_slice(&delivered);
            pview.push_row(&p);
        }
    }
    let data = temspc::RunData {
        scenario: Scenario::short(ScenarioKind::Normal, hours, f64::INFINITY, seed),
        hours: hours_v,
        controller_view: cview,
        process_view: pview,
        shutdown: plant.shutdown(),
    };
    print_run_summary(&data);
    maybe_write_csv(args, &data)?;
    Ok(())
}

fn temspc_linalg_matrix() -> temspc_linalg::Matrix {
    temspc_linalg::Matrix::default()
}

fn print_run_summary(data: &temspc::RunData) {
    let last = data.hours.len().saturating_sub(1);
    println!("samples recorded : {}", data.hours.len());
    if data.hours.is_empty() {
        return;
    }
    println!("final hour       : {:.3}", data.hours[last]);
    println!(
        "XMEAS(1) A feed  : {:.3} kscmh",
        data.process_view.get(last, 0)
    );
    println!(
        "reactor pressure : {:.1} kPa",
        data.process_view.get(last, 6)
    );
    println!(
        "stripper level   : {:.1} %",
        data.process_view.get(last, 14)
    );
    match data.shutdown {
        Some((reason, hour)) => println!("SHUTDOWN at {hour:.3} h: {reason}"),
        None => println!("no shutdown"),
    }
}

fn maybe_write_csv(args: &ParsedArgs, data: &temspc::RunData) -> CmdResult {
    if let Some(path) = args.get("csv") {
        let mut header = vec!["hour".to_string(), "level".to_string()];
        for i in 0..temspc::N_MONITORED {
            header.push(temspc::variable_name(i));
        }
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut csv = temspc::csv::CsvWriter::with_header(&header_refs);
        for (i, h) in data.hours.iter().enumerate() {
            csv.push_labelled(&format!("{h},controller"), data.controller_view.row(i));
            csv.push_labelled(&format!("{h},process"), data.process_view.row(i));
        }
        csv.write_to(path)?;
        println!("wrote {path}");
    }
    Ok(())
}

/// `temspc calibrate` — calibrate and persist monitors.
pub fn calibrate(args: &ParsedArgs) -> CmdResult {
    let runs: usize = args.get_parsed("runs", 4)?;
    let hours: f64 = args.get_parsed("hours", 2.0)?;
    let out = args.require("out")?;
    let cfg = CalibrationConfig {
        runs,
        duration_hours: hours,
        record_every: 10,
        base_seed: args.get_parsed("seed", 1_000)?,
        threads: args.get_parsed("threads", 0)?,
    };
    println!("calibrating dual-level monitor on {runs} x {hours} h ...");
    // The pooled campaign produces matrices byte-identical to the
    // sequential one, just faster.
    let monitor = temspc_fleet::calibrate(&cfg, temspc::MonitorConfig::default())?;
    save_monitor(&monitor, out)?;
    println!(
        "saved {out} ({} PCs, T2_99 = {:.2}, SPE_99 = {:.2})",
        monitor.controller_model().pca().n_components(),
        monitor.controller_model().limits().t2_99,
        monitor.controller_model().limits().spe_99
    );
    if let Some(net_out) = args.get("net-out") {
        println!("calibrating network-level monitor ...");
        let network = NetworkMonitor::calibrate(&cfg, 0.02)?;
        save_network_monitor(&network, net_out)?;
        println!("saved {net_out}");
    }
    Ok(())
}

/// `temspc detect` — monitor a scenario with persisted models.
pub fn detect(args: &ParsedArgs) -> CmdResult {
    let model_path = args.require("model")?;
    let kind = scenario_kind(args.get_or("scenario", "idv6"))?;
    let hours: f64 = args.get_parsed("hours", 4.0)?;
    let onset: f64 = args.get_parsed("onset", 1.0)?;
    let seed: u64 = args.get_parsed("seed", 42)?;

    let monitor = load_monitor(model_path)?;
    let scenario = Scenario::short(kind, hours, onset, seed);
    println!("scenario: {}", kind.description());
    let outcome = monitor.run_scenario(&scenario)?;
    print_outcome(&monitor, &outcome, onset, hours);
    if let Some(net_path) = args.get("net") {
        let network = load_network_monitor(net_path)?;
        let net = network.run_scenario(&scenario)?;
        print_network_outcome(&net, onset);
    }
    if let Some((reason, hour)) = outcome.run.shutdown {
        println!("plant shut down at {hour:.3} h: {reason}");
    }
    Ok(())
}

/// Prints the detection/diagnosis summary shared by `detect` (live) and
/// `replay` (recorded traffic) — identical inputs print identical lines.
fn print_outcome(
    monitor: &temspc::DualMspc,
    outcome: &temspc::ScenarioOutcome,
    onset: f64,
    hours: f64,
) {
    match outcome.detection.run_length(onset) {
        Some(rl) => println!("detected {:.1} s after onset", rl * 3600.0),
        None => println!("not detected within {hours} h"),
    }
    if outcome.false_alarms > 0 {
        println!("false alarms before onset: {}", outcome.false_alarms);
    }
    if let Some(diag) = diagnose(monitor, outcome, VerdictThresholds::default()) {
        println!("{}", temspc::incident_report(outcome, &diag));
    }
}

fn print_network_outcome(net: &temspc::NetworkOutcome, onset: f64) {
    match net.detected_hour {
        Some(h) => println!(
            "network level: detected {:.1} s after onset, implicates {}",
            (h - onset) * 3600.0,
            net.implicated_feature.as_deref().unwrap_or("-")
        ),
        None => println!("network level: no detection"),
    }
}

/// `temspc capture` — run a scenario with the fieldbus tap attached and
/// write the wire tape to a capture file.
pub fn capture(args: &ParsedArgs) -> CmdResult {
    let kind = scenario_kind(args.get_or("scenario", "idv6"))?;
    let hours: f64 = args.get_parsed("hours", 4.0)?;
    let onset: f64 = args.get_parsed("onset", 1.0)?;
    let seed: u64 = args.get_parsed("seed", 42)?;
    let out = args.require("out")?;

    let scenario = Scenario::short(kind, hours, onset, seed);
    println!("scenario: {}", kind.description());
    let capture = temspc::capture_scenario(&scenario)?;
    let wire_bytes: usize = capture.records.iter().map(|r| r.wire.len()).sum();
    temspc::persistence::save_capture(&capture, out)?;
    println!(
        "captured {} steps ({} frames, {} wire bytes)",
        capture.steps(),
        capture.records.len(),
        wire_bytes
    );
    if let Some((reason, hour)) = capture.shutdown {
        println!("plant shut down at {hour:.3} h: {reason}");
    }
    println!("wrote {out}");
    Ok(())
}

/// `temspc replay` — score a recorded capture with persisted models; the
/// output lines match what `detect` printed for the live run.
pub fn replay(args: &ParsedArgs) -> CmdResult {
    let model_path = args.require("model")?;
    let capture_path = args.require("capture")?;

    let monitor = load_monitor(model_path)?;
    let capture = temspc::persistence::load_capture(capture_path)?;
    let scenario = capture.scenario.clone();
    let onset = scenario.onset_hour;
    println!("scenario: {}", scenario.kind.description());
    println!(
        "replaying {} recorded steps (seed {})",
        capture.steps(),
        scenario.seed
    );
    let outcome = monitor.score_capture(&capture)?;
    print_outcome(&monitor, &outcome, onset, scenario.duration_hours);
    if args.flag("digest") {
        // Comparable against the digests `ingest serve` prints: equal
        // digests prove the served scoring path matched this replay.
        println!("digest {:016x}", temspc_ingest::detection_digest(&outcome));
    }
    if let Some(net_path) = args.get("net") {
        let network = load_network_monitor(net_path)?;
        let net = network.score_capture(&capture)?;
        print_network_outcome(&net, onset);
    }
    if let Some((reason, hour)) = outcome.run.shutdown {
        println!("plant shut down at {hour:.3} h: {reason}");
    }
    Ok(())
}

/// `temspc fleet` — monitor many plants concurrently and print the
/// aggregate confusion matrix.
pub fn fleet(args: &ParsedArgs) -> CmdResult {
    use temspc_fleet::{FleetConfig, FleetEngine, ModelStore, PlantSource};

    let source = match args.get("replay") {
        Some(dir) => PlantSource::Replay(dir.to_string()),
        None => PlantSource::Live,
    };
    let config = FleetConfig {
        plants: args.get_parsed("plants", 8)?,
        threads: args.get_parsed("threads", 0)?,
        hours: args.get_parsed("hours", 2.0)?,
        onset_hour: args.get_parsed("onset", 0.5)?,
        attack_fraction: args.get_parsed("attack-fraction", 0.25)?,
        fleet_seed: args.get_parsed("seed", 2016)?,
        checkpoint_every: args.get_parsed("checkpoint-every", 4)?,
        cohorts: args.get_parsed("cohorts", 1)?,
        source,
        ..FleetConfig::default()
    };
    if !(0.0..=1.0).contains(&config.attack_fraction) {
        return Err("--attack-fraction must be within [0, 1]".into());
    }
    if config.cohorts == 0 {
        return Err("--cohorts must be at least 1".into());
    }
    if let Some(dir) = args.get("record-captures") {
        println!("recording {} plant captures into {dir}/ ...", config.plants);
        temspc_fleet::record_fleet_captures(&config, dir)?;
        println!("done; replay them with: temspc fleet --replay {dir} <same fleet flags>");
        return Ok(());
    }

    if let Some(dir) = args.get("model-store") {
        if args.get("model").is_some() {
            return Err("--model and --model-store are mutually exclusive".into());
        }
        println!(
            "resolving per-plant monitors from model store {dir}/ ({} cohort(s)) ...",
            config.cohorts
        );
        let store = ModelStore::new(store_config_from_args(args, dir)?);
        let engine = FleetEngine::with_store(&store, config.clone());
        return run_fleet(engine, args, &config, Some(&store));
    }

    let monitor = match args.get("model") {
        Some(path) => {
            println!("loading monitor from {path} ...");
            load_monitor(path)?
        }
        None => {
            let runs: usize = args.get_parsed("calib-runs", 4)?;
            let hours: f64 = args.get_parsed("calib-hours", 2.0)?;
            println!("calibrating dual-level monitor on {runs} x {hours} h ...");
            temspc_fleet::calibrate(
                &CalibrationConfig {
                    runs,
                    duration_hours: hours,
                    record_every: 10,
                    base_seed: args.get_parsed("calib-seed", 1_000)?,
                    threads: config.threads,
                },
                temspc::MonitorConfig::default(),
            )?
        }
    };
    let engine = FleetEngine::new(&monitor, config.clone());
    run_fleet(engine, args, &config, None)
}

/// Shared tail of `temspc fleet`: checkpoint wiring, the run itself, the
/// report, and the metrics exposition (fleet + store when present).
fn run_fleet(
    mut engine: temspc_fleet::FleetEngine<'_>,
    args: &ParsedArgs,
    config: &temspc_fleet::FleetConfig,
    store: Option<&temspc_fleet::ModelStore>,
) -> CmdResult {
    if let Some(path) = args.get("checkpoint") {
        if std::path::Path::new(path).exists() && !args.flag("resume") {
            return Err(format!(
                "checkpoint {path} already exists; pass --resume to continue it or remove the file"
            )
            .into());
        }
        engine = engine.with_checkpoint(path);
    }
    // SIGINT/SIGTERM drain in-flight plants and flush a final checkpoint
    // instead of killing the campaign mid-write.
    engine = engine.with_cancel(temspc_ingest::install_handlers());

    println!(
        "monitoring {} plants ({} attacked) for {} h each ...",
        config.plants,
        (config.attack_fraction * config.plants as f64).round() as usize,
        config.hours
    );
    match engine.run() {
        Ok(report) => println!("\n{report}"),
        Err(temspc_fleet::FleetError::Interrupted { completed, total }) => {
            println!("\ninterrupted: {completed}/{total} plants completed; in-flight work drained");
            match args.get("checkpoint") {
                Some(path) => {
                    println!("checkpoint {path} flushed — rerun with --resume to finish");
                }
                None => println!("(no --checkpoint configured, so partial results were not kept)"),
            }
        }
        Err(e) => return Err(e.into()),
    }
    if let Some(path) = args.get("metrics") {
        let mut text = engine.metrics().expose();
        if let Some(store) = store {
            text.push_str(&store.metrics().expose());
        }
        std::fs::write(path, text)?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Builds a [`temspc_fleet::StoreConfig`] from the shared calibration
/// flags, so `fleet --model-store` and `store <action>` agree on seeds.
fn store_config_from_args(
    args: &ParsedArgs,
    dir: &str,
) -> Result<temspc_fleet::StoreConfig, Box<dyn Error>> {
    let calibration = CalibrationConfig {
        runs: args.get_parsed("calib-runs", 4)?,
        duration_hours: args.get_parsed("calib-hours", 2.0)?,
        record_every: 10,
        base_seed: args.get_parsed("calib-seed", 1_000)?,
        threads: args.get_parsed("threads", 0)?,
    };
    let mut cfg = temspc_fleet::StoreConfig::new(dir, calibration);
    cfg.capacity = args.get_parsed("store-capacity", cfg.capacity)?;
    if cfg.capacity == 0 {
        return Err("--store-capacity must be at least 1".into());
    }
    cfg.seed_stride = args.get_parsed("seed-stride", cfg.seed_stride)?;
    Ok(cfg)
}

/// The keys a `temspc store` action operates on: an explicit `--key`, or
/// the first `--cohorts` cohort keys.
fn store_target_keys(args: &ParsedArgs) -> Result<Vec<temspc_fleet::PlantKey>, Box<dyn Error>> {
    if let Some(key) = args.get("key") {
        return Ok(vec![temspc_fleet::PlantKey::new(key)?]);
    }
    let cohorts: usize = args.get_parsed("cohorts", 0)?;
    if cohorts == 0 {
        return Err("pass --key <name> or --cohorts <n> to select store keys".into());
    }
    Ok((0..cohorts).map(temspc_fleet::PlantKey::cohort).collect())
}

/// `temspc store` — inspect and maintain a model store directory:
/// `list` keys and generations, `calibrate` (re)build keys, `evict`
/// delete persisted keys.
pub fn store(args: &ParsedArgs) -> CmdResult {
    use temspc_fleet::ModelStore;

    let action = args.action().unwrap_or("list");
    let dir = args.require("dir")?;
    let store = ModelStore::new(store_config_from_args(args, dir)?);
    match action {
        "list" => {
            let keys = store.keys_on_disk()?;
            if keys.is_empty() {
                println!("no stored models in {dir}/");
                return Ok(());
            }
            println!("{:<24} generation", "key");
            for (key, generation) in keys {
                let state = generation.map_or_else(|| "invalid".to_string(), |g| g.to_string());
                println!("{:<24} {state}", key.as_str());
            }
        }
        "calibrate" => {
            for key in store_target_keys(args)? {
                let seed = store.config().calibration_for(&key).base_seed;
                println!("calibrating {} (base seed {seed}) ...", key.as_str());
                let resolved = store.recalibrate(&key)?;
                println!("  stored at generation {}", resolved.generation);
            }
        }
        "evict" => {
            for key in store_target_keys(args)? {
                if store.remove(&key)? {
                    println!("removed {}", key.as_str());
                } else {
                    println!("no stored model for {}", key.as_str());
                }
            }
        }
        "export" => {
            // Store files are TESTORE envelopes; exporting re-saves the
            // resolved monitor as a plain TPB model that `replay --model`
            // and `ingest serve --model` can load directly.
            let out = args.require("out")?;
            let keys = store_target_keys(args)?;
            if keys.len() != 1 {
                return Err("store export takes exactly one --key".into());
            }
            let resolved = store.get(&keys[0])?;
            temspc::persistence::save_monitor(&resolved.model, out)?;
            println!(
                "exported {} (generation {}) to {out}",
                keys[0].as_str(),
                resolved.generation
            );
        }
        other => {
            return Err(format!(
                "unknown store action '{other}' (expected list, calibrate, evict or export)"
            )
            .into())
        }
    }
    Ok(())
}

/// `temspc experiments` — the full figure/table campaign.
pub fn experiments(args: &ParsedArgs) -> CmdResult {
    let mode = args.get_or("mode", "quick");
    let out = args.get_or("out", "results");
    println!("calibrating ({mode} scale) ...");
    let ctx = match mode {
        "paper" => ExperimentContext::paper(out)?,
        _ => {
            let mut ctx = ExperimentContext::quick(out, 4.0)?;
            ctx.onset_hour = 1.0;
            ctx
        }
    };
    fig1::run(&ctx)?;
    fig2::run(&ctx)?;
    fig3::run(&ctx)?;
    fig45::run(&ctx)?;
    arl::run(&ctx)?;
    let v = verdicts::run(&ctx)?;
    println!(
        "experiments complete; verdict accuracy {:.1} %; artifacts in {out}/",
        100.0 * v.accuracy()
    );
    Ok(())
}

/// `temspc list` — enumerate scenarios, disturbances and variables.
pub fn list() -> CmdResult {
    println!("scenarios:");
    for kind in ScenarioKind::anomalous() {
        println!("  {:<18} {}", kind.id(), kind.description());
    }
    println!("\ndisturbances (IDV):");
    for n in 1..=20 {
        let d = temspc_tesim::Disturbance::from_idv_number(n);
        println!("  IDV({n:>2})  {d:?}");
    }
    println!("\nmeasurements (XMEAS):");
    for info in XMEAS_INFO.iter() {
        println!(
            "  XMEAS({:>2})  {:<36} [{}]  nominal {}",
            info.number, info.name, info.unit, info.nominal
        );
    }
    Ok(())
}

/// `temspc ingest` — the live ingestion front half: `serve` scores live
/// fieldbus streams over TCP, `drive` replays .cap tapes over sockets.
pub fn ingest(args: &ParsedArgs) -> CmdResult {
    match args.action() {
        Some("serve") => ingest_serve(args),
        Some("drive") => ingest_drive(args),
        Some(other) => {
            Err(format!("unknown ingest action '{other}' (expected serve or drive)").into())
        }
        None => Err("ingest needs an action: serve or drive".into()),
    }
}

/// Builds the server configuration from `ingest serve` flags.
fn ingest_serve_config(args: &ParsedArgs) -> Result<temspc_ingest::IngestConfig, Box<dyn Error>> {
    let config = temspc_ingest::IngestConfig {
        addr: args.get_or("addr", "127.0.0.1:4840").to_string(),
        max_connections: args.get_parsed("max-connections", 1024)?,
        queue_depth: args.get_parsed("queue-depth", 256)?,
        batch_steps: args.get_parsed("batch-steps", 512)?,
        threads: args.get_parsed("threads", 0)?,
        expect: match args.get("expect") {
            None => None,
            Some(_) => Some(args.get_parsed("expect", 0usize)?),
        },
        incidents: args.get("incidents").map(str::to_string),
    };
    if config.max_connections == 0 {
        return Err("--max-connections must be at least 1".into());
    }
    if config.queue_depth == 0 {
        return Err("--queue-depth must be at least 1".into());
    }
    if config.batch_steps == 0 {
        return Err("--batch-steps must be at least 1".into());
    }
    Ok(config)
}

/// Builds the load-generator configuration from `ingest drive` flags.
fn ingest_drive_config(args: &ParsedArgs) -> Result<temspc_ingest::DriveConfig, Box<dyn Error>> {
    let mut tapes: Vec<std::path::PathBuf> = Vec::new();
    if let Some(list) = args.get("tapes") {
        for part in list.split(',') {
            let part = part.trim();
            if !part.is_empty() {
                tapes.push(part.into());
            }
        }
    }
    if let Some(dir) = args.get("tape-dir") {
        let mut found: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "cap"))
            .collect();
        found.sort();
        tapes.extend(found);
    }
    if tapes.is_empty() {
        return Err("no tapes: pass --tapes a.cap,b.cap and/or --tape-dir <dir>".into());
    }
    let config = temspc_ingest::DriveConfig {
        addr: args.get_or("addr", "127.0.0.1:4840").to_string(),
        tapes,
        connections: args.get_parsed("connections", 1)?,
        rate: args.get_parsed("rate", 0.0)?,
        chunk: args.get_parsed("chunk", 0)?,
    };
    if config.connections == 0 {
        return Err("--connections must be at least 1".into());
    }
    if config.rate < 0.0 {
        return Err("--rate must be >= 0 (frames/s; 0 = unthrottled)".into());
    }
    Ok(config)
}

/// `temspc ingest serve` — bind, accept live plant streams, score them
/// with the shared T2/SPE path, and persist a TPB session report. With
/// `--model-store`, each connection resolves its own cohort monitor
/// through the sharded store instead of sharing one `--model`.
fn ingest_serve(args: &ParsedArgs) -> CmdResult {
    let config = ingest_serve_config(args)?;

    if let Some(dir) = args.get("model-store") {
        if args.get("model").is_some() {
            return Err("--model and --model-store are mutually exclusive".into());
        }
        let cohorts: usize = args.get_parsed("cohorts", 1)?;
        if cohorts == 0 {
            return Err("--cohorts must be at least 1".into());
        }
        println!("resolving per-plant monitors from model store {dir}/ ({cohorts} cohort(s)) ...");
        let store = temspc_fleet::ModelStore::new(store_config_from_args(args, dir)?);
        let server = temspc_ingest::IngestServer::bind_with_store(&store, cohorts, config)?;
        return run_ingest_serve(server, args, Some(&store));
    }

    let model_path = args.require("model")?;
    let monitor = load_monitor(model_path)?;
    let server = temspc_ingest::IngestServer::bind(&monitor, config)?;
    run_ingest_serve(server, args, None)
}

/// Shared tail of `temspc ingest serve`: the serve loop, the
/// per-connection table, the session report, and metrics exposition
/// (ingest + store when present).
fn run_ingest_serve(
    server: temspc_ingest::IngestServer<'_>,
    args: &ParsedArgs,
    store: Option<&temspc_fleet::ModelStore>,
) -> CmdResult {
    let report_path = args.get_or("report", "ingest_session.tpb").to_string();
    println!("listening on {}", server.local_addr()?);
    if let Some(path) = &server.config().incidents {
        println!("streaming incidents to {path}");
    }
    match server.config().expect {
        Some(n) => println!("serving until {n} connection(s) complete (or SIGINT/SIGTERM)"),
        None => println!("serving until SIGINT/SIGTERM; draining in-flight batches on stop"),
    }
    let stop = temspc_ingest::install_handlers();
    let report = server.run(stop)?;

    for conn in &report.connections {
        let status = if conn.completed { "complete" } else { "torn" };
        let latency = conn
            .detection_latency_hours
            .map_or_else(|| "-".to_string(), |h| format!("{:.1} s", h * 3600.0));
        let verdict = conn
            .verdict
            .map_or_else(|| "-".to_string(), |v| v.to_string());
        println!(
            "plant {:>4} [{status}] {} steps, verdict {verdict}, latency {latency}, digest {:016x}, gen {}",
            conn.plant, conn.steps, conn.digest, conn.model_generation
        );
        if let Some(fault) = &conn.fault {
            println!("  fault: {fault}");
        }
    }
    println!("\n{}", report.fleet_report());
    println!(
        "totals: {} connection(s), {} frames, {} steps, {} wire bytes, {} dropped, {} reassembly error(s)",
        report.connections.len(),
        report.frames,
        report.steps,
        report.bytes,
        report.drops,
        report.reassembly_errors
    );
    temspc_ingest::save_report(&report, &report_path)?;
    println!("wrote {report_path}");
    if let Some(path) = args.get("metrics") {
        let mut text = server.metrics().expose();
        if let Some(store) = store {
            text.push_str(&store.metrics().expose());
        }
        std::fs::write(path, text)?;
        println!("wrote {path}");
    }
    Ok(())
}

/// `temspc ingest drive` — replay capture tapes over real TCP sockets as
/// a load generator for `ingest serve`.
fn ingest_drive(args: &ParsedArgs) -> CmdResult {
    let config = ingest_drive_config(args)?;
    println!(
        "driving {} connection(s) at {} into {} ({} tape(s))",
        config.connections,
        if config.rate > 0.0 {
            format!("{} frame/s each", config.rate)
        } else {
            "full rate".to_string()
        },
        config.addr,
        config.tapes.len()
    );
    let report = temspc_ingest::drive(&config)?;
    println!(
        "drove {} connection(s): {} frames, {} wire bytes in {:.2} s",
        report.connections, report.frames, report.bytes, report.elapsed_secs
    );
    Ok(())
}

/// `temspc bench` — the parallel-efficiency sweep (`sweep`, default) or
/// the CI scaling gate (`smoke`).
pub fn bench(args: &ParsedArgs) -> CmdResult {
    use temspc_bench::sweep::{run_sweep, SweepConfig};
    use temspc_bench::trajectory::{fold_into_trajectory, Run};

    fn parse_list(text: &str) -> Result<Vec<usize>, String> {
        text.split(',')
            .map(|p| {
                p.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad list element '{p}' (expected e.g. 1,2,4)"))
            })
            .collect()
    }

    let mut config = SweepConfig {
        hours: args.get_parsed("hours", 0.25)?,
        samples: args.get_parsed("samples", 3)?,
        fleet_seed: args.get_parsed("seed", 7)?,
        ..SweepConfig::default()
    };
    if let Some(plants) = args.get("plants") {
        config.plants = parse_list(plants)?;
    }
    if let Some(threads) = args.get("threads") {
        config.threads = parse_list(threads)?;
    }
    let ap = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    match args.action().unwrap_or("sweep") {
        "sweep" => {
            let report = run_sweep(&config);
            print!("{}", report.table());
            let label = args
                .get("label")
                .map(str::to_owned)
                .unwrap_or_else(|| format!("sweep@ap{ap}"));
            let label = if label.contains("@ap") {
                label
            } else {
                format!("{label}@ap{ap}")
            };
            fold_into_trajectory(
                args.get_or("trajectory", "BENCH_fleet.json"),
                Run {
                    label,
                    results: report.to_results(),
                },
                args.flag("dry-run"),
            )?;
        }
        "smoke" => {
            let min_speedup: f64 = args.get_parsed("min-speedup", 1.3)?;
            let plants: usize = args.get_parsed("smoke-plants", 8)?;
            if ap < 2 {
                println!(
                    "bench smoke: SKIPPED — available_parallelism={ap} < 2; a 2-thread vs \
                     1-thread comparison cannot show scaling on this runner"
                );
                return Ok(());
            }
            let report = run_sweep(&SweepConfig {
                plants: vec![plants],
                threads: vec![1, 2],
                ..config
            });
            print!("{}", report.table());
            let cell = report
                .cell(2, plants)
                .ok_or("smoke sweep produced no 2-thread cell")?;
            if cell.speedup < min_speedup {
                return Err(format!(
                    "scaling regression: 2-thread speedup {:.2}x < {min_speedup:.2}x at \
                     {plants} plants (available_parallelism={ap})",
                    cell.speedup
                )
                .into());
            }
            println!(
                "bench smoke: OK — 2-thread speedup {:.2}x >= {min_speedup:.2}x at {plants} \
                 plants (available_parallelism={ap})",
                cell.speedup
            );
        }
        other => {
            return Err(format!("unknown bench action '{other}' (expected sweep or smoke)").into())
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(tokens.iter().copied()).unwrap()
    }

    #[test]
    fn ingest_serve_defaults() {
        let args = parse(&["ingest", "serve", "--model", "model.tpb"]);
        assert_eq!(args.subcommand(), Some("ingest"));
        assert_eq!(args.action(), Some("serve"));
        let config = ingest_serve_config(&args).unwrap();
        assert_eq!(config.addr, "127.0.0.1:4840");
        assert_eq!(config.max_connections, 1024);
        assert_eq!(config.queue_depth, 256);
        assert_eq!(config.batch_steps, 512);
        assert_eq!(config.threads, 0);
        assert_eq!(config.expect, None);
    }

    #[test]
    fn ingest_serve_flags_parse() {
        let args = parse(&[
            "ingest",
            "serve",
            "--model",
            "m.tpb",
            "--addr",
            "0.0.0.0:9000",
            "--max-connections=64",
            "--queue-depth",
            "32",
            "--batch-steps",
            "128",
            "--threads",
            "3",
            "--expect",
            "64",
        ]);
        let config = ingest_serve_config(&args).unwrap();
        assert_eq!(config.addr, "0.0.0.0:9000");
        assert_eq!(config.max_connections, 64);
        assert_eq!(config.queue_depth, 32);
        assert_eq!(config.batch_steps, 128);
        assert_eq!(config.threads, 3);
        assert_eq!(config.expect, Some(64));
    }

    #[test]
    fn ingest_serve_rejects_zero_limits() {
        for bad in [
            ["ingest", "serve", "--max-connections", "0"],
            ["ingest", "serve", "--queue-depth", "0"],
            ["ingest", "serve", "--batch-steps", "0"],
        ] {
            let args = parse(&bad);
            assert!(ingest_serve_config(&args).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn ingest_serve_rejects_bad_expect() {
        let args = parse(&["ingest", "serve", "--expect", "many"]);
        assert!(ingest_serve_config(&args).is_err());
    }

    #[test]
    fn ingest_drive_parses_tape_list() {
        let args = parse(&[
            "ingest",
            "drive",
            "--tapes",
            "a.cap, b.cap,",
            "--connections",
            "64",
            "--rate",
            "2.5",
            "--chunk",
            "7",
        ]);
        let config = ingest_drive_config(&args).unwrap();
        assert_eq!(config.addr, "127.0.0.1:4840");
        assert_eq!(
            config.tapes,
            vec![
                std::path::PathBuf::from("a.cap"),
                std::path::PathBuf::from("b.cap")
            ]
        );
        assert_eq!(config.connections, 64);
        assert_eq!(config.rate, 2.5);
        assert_eq!(config.chunk, 7);
    }

    #[test]
    fn ingest_drive_scans_tape_dir_sorted() {
        let dir = std::env::temp_dir().join(format!("temspc_cli_tapes_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("b.cap"), b"x").unwrap();
        std::fs::write(dir.join("a.cap"), b"x").unwrap();
        std::fs::write(dir.join("notes.txt"), b"x").unwrap();
        let dir_str = dir.to_str().unwrap().to_string();
        let args = parse(&["ingest", "drive", "--tape-dir", &dir_str]);
        let config = ingest_drive_config(&args).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        let names: Vec<_> = config
            .tapes
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["a.cap", "b.cap"]);
    }

    #[test]
    fn ingest_drive_requires_tapes() {
        let args = parse(&["ingest", "drive"]);
        let err = ingest_drive_config(&args).unwrap_err().to_string();
        assert!(err.contains("no tapes"), "unexpected error: {err}");
        let args = parse(&["ingest", "drive", "--connections", "0", "--tapes", "a.cap"]);
        assert!(ingest_drive_config(&args).is_err());
    }

    #[test]
    fn digest_is_a_boolean_flag() {
        let args = parse(&[
            "replay",
            "--model",
            "m.tpb",
            "--capture",
            "r.cap",
            "--digest",
        ]);
        assert!(args.flag("digest"));
        assert_eq!(args.get("capture"), Some("r.cap"));
    }

    #[test]
    fn usage_mentions_every_subcommand_dispatched() {
        // Help-text drift gate: every subcommand the binary dispatches
        // must appear in USAGE, including the ingest family.
        for name in [
            "simulate",
            "calibrate",
            "detect",
            "capture",
            "replay",
            "fleet",
            "ingest",
            "store",
            "bench",
            "experiments",
            "list",
        ] {
            assert!(
                USAGE.contains(&format!("temspc {name}")),
                "USAGE lost the '{name}' subcommand"
            );
        }
        for flag in [
            "--max-connections",
            "--queue-depth",
            "--batch-steps",
            "--digest",
        ] {
            assert!(USAGE.contains(flag), "USAGE lost the '{flag}' flag");
        }
    }
}
