//! `temspc` — the command-line interface of the workspace.
//!
//! ```text
//! temspc simulate  --hours 4 --idv 6 --attack xmv3 --onset 2 --seed 1 [--csv run.csv] [--no-noise]
//! temspc calibrate --runs 4 --hours 2 --out model.tpb [--net-out net.tpb]
//! temspc detect    --model model.tpb --scenario idv6 --hours 4 --onset 1 [--net net.tpb]
//! temspc capture   --out run.cap --scenario idv6 --hours 4 --onset 1 --seed 42
//! temspc replay    --model model.tpb --capture run.cap [--net net.tpb] [--digest]
//! temspc fleet     --plants 8 --threads 4 --hours 2 --attack-fraction 0.25
//!                  [--model-store models/ --cohorts 2]
//!                  [--checkpoint fleet.tpb] [--metrics fleet.prom]
//!                  [--record-captures dir | --replay dir]
//! temspc ingest    serve --model model.tpb --addr 127.0.0.1:4840 [--expect n] [--report s.tpb]
//! temspc ingest    drive --addr 127.0.0.1:4840 --tapes a.cap,b.cap --connections 64
//! temspc store     list|calibrate|evict --dir models/ [--key cohort_0]
//! temspc bench     sweep|smoke --plants 4,8,16 --threads 1,2,4 [--trajectory BENCH_fleet.json]
//! temspc experiments --mode quick|paper --out results/
//! temspc list
//! ```
//!
//! Run `temspc help` for details.

mod args;
mod commands;

use args::ParsedArgs;

fn main() {
    let parsed = match ParsedArgs::parse(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    let outcome = match parsed.subcommand() {
        Some("simulate") => commands::simulate(&parsed),
        Some("calibrate") => commands::calibrate(&parsed),
        Some("detect") => commands::detect(&parsed),
        Some("capture") => commands::capture(&parsed),
        Some("replay") => commands::replay(&parsed),
        Some("fleet") => commands::fleet(&parsed),
        Some("ingest") => commands::ingest(&parsed),
        Some("store") => commands::store(&parsed),
        Some("bench") => commands::bench(&parsed),
        Some("experiments") => commands::experiments(&parsed),
        Some("list") => commands::list(),
        Some("help") | None => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => {
            eprintln!("error: unknown subcommand '{other}'");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
