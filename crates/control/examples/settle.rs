//! Diagnostic: run the closed loop for N hours and print hourly snapshots.
//!
//! Usage: `cargo run --release -p temspc-control --example settle [hours] [idv] [seed]`

use temspc_control::DecentralizedController;
use temspc_tesim::{Disturbance, DisturbanceSet, PlantConfig, TePlant, SAMPLES_PER_HOUR};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let hours: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(24.0);
    let idv: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);

    let quiet = std::env::var("SETTLE_QUIET").is_ok();
    let mut cfg = PlantConfig::default();
    if quiet {
        cfg.measurement_noise = false;
        cfg.process_randomness = false;
    }
    let mut plant = TePlant::new(cfg, seed);
    if idv > 0 {
        let mut set = DisturbanceSet::new();
        set.schedule(Disturbance::from_idv_number(idv), 10.0);
        plant.set_disturbances(set);
        println!("# IDV({idv}) scheduled at hour 10");
    }
    let mut controller = DecentralizedController::new();

    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "hour",
        "XM1",
        "P_r",
        "T_r",
        "lvl_r",
        "lvl_s",
        "lvl_st",
        "T_s",
        "T_st",
        "purge",
        "XMV3",
        "XMV6",
        "XMV10",
        "feed%A"
    );
    let steps = (hours * SAMPLES_PER_HOUR as f64) as usize;
    for k in 0..steps {
        let xmeas = plant.measurements();
        let xmv = controller.step(xmeas.as_slice());
        if let Err(e) = plant.step(&xmv) {
            println!("# {e}");
            break;
        }
        if k % (SAMPLES_PER_HOUR / 2) == 0 {
            let s = plant.state();
            eprintln!(
                "h{:>6.2} Rliq F={:.1} G={:.1} H={:.1} | Rgas A={:.2} B={:.2} C={:.2} D={:.2} E={:.2} | SepV G={:.2} H={:.2} | SepL E={:.1} G={:.1} H={:.1} | St G={:.1} H={:.1}",
                plant.hour(),
                s.reactor_liquid[5], s.reactor_liquid[6], s.reactor_liquid[7],
                s.reactor_gas[0], s.reactor_gas[1], s.reactor_gas[2], s.reactor_gas[3], s.reactor_gas[4],
                s.sep_vapor[6], s.sep_vapor[7],
                s.sep_liquid[4], s.sep_liquid[6], s.sep_liquid[7],
                s.strip_liquid[6], s.strip_liquid[7],
            );
            let m = plant.measurements();
            println!(
                "{:>6.2} {:>8.4} {:>8.1} {:>8.2} {:>7.1} {:>7.1} {:>7.1} {:>7.2} {:>7.2} {:>7.4} {:>7.1} {:>7.1} {:>7.1} {:>7.1}",
                plant.hour(),
                m.xmeas(1),
                m.xmeas(7),
                m.xmeas(9),
                m.xmeas(8),
                m.xmeas(12),
                m.xmeas(15),
                m.xmeas(11),
                m.xmeas(18),
                m.xmeas(10),
                xmv[2],
                xmv[5],
                xmv[9],
                m.xmeas(23),
            );
        }
    }
    if let Some((reason, hour)) = plant.shutdown() {
        println!("# SHUTDOWN at {hour:.3}: {reason}");
    } else {
        println!("# completed {hours} h without shutdown");
    }
    // Final full measurement dump for calibration of nominal tables.
    let m = plant.measurements();
    println!("# final XMEAS:");
    for (i, v) in m.as_slice().iter().enumerate() {
        println!("#   XMEAS({}) = {:.4}", i + 1, v);
    }
    println!("# final XMV: {:?}", controller.last_xmv());
    if quiet {
        println!("# final state: {:?}", plant.state());
        println!("# final valves: {:?}", plant.valve_positions());
    }
}
