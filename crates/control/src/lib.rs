//! Decentralized plant-wide control for the TE-like process.
//!
//! Implements a Ricker-style (Ricker 1996) decentralized PI strategy: flow
//! loops on the four feeds, reactor-pressure control via the purge,
//! level loops on the separator and stripper, temperature loops on the
//! reactor, separator and stripper, a slow composition cascade trimming
//! the A-feed setpoint, and a reactor-pressure override on the A+C feed.
//!
//! The controller is *sample-driven*: call
//! [`DecentralizedController::step`] once per 1.8 s scan with the 41
//! XMEAS values it received (which, under attack, may not be what the
//! plant actually sent) and apply the returned 12 XMV commands.
//!
//! # Example
//!
//! ```
//! use temspc_tesim::{TePlant, PlantConfig};
//! use temspc_control::DecentralizedController;
//!
//! let mut plant = TePlant::new(PlantConfig::default(), 7);
//! let mut controller = DecentralizedController::new();
//! for _ in 0..50 {
//!     let xmeas = plant.measurements();
//!     let xmv = controller.step(xmeas.as_slice());
//!     plant.step(&xmv).unwrap();
//! }
//! assert!(!plant.is_shut_down());
//! ```

#![warn(missing_docs)]

mod pid;
mod ricker;

pub use pid::{Action, Pid, PidConfig};
pub use ricker::{ControllerConfig, DecentralizedController, Setpoints};
