//! Discrete PI/PID controller with anti-windup.

use serde::{Deserialize, Serialize};

/// Controller action: how the error is computed from PV and SP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Output increases when the PV is *below* the setpoint
    /// (e.g. a feed valve on a flow loop): `e = SP - PV`.
    Reverse,
    /// Output increases when the PV is *above* the setpoint
    /// (e.g. a purge valve on a pressure loop): `e = PV - SP`.
    Direct,
}

/// Static configuration of a PID loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidConfig {
    /// Proportional gain, output units per PV unit.
    pub kc: f64,
    /// Integral time in hours; `f64::INFINITY` for P-only control.
    pub ti_hours: f64,
    /// Derivative time in hours; 0 for PI control.
    pub td_hours: f64,
    /// Controller action.
    pub action: Action,
    /// Output low clamp.
    pub out_min: f64,
    /// Output high clamp.
    pub out_max: f64,
}

impl PidConfig {
    /// PI configuration with reverse action and 0–100 % output range.
    pub fn pi(kc: f64, ti_hours: f64, action: Action) -> Self {
        PidConfig {
            kc,
            ti_hours,
            td_hours: 0.0,
            action,
            out_min: 0.0,
            out_max: 100.0,
        }
    }
}

/// A discrete PID controller (positional form) with conditional-integration
/// anti-windup and a configurable bias.
///
/// # Example
///
/// ```
/// use temspc_control::{Action, Pid, PidConfig};
///
/// // A reverse-acting flow loop biased at 50 % output.
/// let mut pid = Pid::new(PidConfig::pi(2.0, 0.1, Action::Reverse), 10.0, 50.0);
/// let out = pid.update(8.0, 0.0005); // PV below SP -> output rises
/// assert!(out > 50.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pid {
    config: PidConfig,
    setpoint: f64,
    bias: f64,
    integral: f64,
    last_error: Option<f64>,
}

impl Pid {
    /// Creates a controller with the given setpoint and output bias (the
    /// output when the error and integral are zero).
    pub fn new(config: PidConfig, setpoint: f64, bias: f64) -> Self {
        Pid {
            config,
            setpoint,
            bias,
            integral: 0.0,
            last_error: None,
        }
    }

    /// Current setpoint.
    pub fn setpoint(&self) -> f64 {
        self.setpoint
    }

    /// Changes the setpoint (used by cascade outer loops).
    pub fn set_setpoint(&mut self, setpoint: f64) {
        self.setpoint = setpoint;
    }

    /// The loop configuration.
    pub fn config(&self) -> &PidConfig {
        &self.config
    }

    /// Resets the integral state and derivative memory.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
    }

    /// Computes the next output for measurement `pv` over scan interval
    /// `dt_hours`.
    ///
    /// The output is clamped to `[out_min, out_max]`; integration is
    /// suspended while the output is saturated in the direction that the
    /// error would push it further (conditional integration anti-windup).
    pub fn update(&mut self, pv: f64, dt_hours: f64) -> f64 {
        let error = match self.config.action {
            Action::Reverse => self.setpoint - pv,
            Action::Direct => pv - self.setpoint,
        };
        let p = self.config.kc * error;
        let d = if self.config.td_hours > 0.0 && dt_hours > 0.0 {
            match self.last_error {
                Some(prev) => self.config.kc * self.config.td_hours * (error - prev) / dt_hours,
                None => 0.0,
            }
        } else {
            0.0
        };
        self.last_error = Some(error);

        let candidate_integral = if self.config.ti_hours.is_finite() && self.config.ti_hours > 0.0 {
            self.integral + self.config.kc / self.config.ti_hours * error * dt_hours
        } else {
            self.integral
        };
        let unclamped = self.bias + p + candidate_integral + d;
        let clamped = unclamped.clamp(self.config.out_min, self.config.out_max);
        // Anti-windup: only accept the new integral if it does not push the
        // output further into saturation.
        if (unclamped > self.config.out_max && candidate_integral > self.integral)
            || (unclamped < self.config.out_min && candidate_integral < self.integral)
        {
            // keep the previous integral
        } else {
            self.integral = candidate_integral;
        }
        clamped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: f64 = 0.0005;

    #[test]
    fn reverse_action_raises_output_when_pv_low() {
        let mut pid = Pid::new(PidConfig::pi(1.0, 0.1, Action::Reverse), 50.0, 40.0);
        let out = pid.update(45.0, DT);
        assert!(out > 40.0);
    }

    #[test]
    fn direct_action_raises_output_when_pv_high() {
        let mut pid = Pid::new(PidConfig::pi(1.0, 0.1, Action::Direct), 50.0, 40.0);
        let out = pid.update(60.0, DT);
        assert!(out > 40.0);
        let out2 = pid.update(40.0, DT);
        assert!(out2 < out);
    }

    #[test]
    fn integral_removes_offset() {
        // Simulated first-order process: pv' = -(pv - u) / tau.
        let mut pid = Pid::new(PidConfig::pi(0.5, 0.02, Action::Reverse), 70.0, 0.0);
        let mut pv = 50.0;
        for _ in 0..40_000 {
            let u = pid.update(pv, DT);
            pv += (u - pv) / 0.01 * DT;
        }
        assert!((pv - 70.0).abs() < 0.5, "pv = {pv}");
    }

    #[test]
    fn output_is_clamped() {
        let mut pid = Pid::new(PidConfig::pi(100.0, 0.001, Action::Reverse), 100.0, 50.0);
        for _ in 0..1000 {
            let out = pid.update(0.0, DT);
            assert!(out <= 100.0);
        }
    }

    #[test]
    fn anti_windup_recovers_quickly() {
        let mut pid = Pid::new(PidConfig::pi(1.0, 0.01, Action::Reverse), 50.0, 50.0);
        // Saturate high for a long time.
        for _ in 0..10_000 {
            pid.update(0.0, DT);
        }
        // Error reverses; without anti-windup the output would stay pinned
        // for thousands of steps.
        let mut steps_to_recover = 0;
        for _ in 0..2000 {
            let out = pid.update(100.0, DT);
            steps_to_recover += 1;
            if out < 100.0 {
                break;
            }
        }
        assert!(steps_to_recover < 100, "took {steps_to_recover} steps");
    }

    #[test]
    fn p_only_with_infinite_ti() {
        let cfg = PidConfig {
            kc: 2.0,
            ti_hours: f64::INFINITY,
            td_hours: 0.0,
            action: Action::Reverse,
            out_min: 0.0,
            out_max: 100.0,
        };
        let mut pid = Pid::new(cfg, 50.0, 30.0);
        // Constant error -> constant output (no integration).
        let o1 = pid.update(40.0, DT);
        let o2 = pid.update(40.0, DT);
        assert_eq!(o1, o2);
        assert!((o1 - 50.0).abs() < 1e-12); // 30 + 2*10
    }

    #[test]
    fn derivative_term_reacts_to_error_slope() {
        let cfg = PidConfig {
            kc: 1.0,
            ti_hours: f64::INFINITY,
            td_hours: 0.01,
            action: Action::Reverse,
            out_min: -1000.0,
            out_max: 1000.0,
        };
        let mut pid = Pid::new(cfg, 0.0, 0.0);
        pid.update(0.0, DT);
        let out = pid.update(-1.0, DT); // error jumped from 0 to 1
                                        // P contributes 1; D contributes kc*td*de/dt = 0.01/0.0005 = 20.
        assert!(out > 20.0, "out = {out}");
    }

    #[test]
    fn setpoint_change_applies() {
        let mut pid = Pid::new(
            PidConfig::pi(1.0, f64::INFINITY, Action::Reverse),
            10.0,
            0.0,
        );
        assert_eq!(pid.setpoint(), 10.0);
        pid.set_setpoint(20.0);
        let out = pid.update(10.0, DT);
        assert!((out - 10.0).abs() < 1e-12);
    }
}
