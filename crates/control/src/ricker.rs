//! The Ricker-style decentralized control strategy for the TE-like plant.

use serde::{Deserialize, Serialize};
use temspc_tesim::{N_XMV, STEP_HOURS};

use crate::pid::{Action, Pid, PidConfig};

/// First-order low-pass filter for noisy process measurements.
///
/// Flow transmitters are noisy; industrial flow controllers filter the PV
/// before the PI so the valve does not chase measurement noise. This also
/// keeps the valves' normal-operation variance small, which matters for
/// MSPC: an attacked valve then stands far outside its calibration band.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LowPass {
    tau_hours: f64,
    state: Option<f64>,
}

impl LowPass {
    /// Creates a filter with time constant `tau_hours`.
    pub fn new(tau_hours: f64) -> Self {
        LowPass {
            tau_hours,
            state: None,
        }
    }

    /// Filters one sample over `dt_hours`.
    pub fn update(&mut self, value: f64, dt_hours: f64) -> f64 {
        let alpha = 1.0 - (-dt_hours / self.tau_hours.max(1e-9)).exp();
        let s = match self.state {
            Some(prev) => prev + alpha * (value - prev),
            None => value,
        };
        self.state = Some(s);
        s
    }
}

/// Setpoints of the decentralized strategy.
///
/// Defaults correspond to the plant's base case; experiments normally leave
/// them untouched.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Setpoints {
    /// D feed, kg/h — XMEAS(2).
    pub d_feed: f64,
    /// E feed, kg/h — XMEAS(3).
    pub e_feed: f64,
    /// A feed, kscmh — XMEAS(1); also the cascade inner setpoint.
    pub a_feed: f64,
    /// A+C feed, kscmh — XMEAS(4).
    pub ac_feed: f64,
    /// Reactor pressure, kPa — XMEAS(7).
    pub reactor_pressure: f64,
    /// Reactor temperature, °C — XMEAS(9).
    pub reactor_temp: f64,
    /// Separator temperature, °C — XMEAS(11).
    pub separator_temp: f64,
    /// Separator level, % — XMEAS(12).
    pub separator_level: f64,
    /// Stripper level, % — XMEAS(15).
    pub stripper_level: f64,
    /// Stripper temperature, °C — XMEAS(18).
    pub stripper_temp: f64,
    /// %A in the reactor feed, mol% — XMEAS(23), cascade outer setpoint.
    pub feed_pct_a: f64,
    /// Reactor level, % — XMEAS(8), regulated by trimming production.
    pub reactor_level: f64,
}

impl Default for Setpoints {
    fn default() -> Self {
        Setpoints {
            d_feed: 3379.5,
            e_feed: 4187.0,
            a_feed: 3.913,
            ac_feed: 5.10,
            reactor_pressure: 2705.0,
            reactor_temp: 120.40,
            separator_temp: 80.11,
            separator_level: 50.0,
            stripper_level: 50.0,
            stripper_temp: 65.73,
            feed_pct_a: 33.0,
            reactor_level: 65.0,
        }
    }
}

/// Configuration of the decentralized controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Loop setpoints.
    pub setpoints: Setpoints,
    /// Enable the slow %A-in-feed composition cascade that trims the
    /// A-feed flow setpoint.
    pub composition_cascade: bool,
    /// Enable the reactor-pressure override that cuts the A+C feed when
    /// the pressure approaches the interlock limit.
    pub pressure_override: bool,
    /// Enable the slow reactor-level loop that trims the D and E feed
    /// setpoints (the production master).
    pub production_trim: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            setpoints: Setpoints::default(),
            composition_cascade: true,
            pressure_override: true,
            production_trim: true,
        }
    }
}

/// The decentralized controller: 10 PI loops + 1 cascade + 1 override.
///
/// See the crate docs for the loop pairing. Call
/// [`DecentralizedController::step`] once per 1.8 s scan.
#[derive(Debug, Clone)]
pub struct DecentralizedController {
    config: ControllerConfig,
    d_feed: Pid,
    e_feed: Pid,
    a_feed: Pid,
    ac_feed: Pid,
    pressure: Pid,
    sep_level: Pid,
    strip_level: Pid,
    strip_temp: Pid,
    reactor_temp: Pid,
    sep_temp: Pid,
    a_composition: Pid,
    production: Pid,
    flow_filters: [LowPass; 4],
    last_xmv: [f64; N_XMV],
}

impl Default for DecentralizedController {
    fn default() -> Self {
        Self::new()
    }
}

impl DecentralizedController {
    /// Creates the controller with default setpoints and tuning.
    pub fn new() -> Self {
        Self::with_config(ControllerConfig::default())
    }

    /// Creates the controller with explicit configuration.
    pub fn with_config(config: ControllerConfig) -> Self {
        let sp = &config.setpoints;
        let d_feed = Pid::new(
            PidConfig::pi(0.0086, 0.01, Action::Reverse),
            sp.d_feed,
            58.15,
        );
        let e_feed = Pid::new(
            PidConfig::pi(0.006, 0.01, Action::Reverse),
            sp.e_feed,
            50.15,
        );
        let a_feed = Pid::new(PidConfig::pi(2.0, 0.05, Action::Reverse), sp.a_feed, 61.90);
        let ac_feed = Pid::new(PidConfig::pi(3.3, 0.01, Action::Reverse), sp.ac_feed, 61.33);
        let pressure = Pid::new(
            PidConfig::pi(0.12, 0.5, Action::Direct),
            sp.reactor_pressure,
            55.65,
        );
        let sep_level = Pid::new(
            PidConfig::pi(2.0, 1.0, Action::Direct),
            sp.separator_level,
            30.01,
        );
        let strip_level = Pid::new(
            PidConfig::pi(2.0, 1.0, Action::Direct),
            sp.stripper_level,
            36.38,
        );
        let strip_temp = Pid::new(
            PidConfig::pi(3.0, 0.2, Action::Reverse),
            sp.stripper_temp,
            36.76,
        );
        let reactor_temp = Pid::new(
            PidConfig::pi(12.0, 0.15, Action::Direct),
            sp.reactor_temp,
            23.54,
        );
        let sep_temp = Pid::new(
            PidConfig::pi(1.5, 0.2, Action::Direct),
            sp.separator_temp,
            16.73,
        );
        // Outer cascade: output is the A-feed flow setpoint in kscmh.
        let a_composition = Pid::new(
            PidConfig {
                kc: 0.010,
                ti_hours: 3.0,
                td_hours: 0.0,
                action: Action::Reverse,
                out_min: 0.5,
                out_max: 6.0,
            },
            sp.feed_pct_a,
            sp.a_feed,
        );
        // Production master: reactor level trims the D/E feed setpoints via
        // a bounded multiplicative factor.
        let production = Pid::new(
            PidConfig {
                kc: 0.004,
                ti_hours: 6.0,
                td_hours: 0.0,
                action: Action::Reverse,
                out_min: 0.30,
                out_max: 1.15,
            },
            sp.reactor_level,
            1.0,
        );
        DecentralizedController {
            config,
            d_feed,
            e_feed,
            a_feed,
            ac_feed,
            pressure,
            sep_level,
            strip_level,
            strip_temp,
            reactor_temp,
            sep_temp,
            a_composition,
            production,
            flow_filters: std::array::from_fn(|_| LowPass::new(20.0 / 3600.0)),
            last_xmv: temspc_tesim::plant::NOMINAL_XMV,
        }
    }

    /// The controller configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The most recent XMV command (what the controller believes it sent).
    pub fn last_xmv(&self) -> [f64; N_XMV] {
        self.last_xmv
    }

    /// Current A-feed flow setpoint (moves when the cascade is enabled).
    pub fn a_feed_setpoint(&self) -> f64 {
        self.a_feed.setpoint()
    }

    /// Runs one 1.8 s control scan on the received measurement vector and
    /// returns the 12 XMV commands (percent).
    ///
    /// # Panics
    ///
    /// Panics if `xmeas.len() != 41`.
    pub fn step(&mut self, xmeas: &[f64]) -> [f64; N_XMV] {
        assert_eq!(xmeas.len(), 41, "expected 41 XMEAS values");
        let dt = STEP_HOURS;
        let x = |n: usize| xmeas[n - 1];

        if self.config.composition_cascade {
            let sp = self.a_composition.update(x(23), dt);
            self.a_feed.set_setpoint(sp);
        }
        // High-pressure feed rundown: approaching the 3000 kPa interlock,
        // cut the A+C feed hard and run down the D/E feeds too.
        let rundown = if self.config.pressure_override {
            (1.0 - (x(7) - 2820.0) / 120.0).clamp(0.0, 1.0)
        } else {
            1.0
        };
        if self.config.production_trim {
            let factor = self.production.update(x(8), dt) * rundown.powf(0.7);
            self.d_feed
                .set_setpoint(self.config.setpoints.d_feed * factor);
            self.e_feed
                .set_setpoint(self.config.setpoints.e_feed * factor);
        }

        // Filtered flow PVs: the valves must not chase transmitter noise.
        let f_d = self.flow_filters[0].update(x(2), dt);
        let f_e = self.flow_filters[1].update(x(3), dt);
        let f_a = self.flow_filters[2].update(x(1), dt);
        let f_ac = self.flow_filters[3].update(x(4), dt);

        let mut xmv = [0.0; N_XMV];
        xmv[0] = self.d_feed.update(f_d, dt);
        xmv[1] = self.e_feed.update(f_e, dt);
        xmv[2] = self.a_feed.update(f_a, dt);
        let mut ac = self.ac_feed.update(f_ac, dt);
        ac *= rundown;
        xmv[3] = ac;
        xmv[4] = 22.21; // compressor recycle valve: fixed (Ricker)
        xmv[5] = self.pressure.update(x(7), dt);
        xmv[6] = self.sep_level.update(x(12), dt);
        xmv[7] = self.strip_level.update(x(15), dt);
        xmv[8] = self.strip_temp.update(x(18), dt);
        xmv[9] = self.reactor_temp.update(x(9), dt);
        xmv[10] = self.sep_temp.update(x(11), dt);
        xmv[11] = 50.0; // agitator: fixed
        self.last_xmv = xmv;
        xmv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temspc_tesim::measurement::MeasurementVector;

    fn nominal_scan(ctl: &mut DecentralizedController) -> [f64; N_XMV] {
        let m = MeasurementVector::nominal();
        ctl.step(m.as_slice())
    }

    #[test]
    fn nominal_measurements_give_near_nominal_commands() {
        let mut ctl = DecentralizedController::new();
        let xmv = nominal_scan(&mut ctl);
        for (i, (&cmd, &nom)) in xmv
            .iter()
            .zip(temspc_tesim::plant::NOMINAL_XMV.iter())
            .enumerate()
        {
            assert!(
                (cmd - nom).abs() < 8.0,
                "XMV({}) = {cmd}, nominal {nom}",
                i + 1
            );
        }
    }

    #[test]
    fn zero_a_feed_measurement_opens_xmv3() {
        let mut ctl = DecentralizedController::new();
        let mut vals = MeasurementVector::nominal().as_slice().to_vec();
        vals[0] = 0.0; // XMEAS(1) forged/lost to zero
        let mut last = 0.0;
        for _ in 0..2000 {
            last = ctl.step(&vals)[2];
        }
        assert!(last > 95.0, "XMV(3) should saturate open, got {last}");
    }

    #[test]
    fn high_pressure_opens_purge_and_cuts_feed() {
        let mut ctl = DecentralizedController::new();
        let mut vals = MeasurementVector::nominal().as_slice().to_vec();
        vals[6] = 2950.0;
        let xmv = ctl.step(&vals);
        assert!(xmv[5] > 60.0, "purge valve should open, got {}", xmv[5]);
        assert!(xmv[3] < 20.0, "A+C feed should be cut, got {}", xmv[3]);
    }

    #[test]
    fn cascade_trims_a_feed_setpoint() {
        let mut ctl = DecentralizedController::new();
        let mut vals = MeasurementVector::nominal().as_slice().to_vec();
        vals[22] = 45.0; // too much A in the feed
        let sp0 = ctl.a_feed_setpoint();
        for _ in 0..5000 {
            ctl.step(&vals);
        }
        assert!(
            ctl.a_feed_setpoint() < sp0,
            "setpoint should be trimmed down"
        );
    }

    #[test]
    fn cascade_can_be_disabled() {
        let cfg = ControllerConfig {
            composition_cascade: false,
            ..ControllerConfig::default()
        };
        let mut ctl = DecentralizedController::with_config(cfg);
        let mut vals = MeasurementVector::nominal().as_slice().to_vec();
        vals[22] = 45.0;
        let sp0 = ctl.a_feed_setpoint();
        for _ in 0..1000 {
            ctl.step(&vals);
        }
        assert_eq!(ctl.a_feed_setpoint(), sp0);
    }

    #[test]
    fn fixed_valves_stay_fixed() {
        let mut ctl = DecentralizedController::new();
        let xmv = nominal_scan(&mut ctl);
        assert_eq!(xmv[4], 22.21);
        assert_eq!(xmv[11], 50.0);
    }

    #[test]
    #[should_panic(expected = "expected 41")]
    fn wrong_length_panics() {
        DecentralizedController::new().step(&[0.0; 10]);
    }

    #[test]
    fn production_trim_raises_feeds_when_reactor_level_low() {
        let mut ctl = DecentralizedController::new();
        let mut vals = MeasurementVector::nominal().as_slice().to_vec();
        vals[7] = 40.0; // reactor level far below the 65 % setpoint
        let mut last = [0.0; N_XMV];
        for _ in 0..20_000 {
            last = ctl.step(&vals);
        }
        // D and E feed valves open beyond nominal to rebuild inventory.
        assert!(last[0] > 60.0, "XMV(1) = {}", last[0]);
        assert!(last[1] > 52.0, "XMV(2) = {}", last[1]);
    }

    #[test]
    fn rundown_cuts_all_feeds_near_the_pressure_interlock() {
        let mut ctl = DecentralizedController::new();
        let mut vals = MeasurementVector::nominal().as_slice().to_vec();
        vals[6] = 2940.0; // rundown fully active at 2940 kPa
        let xmv = ctl.step(&vals);
        assert_eq!(xmv[3], 0.0, "A+C feed must be cut");
        // D/E setpoints run down with factor^0.7 — after some scans the
        // flow loops chase the reduced setpoints downward.
        for _ in 0..5_000 {
            ctl.step(&vals);
        }
        let xmv = ctl.step(&vals);
        assert!(xmv[0] < 40.0, "XMV(1) = {}", xmv[0]);
    }

    #[test]
    fn flow_filter_smooths_noisy_pv() {
        let mut f = LowPass::new(20.0 / 3600.0);
        let dt = temspc_tesim::STEP_HOURS;
        // Alternate +1/-1 around 5.0: the filtered value stays near 5.
        let mut out = 0.0;
        for k in 0..2000 {
            let v = 5.0 + if k % 2 == 0 { 1.0 } else { -1.0 };
            out = f.update(v, dt);
        }
        assert!((out - 5.0).abs() < 0.3, "filtered = {out}");
    }

    #[test]
    fn flow_filter_tracks_dc_changes() {
        let mut f = LowPass::new(20.0 / 3600.0);
        let dt = temspc_tesim::STEP_HOURS;
        let mut out = 0.0;
        for _ in 0..500 {
            out = f.update(10.0, dt);
        }
        assert!((out - 10.0).abs() < 0.05, "filtered = {out}");
    }
}
