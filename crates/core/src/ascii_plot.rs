//! Terminal-friendly line and bar charts for the experiment outputs.
//!
//! The paper's figures are MATLAB plots; the experiment harness renders
//! the same data as ASCII so the reproduction is self-contained. Each
//! experiment additionally writes CSV files for external plotting.

/// Renders a line chart of `(x, y)` series.
///
/// `width`/`height` are the plot-area dimensions in characters. Multiple
/// calls with the same data are deterministic.
pub fn line_chart(title: &str, x: &[f64], y: &[f64], width: usize, height: usize) -> String {
    assert_eq!(x.len(), y.len(), "x and y lengths differ");
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if x.is_empty() || width == 0 || height == 0 {
        out.push_str("(no data)\n");
        return out;
    }
    let (xmin, xmax) = bounds(x);
    let (mut ymin, mut ymax) = bounds(y);
    if (ymax - ymin).abs() < 1e-12 {
        ymin -= 1.0;
        ymax += 1.0;
    }
    let mut grid = vec![vec![b' '; width]; height];
    for (&xv, &yv) in x.iter().zip(y) {
        let col = ((xv - xmin) / (xmax - xmin).max(1e-300) * (width - 1) as f64).round() as usize;
        let row = ((ymax - yv) / (ymax - ymin) * (height - 1) as f64).round() as usize;
        let (col, row) = (col.min(width - 1), row.min(height - 1));
        grid[row][col] = b'*';
    }
    for (r, line) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{ymax:>10.3} |")
        } else if r == height - 1 {
            format!("{ymin:>10.3} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.push_str(std::str::from_utf8(line).expect("ascii"));
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>10} +{}\n{:>12}{:<width$}\n",
        "",
        "-".repeat(width),
        format!("{xmin:.2}"),
        format!("{:>w$.2}", xmax, w = width.saturating_sub(4)),
        width = width
    ));
    out
}

/// Renders a horizontal bar chart (one row per labelled value) — the
/// shape of the paper's oMEDA plots. Bars extend left (negative) or right
/// (positive) of a zero axis.
pub fn bar_chart(title: &str, labels: &[String], values: &[f64], width: usize) -> String {
    assert_eq!(labels.len(), values.len(), "labels and values differ");
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if values.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let max_abs = values
        .iter()
        .fold(0.0_f64, |m, v| m.max(v.abs()))
        .max(1e-300);
    let half = width / 2;
    let label_w = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    for (label, &v) in labels.iter().zip(values) {
        let len = ((v.abs() / max_abs) * half as f64).round() as usize;
        let len = len.min(half);
        let mut line = String::new();
        if v < 0.0 {
            line.push_str(&" ".repeat(half - len));
            line.push_str(&"#".repeat(len));
            line.push('|');
            line.push_str(&" ".repeat(half));
        } else {
            line.push_str(&" ".repeat(half));
            line.push('|');
            line.push_str(&"#".repeat(len));
            line.push_str(&" ".repeat(half - len));
        }
        out.push_str(&format!("{label:>label_w$} {line} {v:>12.2}\n"));
    }
    out
}

fn bounds(v: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in v {
        if x.is_finite() {
            min = min.min(x);
            max = max.max(x);
        }
    }
    if !min.is_finite() {
        (0.0, 1.0)
    } else {
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_contains_points_and_labels() {
        let x: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let y: Vec<f64> = x.iter().map(|v| v.sin()).collect();
        let s = line_chart("sine", &x, &y, 60, 12);
        assert!(s.starts_with("sine"));
        assert!(s.contains('*'));
        assert!(s.contains("1.000") || s.contains("0.999")); // ymax label
    }

    #[test]
    fn empty_series_is_handled() {
        let s = line_chart("empty", &[], &[], 60, 10);
        assert!(s.contains("(no data)"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let x = [0.0, 1.0, 2.0];
        let y = [5.0, 5.0, 5.0];
        let s = line_chart("flat", &x, &y, 30, 5);
        assert!(s.contains('*'));
    }

    #[test]
    fn bar_chart_directions() {
        let labels = vec!["a".to_string(), "bb".to_string()];
        let s = bar_chart("bars", &labels, &[-2.0, 1.0], 40);
        let lines: Vec<&str> = s.lines().collect();
        // Negative bar: hashes before the axis; positive: after.
        let neg = lines[1];
        let pos = lines[2];
        assert!(neg.find('#').unwrap() < neg.find('|').unwrap());
        assert!(pos.find('#').unwrap() > pos.find('|').unwrap());
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        line_chart("bad", &[1.0], &[], 10, 5);
    }
}
