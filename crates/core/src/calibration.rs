//! Calibration-data generation: repeated normal-operation runs.
//!
//! This module owns the *definition* of the calibration campaign — which
//! scenarios to run and how to stack their outputs — and executes it
//! sequentially. The parallel execution path lives in `temspc-fleet`
//! (`temspc_fleet::calibrate`), which fans the same per-run closures out
//! over its worker pool; both paths produce byte-identical matrices
//! because run `k` is fully determined by `calibration_scenario(cfg, k)`
//! and results are stacked in run order.

use temspc_linalg::Matrix;

use crate::runner::{ClosedLoopRunner, RunError};
use crate::scenario::{Scenario, ScenarioKind};

/// Configuration of the calibration campaign.
///
/// The paper uses 30 runs of 72 h recorded at 2000 samples/hour; the MSPC
/// model is built from the runs decimated by `record_every` (monitoring
/// itself always happens at full rate).
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationConfig {
    /// Number of normal-operation runs (paper: 30).
    pub runs: usize,
    /// Duration of each run in hours (paper: 72).
    pub duration_hours: f64,
    /// Keep every n-th sample for model building (50 → one sample per
    /// 90 s).
    pub record_every: usize,
    /// Seed of the first run; run `k` uses `base_seed + k`.
    pub base_seed: u64,
    /// Worker threads for the pooled path in `temspc-fleet`
    /// (0 = one per run, capped at 16). The sequential path here ignores
    /// it; results are identical either way.
    pub threads: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            runs: 30,
            duration_hours: 72.0,
            record_every: 50,
            base_seed: 1_000,
            threads: 0,
        }
    }
}

impl CalibrationConfig {
    /// A small configuration for tests and benches.
    pub fn quick() -> Self {
        CalibrationConfig {
            runs: 3,
            duration_hours: 2.0,
            record_every: 10,
            base_seed: 1_000,
            threads: 0,
        }
    }
}

/// The scenario of calibration run `k`: normal operation with the run's
/// deterministic seed.
pub fn calibration_scenario(config: &CalibrationConfig, k: usize) -> Scenario {
    Scenario::short(
        ScenarioKind::Normal,
        config.duration_hours,
        f64::INFINITY,
        config.base_seed + k as u64,
    )
}

/// Executes calibration run `k` and returns its
/// `(controller_view, process_view)` matrices.
///
/// # Errors
///
/// Propagates the run's [`RunError`].
pub fn run_calibration_scenario(
    config: &CalibrationConfig,
    k: usize,
) -> Result<(Matrix, Matrix), RunError> {
    let scenario = calibration_scenario(config, k);
    ClosedLoopRunner::new(&scenario)
        .run(config.record_every, |_| {})
        .map(|d| (d.controller_view, d.process_view))
}

/// Stacks per-run `(controller, process)` matrices in run order.
///
/// Shared by the sequential path below and the pooled path in
/// `temspc-fleet` so both produce identical calibration data.
pub fn stack_calibration_runs(
    runs: impl IntoIterator<Item = (Matrix, Matrix)>,
) -> (Matrix, Matrix) {
    let mut controller = Matrix::default();
    let mut process = Matrix::default();
    for (c, p) in runs {
        controller
            .append_rows(&c)
            .expect("calibration runs share the monitored layout");
        process
            .append_rows(&p)
            .expect("calibration runs share the monitored layout");
    }
    (controller, process)
}

/// Runs the calibration campaign sequentially and returns the stacked
/// `(controller_view, process_view)` matrices.
///
/// For a multi-threaded campaign use `temspc_fleet::calibrate`, which
/// produces the same matrices.
///
/// # Errors
///
/// Propagates the first [`RunError`] of any run.
pub fn collect_calibration_data(config: &CalibrationConfig) -> Result<(Matrix, Matrix), RunError> {
    let runs: Vec<(Matrix, Matrix)> = (0..config.runs)
        .map(|k| run_calibration_scenario(config, k))
        .collect::<Result<_, _>>()?;
    Ok(stack_calibration_runs(runs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::N_MONITORED;

    #[test]
    fn quick_calibration_produces_stacked_matrices() {
        let cfg = CalibrationConfig {
            runs: 2,
            duration_hours: 0.2,
            record_every: 20,
            base_seed: 5,
            threads: 2,
        };
        let (c, p) = collect_calibration_data(&cfg).unwrap();
        assert_eq!(c.ncols(), N_MONITORED);
        assert_eq!(c.shape(), p.shape());
        // 0.2 h * 2000 / 20 = 20 rows per run, 2 runs.
        assert_eq!(c.nrows(), 40);
        // Normal operation: both views identical.
        assert_eq!(c, p);
        assert!(c.all_finite());
    }

    #[test]
    fn runs_use_distinct_seeds() {
        let cfg = CalibrationConfig {
            runs: 2,
            duration_hours: 0.05,
            record_every: 5,
            base_seed: 77,
            threads: 1,
        };
        let (c, _) = collect_calibration_data(&cfg).unwrap();
        // Rows from run 1 and run 2 at the same in-run index differ
        // (different noise realizations).
        let half = c.nrows() / 2;
        assert_ne!(c.row(1), c.row(half + 1));
    }

    #[test]
    fn per_run_helpers_match_campaign() {
        let cfg = CalibrationConfig {
            runs: 2,
            duration_hours: 0.05,
            record_every: 5,
            base_seed: 9,
            threads: 0,
        };
        let stacked = collect_calibration_data(&cfg).unwrap();
        let manual = stack_calibration_runs(
            (0..cfg.runs).map(|k| run_calibration_scenario(&cfg, k).unwrap()),
        );
        assert_eq!(stacked, manual);
    }
}
