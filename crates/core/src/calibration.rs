//! Calibration-data generation: repeated normal-operation runs, executed
//! in parallel.

use temspc_linalg::Matrix;

use crate::runner::{ClosedLoopRunner, RunError};
use crate::scenario::{Scenario, ScenarioKind};

/// Configuration of the calibration campaign.
///
/// The paper uses 30 runs of 72 h recorded at 2000 samples/hour; the MSPC
/// model is built from the runs decimated by `record_every` (monitoring
/// itself always happens at full rate).
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationConfig {
    /// Number of normal-operation runs (paper: 30).
    pub runs: usize,
    /// Duration of each run in hours (paper: 72).
    pub duration_hours: f64,
    /// Keep every n-th sample for model building (50 → one sample per
    /// 90 s).
    pub record_every: usize,
    /// Seed of the first run; run `k` uses `base_seed + k`.
    pub base_seed: u64,
    /// Worker threads (0 = one per run, capped at 16).
    pub threads: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            runs: 30,
            duration_hours: 72.0,
            record_every: 50,
            base_seed: 1_000,
            threads: 0,
        }
    }
}

impl CalibrationConfig {
    /// A small configuration for tests and benches.
    pub fn quick() -> Self {
        CalibrationConfig {
            runs: 3,
            duration_hours: 2.0,
            record_every: 10,
            base_seed: 1_000,
            threads: 0,
        }
    }
}

/// Runs the calibration campaign and returns the stacked
/// `(controller_view, process_view)` matrices.
///
/// Runs execute in parallel on `threads` workers (crossbeam scoped
/// threads).
///
/// # Errors
///
/// Propagates the first [`RunError`] of any run.
pub fn collect_calibration_data(config: &CalibrationConfig) -> Result<(Matrix, Matrix), RunError> {
    let n_workers = if config.threads == 0 {
        config.runs.min(16).max(1)
    } else {
        config.threads
    };
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<parking_lot::Mutex<Option<Result<(Matrix, Matrix), RunError>>>> =
        (0..config.runs).map(|_| parking_lot::Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|_| loop {
                let k = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if k >= config.runs {
                    break;
                }
                let scenario = Scenario::short(
                    ScenarioKind::Normal,
                    config.duration_hours,
                    f64::INFINITY,
                    config.base_seed + k as u64,
                );
                let outcome = ClosedLoopRunner::new(&scenario)
                    .run(config.record_every, |_| {})
                    .map(|d| (d.controller_view, d.process_view));
                *slots[k].lock() = Some(outcome);
            });
        }
    })
    .expect("calibration worker panicked");

    let mut controller = Matrix::default();
    let mut process = Matrix::default();
    for slot in slots {
        let (c, p) = slot.into_inner().expect("slot filled")?;
        for row in c.iter_rows() {
            controller.push_row(row);
        }
        for row in p.iter_rows() {
            process.push_row(row);
        }
    }
    Ok((controller, process))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::N_MONITORED;

    #[test]
    fn quick_calibration_produces_stacked_matrices() {
        let cfg = CalibrationConfig {
            runs: 2,
            duration_hours: 0.2,
            record_every: 20,
            base_seed: 5,
            threads: 2,
        };
        let (c, p) = collect_calibration_data(&cfg).unwrap();
        assert_eq!(c.ncols(), N_MONITORED);
        assert_eq!(c.shape(), p.shape());
        // 0.2 h * 2000 / 20 = 20 rows per run, 2 runs.
        assert_eq!(c.nrows(), 40);
        // Normal operation: both views identical.
        assert_eq!(c, p);
        assert!(c.all_finite());
    }

    #[test]
    fn runs_use_distinct_seeds() {
        let cfg = CalibrationConfig {
            runs: 2,
            duration_hours: 0.05,
            record_every: 5,
            base_seed: 77,
            threads: 1,
        };
        let (c, _) = collect_calibration_data(&cfg).unwrap();
        // Rows from run 1 and run 2 at the same in-run index differ
        // (different noise realizations).
        let half = c.nrows() / 2;
        assert_ne!(c.row(1), c.row(half + 1));
    }
}
