//! Scenario capture: record a live run's fieldbus traffic once, score it
//! offline any number of times.
//!
//! [`capture_scenario`] drives the closed loop with a passive tap
//! attached and stores every wire frame — both directions, both sides of
//! the adversary — in a [`ScenarioCapture`] together with the scenario
//! parameters and the shutdown outcome. [`DualMspc::score_capture`] and
//! [`crate::NetworkMonitor::score_capture`] then re-drive the recorded
//! traffic through the exact scoring paths a live run uses, so the
//! replayed detection hours, implicated variables and event windows are
//! bit-identical to the live outcome — without re-simulating the plant.
//!
//! Captures persist to disk with
//! [`crate::persistence::save_capture`]/[`crate::persistence::load_capture`].

use serde::{Deserialize, Serialize};
use temspc_linalg::Matrix;
use temspc_tesim::{ShutdownReason, N_XMEAS, N_XMV};

use temspc_fieldbus::{CaptureRecord, ReplayError, ReplayLink, ReplayStep};

use crate::monitor::{BlockMonitorState, DualMspc, ScenarioOutcome, RECORD_EVERY};
use crate::names::N_MONITORED;
use crate::runner::{ClosedLoopRunner, RunData, RunError};
use crate::scenario::Scenario;

/// A recorded scenario run: the wire tape plus the metadata needed to
/// score it exactly as the live run was scored.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioCapture {
    /// The scenario that produced the traffic (onset hour drives the
    /// false-alarm split during scoring).
    pub scenario: Scenario,
    /// Shutdown of the recorded run, if the plant tripped.
    pub shutdown: Option<(ShutdownReason, f64)>,
    /// The wire tape: four frames per closed-loop step, in step order.
    pub records: Vec<CaptureRecord>,
}

impl ScenarioCapture {
    /// Number of complete closed-loop steps the tape holds.
    pub fn steps(&self) -> usize {
        ReplayLink::new(&self.records).expected_steps()
    }
}

/// Errors raised while scoring a capture.
#[derive(Debug, Clone, PartialEq)]
pub enum CaptureError {
    /// The recorded tape is torn, reordered or carries corrupt frames.
    Replay(ReplayError),
    /// A replayed step carries the wrong channel counts — the tape was
    /// not recorded from a TE closed loop.
    Shape {
        /// Index of the offending step.
        step: usize,
        /// Expected `(sensors, actuators)` channel counts.
        expected: (usize, usize),
        /// Channel counts actually found.
        found: (usize, usize),
    },
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::Replay(e) => write!(f, "replay failure: {e}"),
            CaptureError::Shape {
                step,
                expected,
                found,
            } => write!(
                f,
                "step {step}: expected {}x{} channels, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
        }
    }
}

impl std::error::Error for CaptureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CaptureError::Replay(e) => Some(e),
            CaptureError::Shape { .. } => None,
        }
    }
}

impl From<ReplayError> for CaptureError {
    fn from(e: ReplayError) -> Self {
        CaptureError::Replay(e)
    }
}

/// Rejects steps whose channel counts differ from the TE loop's 41
/// sensors and 12 actuators (the replay grammar already guarantees the
/// sent/delivered widths of each direction agree).
pub(crate) fn check_shape(step_index: usize, step: &ReplayStep) -> Result<(), CaptureError> {
    let found = (step.true_xmeas.len(), step.delivered_xmv.len());
    if found != (N_XMEAS, N_XMV) {
        return Err(CaptureError::Shape {
            step: step_index,
            expected: (N_XMEAS, N_XMV),
            found,
        });
    }
    Ok(())
}

/// Runs a scenario with a capture tap attached and returns the recorded
/// tape (plus scenario and shutdown metadata).
///
/// # Errors
///
/// Returns [`RunError`] if the closed loop fails.
pub fn capture_scenario(scenario: &Scenario) -> Result<ScenarioCapture, RunError> {
    let runner = ClosedLoopRunner::new(scenario);
    let (data, records) = runner.run_captured(usize::MAX, |_| {})?;
    Ok(ScenarioCapture {
        scenario: scenario.clone(),
        shutdown: data.shutdown,
        records,
    })
}

/// Streaming scoring entry shared by the capture replay and the live
/// socket front half (`temspc-ingest`): push reassembled closed-loop
/// steps one at a time, finish into a [`ScenarioOutcome`].
///
/// The scorer wraps the same block-buffered dual-level scoring state
/// [`DualMspc::run_scenario`] uses — same decimation, same batched block
/// scorer, same detectors — so any two consumers fed the identical step
/// stream produce bit-identical detection hours, false alarms, event
/// windows and recorded rows. This is what makes a detection served off
/// a TCP wire diffable against an offline replay of the same tape.
pub struct StreamScorer<'m> {
    state: BlockMonitorState<'m>,
    steps: usize,
    hours: Vec<f64>,
    controller_rows: Matrix,
    process_rows: Matrix,
}

impl DualMspc {
    /// A streaming scorer for one plant's step stream, with the scenario
    /// onset hour driving the false-alarm split.
    pub fn stream_scorer(&self, onset_hour: f64) -> StreamScorer<'_> {
        StreamScorer {
            state: BlockMonitorState::new(self, onset_hour),
            steps: 0,
            hours: Vec::new(),
            controller_rows: Matrix::with_capacity(0, N_MONITORED),
            process_rows: Matrix::with_capacity(0, N_MONITORED),
        }
    }

    /// Scores a recorded capture through the dual-level charts.
    ///
    /// The replayed traffic is pushed through exactly the scoring path of
    /// [`DualMspc::run_scenario`] — same decimation, same batched block
    /// scorer, same detectors — so the detection hours, false alarms,
    /// event windows and recorded rows are bit-identical to the live run
    /// that produced the tape.
    ///
    /// # Errors
    ///
    /// Returns [`CaptureError`] if the tape is corrupt or was not
    /// recorded from a TE closed loop.
    pub fn score_capture(
        &self,
        capture: &ScenarioCapture,
    ) -> Result<ScenarioOutcome, CaptureError> {
        let mut scorer = self.stream_scorer(capture.scenario.onset_hour);
        for step in ReplayLink::new(&capture.records) {
            scorer.push_step(&step?)?;
        }
        Ok(scorer.finish(capture.scenario.clone(), capture.shutdown))
    }
}

impl StreamScorer<'_> {
    /// Pushes one reassembled closed-loop step.
    ///
    /// # Errors
    ///
    /// Returns [`CaptureError::Shape`] when the step's channel counts do
    /// not match the TE loop's 41 sensors and 12 actuators. The scorer
    /// state is unchanged on error.
    pub fn push_step(&mut self, step: &ReplayStep) -> Result<(), CaptureError> {
        check_shape(self.steps, step)?;
        let mut controller_view = Vec::with_capacity(N_MONITORED);
        controller_view.extend_from_slice(&step.received_xmeas);
        controller_view.extend_from_slice(&step.commanded_xmv);
        let mut process_view = Vec::with_capacity(N_MONITORED);
        process_view.extend_from_slice(&step.true_xmeas);
        process_view.extend_from_slice(&step.delivered_xmv);
        self.state.push(step.hour, &controller_view, &process_view);
        if self.steps.is_multiple_of(RECORD_EVERY) {
            self.hours.push(step.hour);
            self.controller_rows.push_row(&controller_view);
            self.process_rows.push_row(&process_view);
        }
        self.steps += 1;
        Ok(())
    }

    /// Steps scored so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Detection events fired so far on each level — `(controller,
    /// process)`, in firing order. Samples are scored in blocks, so an
    /// event surfaces once its block flushes (bounded latency, a few
    /// hundred samples); polling this between pushes observes exactly
    /// the events [`StreamScorer::finish`] will fold into the outcome.
    /// This is what lets a live server stream incidents out as they
    /// fire instead of only at connection drain.
    pub fn events(
        &self,
    ) -> (
        &[temspc_mspc::AnomalousEvent],
        &[temspc_mspc::AnomalousEvent],
    ) {
        self.state.events()
    }

    /// Folds the detector state into a full [`ScenarioOutcome`].
    ///
    /// `scenario` and `shutdown` carry the run metadata the wire itself
    /// does not (a live socket stream has no shutdown record — pass
    /// `None` there; the detection fields are unaffected either way).
    pub fn finish(
        self,
        scenario: Scenario,
        shutdown: Option<(ShutdownReason, f64)>,
    ) -> ScenarioOutcome {
        let stream = self.state.finish();
        ScenarioOutcome {
            run: RunData {
                scenario,
                hours: self.hours,
                controller_view: self.controller_rows,
                process_view: self.process_rows,
                shutdown,
            },
            detection: stream.detection,
            false_alarms: stream.false_alarms,
            event_rows_controller: stream.event_rows_controller,
            event_rows_process: stream.event_rows_process,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::CalibrationConfig;
    use crate::scenario::ScenarioKind;

    fn quick_monitor() -> DualMspc {
        let cfg = CalibrationConfig {
            runs: 3,
            duration_hours: 1.0,
            record_every: 10,
            base_seed: 100,
            threads: 3,
        };
        DualMspc::calibrate(&cfg).unwrap()
    }

    #[test]
    fn capture_holds_four_frames_per_step() {
        let s = Scenario::short(ScenarioKind::Normal, 0.05, f64::INFINITY, 7);
        let capture = capture_scenario(&s).unwrap();
        assert_eq!(capture.steps(), 100); // 0.05 h * 2000 steps/h
        assert_eq!(capture.records.len(), 400);
        assert!(capture.shutdown.is_none());
    }

    #[test]
    fn replay_matches_live_run_bit_for_bit() {
        let monitor = quick_monitor();
        let s = Scenario::short(ScenarioKind::IntegrityXmv3, 1.0, 0.3, 42);
        let live = monitor.run_scenario(&s).unwrap();
        let capture = capture_scenario(&s).unwrap();
        let replayed = monitor.score_capture(&capture).unwrap();

        let fmt_event = |e: &Option<temspc_mspc::AnomalousEvent>| {
            e.map(|e| (e.detected_hour.to_bits(), e.first_violation_hour.to_bits()))
        };
        assert_eq!(
            fmt_event(&live.detection.controller),
            fmt_event(&replayed.detection.controller)
        );
        assert_eq!(
            fmt_event(&live.detection.process),
            fmt_event(&replayed.detection.process)
        );
        assert_eq!(live.false_alarms, replayed.false_alarms);
        assert_eq!(live.event_rows_controller, replayed.event_rows_controller);
        assert_eq!(live.event_rows_process, replayed.event_rows_process);
        assert_eq!(live.run.hours, replayed.run.hours);
        assert_eq!(live.run.controller_view, replayed.run.controller_view);
        assert_eq!(live.run.process_view, replayed.run.process_view);
        assert_eq!(live.run.shutdown, replayed.run.shutdown);
    }

    #[test]
    fn corrupt_capture_is_rejected() {
        let monitor = quick_monitor();
        let s = Scenario::short(ScenarioKind::Normal, 0.02, f64::INFINITY, 9);
        let mut capture = capture_scenario(&s).unwrap();
        capture.records[2].wire.truncate(10);
        assert!(matches!(
            monitor.score_capture(&capture),
            Err(CaptureError::Replay(ReplayError::Frame { index: 2, .. }))
        ));
    }

    #[test]
    fn wrong_channel_count_is_a_shape_error() {
        use temspc_fieldbus::{Frame, FrameKind, TapPoint};
        let monitor = quick_monitor();
        // A hand-built tape with 3 sensors / 1 actuator: well-formed wire,
        // wrong plant.
        let mk = |kind, values: Vec<f64>| Frame::new(kind, 0, 0.0, values).encode().unwrap();
        let records = vec![
            CaptureRecord {
                point: TapPoint::UplinkSent,
                hour: 0.0,
                wire: mk(FrameKind::SensorReport, vec![1.0; 3]).to_vec(),
            },
            CaptureRecord {
                point: TapPoint::UplinkDelivered,
                hour: 0.0,
                wire: mk(FrameKind::SensorReport, vec![1.0; 3]).to_vec(),
            },
            CaptureRecord {
                point: TapPoint::DownlinkSent,
                hour: 0.0,
                wire: mk(FrameKind::ActuatorCommand, vec![1.0; 1]).to_vec(),
            },
            CaptureRecord {
                point: TapPoint::DownlinkDelivered,
                hour: 0.0,
                wire: mk(FrameKind::ActuatorCommand, vec![1.0; 1]).to_vec(),
            },
        ];
        let capture = ScenarioCapture {
            scenario: Scenario::short(ScenarioKind::Normal, 0.01, f64::INFINITY, 1),
            shutdown: None,
            records,
        };
        assert_eq!(
            monitor.score_capture(&capture).unwrap_err(),
            CaptureError::Shape {
                step: 0,
                expected: (41, 12),
                found: (3, 1),
            }
        );
    }
}
