//! A tiny CSV writer for the experiment outputs (no external dependency;
//! all emitted values are plain numbers or simple identifiers).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Builds CSV content in memory.
#[derive(Debug, Default, Clone)]
pub struct CsvWriter {
    content: String,
    columns: usize,
}

impl CsvWriter {
    /// Creates a writer with a header row.
    pub fn with_header(columns: &[&str]) -> Self {
        let mut w = CsvWriter {
            content: String::new(),
            columns: columns.len(),
        };
        w.push_row_str(columns);
        w
    }

    fn push_row_str(&mut self, row: &[&str]) {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                self.content.push(',');
            }
            debug_assert!(
                !cell.contains(',') && !cell.contains('"') && !cell.contains('\n'),
                "experiment CSV cells are plain identifiers/numbers"
            );
            self.content.push_str(cell);
        }
        self.content.push('\n');
    }

    /// Appends a row of numbers.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_numbers(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.columns, "CSV row width mismatch");
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                self.content.push(',');
            }
            let _ = write!(self.content, "{v}");
        }
        self.content.push('\n');
    }

    /// Appends a row with one or more leading label cells (comma-separated
    /// inside `label`) followed by numbers.
    ///
    /// # Panics
    ///
    /// Panics if the total cell count differs from the header width.
    pub fn push_labelled(&mut self, label: &str, numbers: &[f64]) {
        let label_cells = label.split(',').count();
        assert_eq!(
            label_cells + numbers.len(),
            self.columns,
            "CSV row width mismatch"
        );
        self.content.push_str(label);
        for v in numbers {
            let _ = write!(self.content, ",{v}");
        }
        self.content.push('\n');
    }

    /// The CSV text built so far.
    pub fn as_str(&self) -> &str {
        &self.content
    }

    /// Writes the content to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, &self.content)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_rows() {
        let mut w = CsvWriter::with_header(&["hour", "value"]);
        w.push_numbers(&[1.0, 2.5]);
        w.push_labelled("x", &[3.0]);
        assert_eq!(w.as_str(), "hour,value\n1,2.5\nx,3\n");
    }

    #[test]
    fn multi_cell_labels() {
        let mut w = CsvWriter::with_header(&["a", "b", "v"]);
        w.push_labelled("x,y", &[1.0]);
        assert_eq!(w.as_str(), "a,b,v\nx,y,1\n");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        let mut w = CsvWriter::with_header(&["a", "b"]);
        w.push_numbers(&[1.0]);
    }

    #[test]
    fn write_creates_directories() {
        let dir = std::env::temp_dir().join("temspc_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        let mut w = CsvWriter::with_header(&["v"]);
        w.push_numbers(&[7.0]);
        w.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "v\n7\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
