//! Anomaly diagnosis: comparing controller-level and process-level oMEDA
//! vectors to distinguish disturbances from intrusions.
//!
//! This module is the executable form of §V-A of the paper:
//!
//! * a **disturbance** produces the *same* diagnosis at both levels (the
//!   two views carry identical data when nobody tampers with the fieldbus);
//! * an **integrity attack** produces diverging diagnoses — e.g. the
//!   controller view blames `XMEAS(1)` while the process view reveals
//!   `XMV(3)` as the manipulated variable;
//! * a **DoS** detects late and diagnoses diffusely (low "clarity").

use serde::{Deserialize, Serialize};
use temspc_mspc::omeda::{diagnosis_clarity, dominant_variable, omeda};

use crate::monitor::{DualMspc, ScenarioOutcome};
use crate::names::variable_name;

/// The verdict on an anomaly's origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Both levels tell the same story: a process disturbance.
    Disturbance,
    /// The levels diverge: someone is forging data in flight.
    Intrusion,
    /// Detected, but the diagnosis does not implicate clear variables.
    Inconclusive,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Verdict::Disturbance => "disturbance",
            Verdict::Intrusion => "intrusion",
            Verdict::Inconclusive => "inconclusive",
        };
        f.write_str(s)
    }
}

/// A full dual-level diagnosis of one anomalous event.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnomalyDiagnosis {
    /// oMEDA vector from the controller-level view (53 entries).
    pub controller_omeda: Vec<f64>,
    /// oMEDA vector from the process-level view (53 entries).
    pub process_omeda: Vec<f64>,
    /// Dominant variable (0-based index, signed value) per level.
    pub controller_dominant: (usize, f64),
    /// Dominant variable of the process-level view.
    pub process_dominant: (usize, f64),
    /// Clarity (0..1) of each level's bar plot.
    pub controller_clarity: f64,
    /// Clarity of the process-level plot.
    pub process_clarity: f64,
    /// Divergence between the two levels (0 = identical stories).
    pub divergence: f64,
    /// The verdict.
    pub verdict: Verdict,
}

impl AnomalyDiagnosis {
    /// Name of the variable the controller-level view implicates.
    pub fn controller_variable(&self) -> String {
        variable_name(self.controller_dominant.0)
    }

    /// Name of the variable the process-level view implicates.
    pub fn process_variable(&self) -> String {
        variable_name(self.process_dominant.0)
    }
}

/// Divergence between two oMEDA vectors: `1 − cosine similarity` of the
/// normalized vectors, in `[0, 2]` (0 = same story, 2 = opposite).
pub fn omeda_divergence(a: &[f64], b: &[f64]) -> f64 {
    let na: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    if na < 1e-300 || nb < 1e-300 {
        return 0.0;
    }
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    1.0 - dot / (na * nb)
}

/// Thresholds of the verdict rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerdictThresholds {
    /// Divergence above this ⇒ intrusion.
    pub divergence: f64,
    /// Maximum clarity below this ⇒ inconclusive.
    pub clarity: f64,
}

impl Default for VerdictThresholds {
    fn default() -> Self {
        VerdictThresholds {
            divergence: 0.10,
            clarity: 0.30,
        }
    }
}

/// Diagnoses a monitored scenario outcome.
///
/// Computes oMEDA at both levels over the anomalous-event window, then
/// applies the verdict rule: diverging levels ⇒ intrusion; agreeing,
/// clear levels ⇒ disturbance; unclear ⇒ inconclusive.
///
/// Returns `None` if the outcome contains no anomalous window (nothing
/// was detected).
pub fn diagnose(
    monitor: &DualMspc,
    outcome: &ScenarioOutcome,
    thresholds: VerdictThresholds,
) -> Option<AnomalyDiagnosis> {
    if outcome.event_rows_controller.nrows() == 0 {
        return None;
    }
    let dummy = vec![1.0; outcome.event_rows_controller.nrows()];
    let controller_omeda = omeda(
        &outcome.event_rows_controller,
        &dummy,
        monitor.controller_model().pca(),
    )
    .ok()?;
    let process_omeda = omeda(
        &outcome.event_rows_process,
        &dummy,
        monitor.process_model().pca(),
    )
    .ok()?;
    let controller_dominant = dominant_variable(&controller_omeda)?;
    let process_dominant = dominant_variable(&process_omeda)?;
    let controller_clarity = diagnosis_clarity(&controller_omeda);
    let process_clarity = diagnosis_clarity(&process_omeda);
    let divergence = omeda_divergence(&controller_omeda, &process_omeda);

    let verdict = if divergence > thresholds.divergence {
        Verdict::Intrusion
    } else if controller_clarity.max(process_clarity) < thresholds.clarity {
        Verdict::Inconclusive
    } else {
        Verdict::Disturbance
    };

    Some(AnomalyDiagnosis {
        controller_omeda,
        process_omeda,
        controller_dominant,
        process_dominant,
        controller_clarity,
        process_clarity,
        divergence,
        verdict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergence_of_identical_vectors_is_zero() {
        let v = vec![1.0, -2.0, 3.0];
        assert!(omeda_divergence(&v, &v) < 1e-12);
    }

    #[test]
    fn divergence_of_orthogonal_vectors_is_one() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        assert!((omeda_divergence(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn divergence_of_opposite_vectors_is_two() {
        let a = vec![1.0, 2.0];
        let b = vec![-1.0, -2.0];
        assert!((omeda_divergence(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_vectors_have_zero_divergence() {
        assert_eq!(omeda_divergence(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::Disturbance.to_string(), "disturbance");
        assert_eq!(Verdict::Intrusion.to_string(), "intrusion");
        assert_eq!(Verdict::Inconclusive.to_string(), "inconclusive");
    }
}
