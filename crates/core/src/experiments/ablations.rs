//! Ablation studies on the design choices of the MSPC pipeline (beyond
//! the paper, motivated by its §VI/§VII discussion):
//!
//! * **PC count** — how the retained-variance choice affects detection
//!   delay and false alarms;
//! * **consecutive-rule length** — the paper's "3 consecutive
//!   observations" versus 1 (plain Shewhart) and longer runs;
//! * **EWMA charts** — whether EWMA filtering shortens the DoS run
//!   length, as classic SPC theory predicts for small persistent shifts.

use temspc_mspc::detector::DetectorConfig;
use temspc_mspc::pca::ComponentSelection;
use temspc_mspc::{ConsecutiveDetector, EwmaChart, MspcConfig, MspcModel};

use crate::calibration::{collect_calibration_data, CalibrationConfig};
use crate::csv::CsvWriter;
use crate::experiments::ExperimentContext;
use crate::runner::{ClosedLoopRunner, RunError};
use crate::scenario::{Scenario, ScenarioKind};

/// One row of the PC-count ablation.
#[derive(Debug, Clone)]
pub struct PcCountRow {
    /// Retained components.
    pub components: usize,
    /// Explained variance fraction.
    pub explained: f64,
    /// Run length on the XMV(3) integrity attack, hours.
    pub attack_rl: Option<f64>,
    /// False-alarm observations per hour on a fresh normal run.
    pub false_alarm_rate: f64,
}

/// One row of the consecutive-rule ablation.
#[derive(Debug, Clone)]
pub struct RuleRow {
    /// Rule length (the paper uses 3).
    pub consecutive: usize,
    /// Run length on the DoS scenario, hours.
    pub dos_rl: Option<f64>,
    /// False-alarm *events* per hour on a fresh normal run.
    pub false_events_per_hour: f64,
}

/// Result of the EWMA ablation.
#[derive(Debug, Clone)]
pub struct EwmaRow {
    /// EWMA lambda (1.0 = plain Shewhart chart).
    pub lambda: f64,
    /// DoS run length, hours.
    pub dos_rl: Option<f64>,
}

/// All three ablations.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// PC-count sweep.
    pub pc_rows: Vec<PcCountRow>,
    /// Consecutive-rule sweep.
    pub rule_rows: Vec<RuleRow>,
    /// EWMA sweep.
    pub ewma_rows: Vec<EwmaRow>,
}

/// Runs all ablations; writes `tab4_ablations.{csv,txt}`.
///
/// Uses its own (smaller) calibration population so the sweep is
/// self-contained and cheap.
///
/// # Errors
///
/// Returns [`RunError`] if a closed-loop run fails.
pub fn run(ctx: &ExperimentContext) -> Result<AblationResult, RunError> {
    // Self-contained calibration for the sweep, scaled with the context's
    // horizon so the calibration sees the same slow plant wander that the
    // evaluation runs will (otherwise the false-alarm columns measure
    // calibration-coverage error, not the design choice under study).
    let calib_cfg = CalibrationConfig {
        runs: 6,
        duration_hours: ctx.duration_hours.clamp(0.5, 24.0),
        record_every: 20,
        base_seed: 31_000,
        threads: 0,
    };
    let (controller_calib, _) = collect_calibration_data(&calib_cfg)?;

    let attack = Scenario::short(
        ScenarioKind::IntegrityXmv3,
        ctx.duration_hours,
        ctx.onset_hour,
        ctx.base_seed,
    );
    let dos = Scenario::short(
        ScenarioKind::DosXmv3,
        ctx.duration_hours,
        ctx.onset_hour,
        ctx.base_seed,
    );
    let normal = Scenario::short(
        ScenarioKind::Normal,
        ctx.duration_hours,
        f64::INFINITY,
        ctx.base_seed + 5_000,
    );

    // ---------------- PC count sweep ----------------
    let mut pc_rows = Vec::new();
    for &a in &[2usize, 5, 10, 20, 40] {
        if a >= controller_calib.ncols() {
            continue;
        }
        let cfg = MspcConfig {
            components: ComponentSelection::Fixed(a),
            ..MspcConfig::default()
        };
        let model = MspcModel::fit(&controller_calib, cfg)?;
        let attack_rl = run_length(&model, &attack, DetectorConfig::default())?;
        let false_alarm_rate = false_alarm_observations_per_hour(&model, &normal)?;
        pc_rows.push(PcCountRow {
            components: a,
            explained: model.pca().explained_variance(),
            attack_rl,
            false_alarm_rate,
        });
    }

    // ---------------- consecutive-rule sweep ----------------
    let base_model = MspcModel::fit(&controller_calib, MspcConfig::default())?;
    let mut rule_rows = Vec::new();
    for &consecutive in &[1usize, 3, 5, 10] {
        let det = DetectorConfig { consecutive };
        let dos_rl = run_length(&base_model, &dos, det)?;
        let false_events_per_hour = false_events_per_hour(&base_model, &normal, det)?;
        rule_rows.push(RuleRow {
            consecutive,
            dos_rl,
            false_events_per_hour,
        });
    }

    // ---------------- EWMA sweep ----------------
    let mut ewma_rows = Vec::new();
    for &lambda in &[1.0f64, 0.2, 0.05, 0.01] {
        let dos_rl = ewma_run_length(&base_model, &controller_calib, &dos, lambda)?;
        ewma_rows.push(EwmaRow { lambda, dos_rl });
    }

    // ---------------- artifacts ----------------
    let mut csv = CsvWriter::with_header(&["sweep", "parameter", "metric1", "metric2"]);
    let mut text = String::from("Table 4 (beyond the paper): pipeline ablations\n\n");
    text.push_str("PC count   explained   attack RL [h]   false alarms [obs/h]\n");
    for r in &pc_rows {
        csv.push_labelled(
            &format!("pc_count,{}", r.components),
            &[r.attack_rl.unwrap_or(f64::NAN), r.false_alarm_rate],
        );
        text.push_str(&format!(
            "{:>8} {:>10.3} {:>15.4} {:>20.2}\n",
            r.components,
            r.explained,
            r.attack_rl.unwrap_or(f64::NAN),
            r.false_alarm_rate
        ));
    }
    text.push_str("\nrule len   DoS RL [h]   false events [1/h]\n");
    for r in &rule_rows {
        csv.push_labelled(
            &format!("consecutive,{}", r.consecutive),
            &[r.dos_rl.unwrap_or(f64::NAN), r.false_events_per_hour],
        );
        text.push_str(&format!(
            "{:>8} {:>12.4} {:>18.3}\n",
            r.consecutive,
            r.dos_rl.unwrap_or(f64::NAN),
            r.false_events_per_hour
        ));
    }
    text.push_str("\nEWMA lambda   DoS RL [h]\n");
    for r in &ewma_rows {
        csv.push_labelled(
            &format!("ewma_lambda,{}", r.lambda),
            &[r.dos_rl.unwrap_or(f64::NAN), f64::NAN],
        );
        text.push_str(&format!(
            "{:>11} {:>12.4}\n",
            r.lambda,
            r.dos_rl.unwrap_or(f64::NAN)
        ));
    }
    let _ = csv.write_to(ctx.results_dir.join("tab4_ablations.csv"));
    let _ = std::fs::create_dir_all(&ctx.results_dir);
    let _ = std::fs::write(ctx.results_dir.join("tab4_ablations.txt"), &text);

    Ok(AblationResult {
        pc_rows,
        rule_rows,
        ewma_rows,
    })
}

/// Run length of the first post-onset event on the controller-level view.
fn run_length(
    model: &MspcModel,
    scenario: &Scenario,
    det: DetectorConfig,
) -> Result<Option<f64>, RunError> {
    let mut detector = ConsecutiveDetector::new(*model.limits(), det);
    ClosedLoopRunner::new(scenario).run(usize::MAX, |sample| {
        let s = model.score(&sample.controller_view).expect("fixed length");
        detector.update(sample.hour, s.t2, s.spe);
    })?;
    Ok(detector
        .events()
        .iter()
        .find(|e| e.detected_hour >= scenario.onset_hour)
        .map(|e| e.detected_hour - scenario.onset_hour))
}

/// Violating observations per hour on a normal run.
fn false_alarm_observations_per_hour(
    model: &MspcModel,
    scenario: &Scenario,
) -> Result<f64, RunError> {
    let mut violations = 0u64;
    let mut samples = 0u64;
    ClosedLoopRunner::new(scenario).run(usize::MAX, |sample| {
        samples += 1;
        let s = model.score(&sample.controller_view).expect("fixed length");
        if model.limits().violates_99(s.t2, s.spe) {
            violations += 1;
        }
    })?;
    let hours = samples as f64 / temspc_tesim::SAMPLES_PER_HOUR as f64;
    Ok(violations as f64 / hours.max(1e-9))
}

/// Flagged events per hour on a normal run under the given rule.
fn false_events_per_hour(
    model: &MspcModel,
    scenario: &Scenario,
    det: DetectorConfig,
) -> Result<f64, RunError> {
    let mut detector = ConsecutiveDetector::new(*model.limits(), det);
    let mut samples = 0u64;
    ClosedLoopRunner::new(scenario).run(usize::MAX, |sample| {
        samples += 1;
        let s = model.score(&sample.controller_view).expect("fixed length");
        detector.update(sample.hour, s.t2, s.spe);
    })?;
    let hours = samples as f64 / temspc_tesim::SAMPLES_PER_HOUR as f64;
    Ok(detector.events().len() as f64 / hours.max(1e-9))
}

/// DoS run length with EWMA-filtered statistics (3-consecutive rule on
/// the filtered values against *empirically calibrated* EWMA limits: the
/// 99th percentile of the filtered calibration statistic series).
fn ewma_run_length(
    model: &MspcModel,
    calibration: &temspc_linalg::Matrix,
    scenario: &Scenario,
    lambda: f64,
) -> Result<Option<f64>, RunError> {
    let (t2_series, spe_series) = model.score_dataset(calibration)?;
    let (t2_mean, t2_limit) = EwmaChart::calibrate_filtered_limit(lambda, &t2_series, 0.99);
    let (spe_mean, spe_limit) = EwmaChart::calibrate_filtered_limit(lambda, &spe_series, 0.99);
    let mut t2_chart = EwmaChart::with_filtered_limit(lambda, t2_mean, t2_limit);
    let mut spe_chart = EwmaChart::with_filtered_limit(lambda, spe_mean, spe_limit);
    let mut streak = 0usize;
    let mut detected: Option<f64> = None;
    let onset = scenario.onset_hour;
    ClosedLoopRunner::new(scenario).run(usize::MAX, |sample| {
        let s = model.score(&sample.controller_view).expect("fixed length");
        let t2_hit = t2_chart.update_and_check(s.t2);
        let spe_hit = spe_chart.update_and_check(s.spe);
        if t2_hit || spe_hit {
            streak += 1;
            if streak >= 3 && detected.is_none() && sample.hour >= onset {
                detected = Some(sample.hour);
            }
        } else {
            streak = 0;
        }
    })?;
    Ok(detected.map(|h| h - onset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_produce_consistent_shapes() {
        let dir = std::env::temp_dir().join("temspc_ablation_test");
        let mut ctx = ExperimentContext::quick(&dir, 1.5).unwrap();
        ctx.scenario_runs = 1;
        let r = run(&ctx).unwrap();

        // PC sweep: explained variance grows with components; the attack
        // is caught at every setting.
        for w in r.pc_rows.windows(2) {
            assert!(w[1].explained >= w[0].explained);
        }
        assert!(r.pc_rows.iter().all(|row| row.attack_rl.is_some()));

        // Rule sweep: longer rules produce fewer false events.
        let first = r.rule_rows.first().unwrap();
        let last = r.rule_rows.last().unwrap();
        assert!(
            last.false_events_per_hour <= first.false_events_per_hour,
            "rule 10 should not false-alarm more than rule 1"
        );

        // EWMA: smaller lambda must not be *slower* than Shewhart on DoS
        // by more than noise (and typically is faster).
        let shewhart = r.ewma_rows[0].dos_rl;
        let smooth = r.ewma_rows[2].dos_rl;
        if let (Some(s), Some(e)) = (shewhart, smooth) {
            assert!(e <= s * 1.5 + 0.05, "EWMA {e} vs Shewhart {s}");
        }
        assert!(dir.join("tab4_ablations.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
