//! TAB1 — the paper's ARL results (§V): time from anomaly onset to
//! detection, per scenario, averaged over the runs.
//!
//! Expected shape: IDV(6) and both integrity attacks are detected almost
//! immediately; the DoS takes far longer ("almost an hour").

use crate::csv::CsvWriter;
use crate::experiments::ExperimentContext;
use crate::runner::RunError;
use crate::scenario::{Scenario, ScenarioKind};

/// ARL statistics of one scenario.
#[derive(Debug, Clone)]
pub struct ArlRow {
    /// Scenario.
    pub kind: ScenarioKind,
    /// Runs performed.
    pub runs: usize,
    /// Runs in which the anomaly was detected.
    pub detected: usize,
    /// Mean run length (hours from onset to detection) over detected runs.
    pub arl_hours: Option<f64>,
    /// Minimum run length.
    pub min_hours: Option<f64>,
    /// Maximum run length.
    pub max_hours: Option<f64>,
    /// Runs that ended in a plant shutdown.
    pub shutdowns: usize,
}

/// The regenerated ARL table.
#[derive(Debug, Clone)]
pub struct ArlResult {
    /// One row per anomalous scenario, in paper order.
    pub rows: Vec<ArlRow>,
}

impl ArlResult {
    /// Looks up a row by scenario.
    pub fn row(&self, kind: ScenarioKind) -> &ArlRow {
        self.rows
            .iter()
            .find(|r| r.kind == kind)
            .expect("all four scenarios present")
    }
}

/// Regenerates the ARL table; writes `tab1_arl.csv` and `tab1_arl.txt`.
///
/// # Errors
///
/// Returns [`RunError`] if a closed-loop run fails.
pub fn run(ctx: &ExperimentContext) -> Result<ArlResult, RunError> {
    let mut rows = Vec::new();
    for kind in ScenarioKind::anomalous() {
        let mut lengths = Vec::new();
        let mut shutdowns = 0;
        for run_idx in 0..ctx.scenario_runs {
            let scenario = Scenario::short(
                kind,
                ctx.duration_hours,
                ctx.onset_hour,
                ctx.base_seed + 10 * run_idx as u64,
            );
            let outcome = ctx.monitor.run_scenario(&scenario)?;
            if let Some(rl) = outcome.detection.run_length(ctx.onset_hour) {
                lengths.push(rl);
            }
            if !outcome.run.survived() {
                shutdowns += 1;
            }
        }
        let arl = if lengths.is_empty() {
            None
        } else {
            Some(lengths.iter().sum::<f64>() / lengths.len() as f64)
        };
        let (min_hours, max_hours) = if lengths.is_empty() {
            (None, None)
        } else {
            (
                Some(lengths.iter().copied().fold(f64::INFINITY, f64::min)),
                Some(lengths.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
            )
        };
        rows.push(ArlRow {
            kind,
            runs: ctx.scenario_runs,
            detected: lengths.len(),
            arl_hours: arl,
            min_hours,
            max_hours,
            shutdowns,
        });
    }

    let mut csv = CsvWriter::with_header(&[
        "scenario",
        "runs",
        "detected",
        "arl_hours",
        "min_hours",
        "max_hours",
        "shutdowns",
    ]);
    let mut text = String::from(
        "Table 1: Average Run Length (hours from onset to detection)\n\
         scenario            runs detected      ARL      min      max shutdowns\n",
    );
    for row in &rows {
        csv.push_labelled(
            row.kind.id(),
            &[
                row.runs as f64,
                row.detected as f64,
                row.arl_hours.unwrap_or(f64::NAN),
                row.min_hours.unwrap_or(f64::NAN),
                row.max_hours.unwrap_or(f64::NAN),
                row.shutdowns as f64,
            ],
        );
        text.push_str(&format!(
            "{:<19} {:>4} {:>8} {:>8.4} {:>8.4} {:>8.4} {:>9}\n",
            row.kind.id(),
            row.runs,
            row.detected,
            row.arl_hours.unwrap_or(f64::NAN),
            row.min_hours.unwrap_or(f64::NAN),
            row.max_hours.unwrap_or(f64::NAN),
            row.shutdowns
        ));
    }
    let _ = csv.write_to(ctx.results_dir.join("tab1_arl.csv"));
    let _ = std::fs::create_dir_all(&ctx.results_dir);
    let _ = std::fs::write(ctx.results_dir.join("tab1_arl.txt"), &text);

    Ok(ArlResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arl_shape_integrity_fast_dos_slow() {
        let dir = std::env::temp_dir().join("temspc_arl_test");
        let mut ctx = ExperimentContext::quick(&dir, 2.0).unwrap();
        ctx.scenario_runs = 1;
        let r = run(&ctx).unwrap();
        // Integrity and disturbance: detected, almost immediately.
        for kind in [
            ScenarioKind::Idv6,
            ScenarioKind::IntegrityXmv3,
            ScenarioKind::IntegrityXmeas1,
        ] {
            let row = r.row(kind);
            assert_eq!(row.detected, 1, "{kind:?} not detected");
            assert!(
                row.arl_hours.unwrap() < 0.1,
                "{kind:?} ARL = {:?}",
                row.arl_hours
            );
        }
        // DoS: much slower than the integrity attacks (or undetected in
        // this shortened horizon).
        let dos = r.row(ScenarioKind::DosXmv3);
        if let Some(arl) = dos.arl_hours {
            let fast = r.row(ScenarioKind::IntegrityXmv3).arl_hours.unwrap();
            assert!(arl > 5.0 * fast, "DoS ARL {arl} vs integrity {fast}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
