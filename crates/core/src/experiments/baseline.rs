//! TAB5 (ours) — the GMM clustering baseline of Kiss et al. (INDIN 2015),
//! quantifying the paper's §II critique.
//!
//! The baseline clusters *single-level* (controller-view) observations
//! with a Gaussian mixture and flags low-density points. It detects the
//! anomalies — but, as the paper argues, it cannot say whether the cause
//! is the disturbance IDV(6) or the integrity attack on XMV(3): both
//! produce the *same* anomaly-score distribution. The dual-level oMEDA
//! divergence separates them perfectly. This experiment measures both
//! claims (Cohen's d between the scenarios' score distributions vs. the
//! divergence gap).

use temspc_mspc::detector::DetectorConfig;
use temspc_mspc::gmm::{GmmConfig, GmmModel};
use temspc_mspc::{ConsecutiveDetector, ControlLimits};

use crate::calibration::{collect_calibration_data, CalibrationConfig};
use crate::csv::CsvWriter;
use crate::diagnosis::{diagnose, VerdictThresholds};
use crate::experiments::ExperimentContext;
use crate::runner::{ClosedLoopRunner, RunError};
use crate::scenario::{Scenario, ScenarioKind};

/// Per-scenario baseline statistics.
#[derive(Debug, Clone)]
pub struct BaselineRow {
    /// Scenario.
    pub kind: ScenarioKind,
    /// Runs detected by the GMM baseline.
    pub detected: usize,
    /// Mean GMM run length, hours.
    pub gmm_rl: Option<f64>,
    /// Mean anomaly score over the event windows (one value per run).
    pub event_scores: Vec<f64>,
}

/// The TAB5 result.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// One row per anomalous scenario.
    pub rows: Vec<BaselineRow>,
    /// Cohen's d between the IDV(6) and XMV(3)-attack event-score
    /// distributions — the GMM's (in)ability to distinguish them.
    pub gmm_cohens_d: f64,
    /// The same contrast for the dual-level oMEDA divergence.
    pub divergence_cohens_d: f64,
}

/// Runs the baseline comparison; writes `tab5_gmm_baseline.{csv,txt}`.
///
/// # Errors
///
/// Returns [`RunError`] if a run or model fit fails.
pub fn run(ctx: &ExperimentContext) -> Result<BaselineResult, RunError> {
    // Fit the baseline on the same kind of normal data the MSPC models
    // use (controller view only — Kiss et al. are single-level).
    let calib_cfg = CalibrationConfig {
        runs: 6,
        duration_hours: ctx.duration_hours.clamp(0.5, 24.0),
        record_every: 20,
        base_seed: 47_000,
        threads: 0,
    };
    let (controller_calib, _) = collect_calibration_data(&calib_cfg)?;
    let gmm = GmmModel::fit(
        &controller_calib,
        GmmConfig {
            components: 4,
            ..GmmConfig::default()
        },
    )
    .map_err(temspc_mspc::MspcError::Numeric)?;
    // Adapter: feed the single GMM score through the T² slot of the
    // 3-consecutive detector.
    let gmm_limits = ControlLimits {
        t2_95: gmm.limit_95(),
        t2_99: gmm.limit_99(),
        spe_95: f64::INFINITY,
        spe_99: f64::INFINITY,
    };

    let mut rows = Vec::new();
    let mut divergences: Vec<(ScenarioKind, f64)> = Vec::new();
    for kind in ScenarioKind::anomalous() {
        let mut lengths = Vec::new();
        let mut event_scores = Vec::new();
        for run_idx in 0..ctx.scenario_runs {
            let scenario = Scenario::short(
                kind,
                ctx.duration_hours,
                ctx.onset_hour,
                ctx.base_seed + 10 * run_idx as u64,
            );
            // GMM pass (single level).
            let mut det = ConsecutiveDetector::new(gmm_limits, DetectorConfig::default());
            let mut window_scores: Vec<f64> = Vec::new();
            ClosedLoopRunner::new(&scenario).run(usize::MAX, |sample| {
                let score = gmm
                    .score(&sample.controller_view)
                    .expect("fixed-length vector");
                det.update(sample.hour, score, 0.0);
                if sample.hour >= scenario.onset_hour && window_scores.len() < 200 {
                    window_scores.push(score);
                }
            })?;
            if let Some(e) = det
                .events()
                .iter()
                .find(|e| e.detected_hour >= ctx.onset_hour)
            {
                lengths.push(e.detected_hour - ctx.onset_hour);
            }
            if !window_scores.is_empty() {
                event_scores.push(window_scores.iter().sum::<f64>() / window_scores.len() as f64);
            }
            // Dual-level MSPC pass for the divergence contrast.
            let outcome = ctx.monitor.run_scenario(&scenario)?;
            if let Some(d) = diagnose(&ctx.monitor, &outcome, VerdictThresholds::default()) {
                divergences.push((kind, d.divergence));
            }
        }
        let gmm_rl = if lengths.is_empty() {
            None
        } else {
            Some(lengths.iter().sum::<f64>() / lengths.len() as f64)
        };
        rows.push(BaselineRow {
            kind,
            detected: lengths.len(),
            gmm_rl,
            event_scores,
        });
    }

    let idv6_scores = &rows[0].event_scores;
    let attack_scores = &rows[1].event_scores;
    let gmm_cohens_d = cohens_d(idv6_scores, attack_scores);
    let idv6_div: Vec<f64> = divergences
        .iter()
        .filter(|(k, _)| *k == ScenarioKind::Idv6)
        .map(|(_, d)| *d)
        .collect();
    let attack_div: Vec<f64> = divergences
        .iter()
        .filter(|(k, _)| *k == ScenarioKind::IntegrityXmv3)
        .map(|(_, d)| *d)
        .collect();
    let divergence_cohens_d = cohens_d(&idv6_div, &attack_div);

    // Artifacts.
    let mut csv =
        CsvWriter::with_header(&["scenario", "detected", "gmm_rl_hours", "mean_event_score"]);
    let mut text = String::from(
        "Table 5 (beyond the paper): GMM single-level baseline (Kiss et al.)\n\
         scenario            detected  GMM RL [h]  mean event score\n",
    );
    for r in &rows {
        let mean_score = r.event_scores.iter().sum::<f64>() / r.event_scores.len().max(1) as f64;
        csv.push_labelled(
            r.kind.id(),
            &[r.detected as f64, r.gmm_rl.unwrap_or(f64::NAN), mean_score],
        );
        text.push_str(&format!(
            "{:<19} {:>8} {:>11.4} {:>17.2}\n",
            r.kind.id(),
            r.detected,
            r.gmm_rl.unwrap_or(f64::NAN),
            mean_score
        ));
    }
    text.push_str(&format!(
        "\nIDV(6) vs XMV(3)-attack separability (|Cohen's d|):\n\
         GMM anomaly score (single level): {gmm_cohens_d:.2}\n\
         dual-level oMEDA divergence:      {divergence_cohens_d:.2}\n\
         (small d = indistinguishable; the paper's critique quantified)\n"
    ));
    let _ = csv.write_to(ctx.results_dir.join("tab5_gmm_baseline.csv"));
    let _ = std::fs::create_dir_all(&ctx.results_dir);
    let _ = std::fs::write(ctx.results_dir.join("tab5_gmm_baseline.txt"), &text);

    Ok(BaselineResult {
        rows,
        gmm_cohens_d,
        divergence_cohens_d,
    })
}

/// |Cohen's d| between two samples (0 if either is too small).
fn cohens_d(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / a.len() as f64;
    let mb = b.iter().sum::<f64>() / b.len() as f64;
    let va = a.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>() / a.len().max(1) as f64;
    let vb = b.iter().map(|x| (x - mb) * (x - mb)).sum::<f64>() / b.len().max(1) as f64;
    let pooled = ((va + vb) / 2.0).sqrt();
    if pooled < 1e-12 {
        if (ma - mb).abs() < 1e-9 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (ma - mb).abs() / pooled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmm_detects_but_cannot_distinguish() {
        let dir = std::env::temp_dir().join("temspc_baseline_test");
        let mut ctx = ExperimentContext::quick(&dir, 1.2).unwrap();
        ctx.scenario_runs = 2;
        let r = run(&ctx).unwrap();
        // The baseline does detect the gross anomalies (scenarios a-c).
        for row in &r.rows[..3] {
            assert!(row.detected > 0, "{:?} not detected by GMM", row.kind);
        }
        // ... but cannot separate IDV(6) from the XMV(3) attack, while
        // the dual-level divergence separates them by a wide margin.
        assert!(
            r.divergence_cohens_d > 2.0 * r.gmm_cohens_d + 1.0,
            "GMM d = {}, divergence d = {}",
            r.gmm_cohens_d,
            r.divergence_cohens_d
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cohens_d_basics() {
        assert_eq!(cohens_d(&[], &[1.0]), 0.0);
        assert_eq!(cohens_d(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
        let d = cohens_d(&[0.0, 0.1, -0.1], &[2.0, 2.1, 1.9]);
        assert!(d > 10.0);
    }
}
