//! FIG1 — Figure 1 of the paper: an example control chart with 95 % and
//! 99 % control limits.
//!
//! The paper's Figure 1 is illustrative: observations over time, most
//! below the limits, a few excursions. We regenerate it with real data:
//! the D-statistic (T²) of a fresh normal-operation run scored against
//! the calibrated controller-level model.

use crate::ascii_plot::line_chart;
use crate::csv::CsvWriter;
use crate::experiments::ExperimentContext;
use crate::scenario::{Scenario, ScenarioKind};
use temspc_mspc::MspcError;

/// Summary of the regenerated control chart.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// Hours of the plotted observations.
    pub hours: Vec<f64>,
    /// D-statistic series.
    pub t2: Vec<f64>,
    /// 95 % control limit.
    pub limit_95: f64,
    /// 99 % control limit.
    pub limit_99: f64,
    /// Fraction of observations below the 99 % limit (paper: ~99 %).
    pub fraction_below_99: f64,
}

/// Regenerates Figure 1. Writes `fig1_control_chart.csv` and
/// `fig1_control_chart.txt` into the results directory.
///
/// # Errors
///
/// Returns [`MspcError`] if the run or scoring fails.
pub fn run(ctx: &ExperimentContext) -> Result<Fig1Result, MspcError> {
    let scenario = Scenario::short(
        ScenarioKind::Normal,
        ctx.duration_hours.min(24.0),
        f64::INFINITY,
        ctx.base_seed + 7_000,
    );
    let outcome = ctx
        .monitor
        .run_scenario(&scenario)
        .map_err(|_| MspcError::Numeric(temspc_linalg::LinalgError::Empty))?;
    let model = ctx.monitor.controller_model();
    let (t2, _) = model.score_dataset(&outcome.run.controller_view)?;
    let hours = outcome.run.hours.clone();
    let limit_95 = model.limits().t2_95;
    let limit_99 = model.limits().t2_99;
    let below = t2.iter().filter(|&&v| v <= limit_99).count();
    let fraction_below_99 = below as f64 / t2.len().max(1) as f64;

    let mut csv = CsvWriter::with_header(&["hour", "t2", "limit_95", "limit_99"]);
    for (h, v) in hours.iter().zip(&t2) {
        csv.push_numbers(&[*h, *v, limit_95, limit_99]);
    }
    let _ = csv.write_to(ctx.results_dir.join("fig1_control_chart.csv"));

    let chart = line_chart(
        &format!("Figure 1: D-statistic control chart (95% = {limit_95:.2}, 99% = {limit_99:.2})"),
        &hours,
        &t2,
        100,
        18,
    );
    let _ = std::fs::create_dir_all(&ctx.results_dir);
    let _ = std::fs::write(ctx.results_dir.join("fig1_control_chart.txt"), &chart);

    Ok(Fig1Result {
        hours,
        t2,
        limit_95,
        limit_99,
        fraction_below_99,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_normal_chart_stays_mostly_in_control() {
        let dir = std::env::temp_dir().join("temspc_fig1_test");
        let ctx = ExperimentContext::quick(&dir, 1.0).unwrap();
        let result = run(&ctx).unwrap();
        assert!(result.limit_99 > result.limit_95);
        // "Under normal process operating conditions, 99% of all the
        // points will fall under the upper control limit."
        assert!(
            result.fraction_below_99 > 0.9,
            "fraction below 99% limit = {}",
            result.fraction_below_99
        );
        assert!(dir.join("fig1_control_chart.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
