//! FIG2 — Figure 2 of the paper: the PCS architecture and the attack
//! model.
//!
//! Figure 2 is a diagram; our executable regeneration renders the
//! architecture as ASCII *and demonstrates the attack model at the wire
//! level*: one closed-loop exchange is traced through the fieldbus with a
//! man-in-the-middle forging both directions, showing that the
//! controller-side and process-side views diverge exactly as the diagram
//! promises.

use crate::csv::CsvWriter;
use crate::experiments::ExperimentContext;
use temspc_fieldbus::{Attack, AttackKind, AttackTarget, FieldbusLink, MitmAdversary};

/// The architecture diagram (static).
pub const ARCHITECTURE: &str = r#"
Figure 2: PCS architecture and attack model

            +----------------------+
            |     Controller(s)    |
            +----------+-----------+
      received XMEAS   |   commanded XMV
            ^          |          v
     =======|==========|==========|=======  insecure fieldbus
            |      [ATTACKER]     |         (unauthenticated frames,
            |   reads + rewrites  |          man-in-the-middle)
      true  |        traffic      | delivered
      XMEAS ^                     v XMV
            +----------+----------+
            | Sensors  |Actuators |
            +----------+----------+
            |   Physical process  |
            |  (TE-like plant)    |
            +---------------------+

controller-level view = [received XMEAS, commanded XMV]
process-level view    = [true XMEAS,     delivered XMV]
"#;

/// Result of the wire-level demonstration.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// True XMEAS(1) sent by the plant.
    pub true_xmeas1: f64,
    /// Forged XMEAS(1) received by the controller.
    pub received_xmeas1: f64,
    /// XMV(3) commanded by the controller.
    pub commanded_xmv3: f64,
    /// Forged XMV(3) delivered to the actuator.
    pub delivered_xmv3: f64,
}

/// Regenerates Figure 2: writes the diagram plus a traced MitM exchange
/// to `fig2_architecture.txt` and `fig2_trace.csv`.
///
/// # Errors
///
/// Never fails in practice; the signature mirrors the other experiments.
pub fn run(ctx: &ExperimentContext) -> std::io::Result<Fig2Result> {
    // A both-direction MitM: forge sensor 1 to zero and actuator 3 to
    // zero, demonstrating the two tap points.
    let adversary = MitmAdversary::new(vec![
        Attack::new(
            AttackTarget::Sensor(1),
            AttackKind::IntegrityConstant(0.0),
            0.0..f64::INFINITY,
        ),
        Attack::new(
            AttackTarget::Actuator(3),
            AttackKind::IntegrityConstant(0.0),
            0.0..f64::INFINITY,
        ),
    ]);
    let mut link = FieldbusLink::new(adversary);
    let true_xmeas: Vec<f64> = (1..=41).map(|i| i as f64).collect();
    let received = link
        .uplink(0.0, &true_xmeas)
        .expect("modelled attacks preserve framing");
    let commanded: Vec<f64> = (1..=12).map(|i| 10.0 * i as f64).collect();
    let delivered = link
        .downlink(0.0, &commanded)
        .expect("modelled attacks preserve framing");

    let result = Fig2Result {
        true_xmeas1: true_xmeas[0],
        received_xmeas1: received[0],
        commanded_xmv3: commanded[2],
        delivered_xmv3: delivered[2],
    };

    std::fs::create_dir_all(&ctx.results_dir)?;
    let mut text = String::from(ARCHITECTURE);
    text.push_str(&format!(
        "\nWire-level demonstration:\n\
         uplink   XMEAS(1): plant sent {:.2}, controller received {:.2}\n\
         downlink XMV(3)  : controller sent {:.2}, actuator received {:.2}\n",
        result.true_xmeas1, result.received_xmeas1, result.commanded_xmv3, result.delivered_xmv3
    ));
    std::fs::write(ctx.results_dir.join("fig2_architecture.txt"), text)?;

    let mut csv = CsvWriter::with_header(&["channel", "sent", "received"]);
    csv.push_labelled(
        "xmeas1_uplink",
        &[result.true_xmeas1, result.received_xmeas1],
    );
    csv.push_labelled(
        "xmv3_downlink",
        &[result.commanded_xmv3, result.delivered_xmv3],
    );
    csv.write_to(ctx.results_dir.join("fig2_trace.csv"))?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_trace_shows_divergence_at_both_taps() {
        let dir = std::env::temp_dir().join("temspc_fig2_test");
        let ctx = ExperimentContext::quick(&dir, 0.5).unwrap();
        let r = run(&ctx).unwrap();
        assert_eq!(r.true_xmeas1, 1.0);
        assert_eq!(r.received_xmeas1, 0.0);
        assert_eq!(r.commanded_xmv3, 30.0);
        assert_eq!(r.delivered_xmv3, 0.0);
        assert!(dir.join("fig2_architecture.txt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
