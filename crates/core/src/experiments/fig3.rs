//! FIG3 — Figure 3 of the paper: the evolution of XMEAS(1) under
//! disturbance IDV(6) (3a) versus an integrity attack on XMV(3) (3b).
//!
//! The paper's point: from the A-feed flow measurement alone the two
//! situations are nearly indistinguishable — the flow collapses abruptly
//! at the onset (hour 10) in both, and the plant later shuts down in
//! both. We regenerate both traces and quantify their similarity.

use crate::ascii_plot::line_chart;
use crate::csv::CsvWriter;
use crate::experiments::ExperimentContext;
use crate::names::xmeas_index;
use crate::runner::{ClosedLoopRunner, RunError};
use crate::scenario::{Scenario, ScenarioKind};
use temspc_tesim::ShutdownReason;

/// One of the two traces of Figure 3.
#[derive(Debug, Clone)]
pub struct Fig3Trace {
    /// Scenario kind (IDV(6) or the XMV(3) attack).
    pub kind: ScenarioKind,
    /// Sample hours.
    pub hours: Vec<f64>,
    /// XMEAS(1), kscmh.
    pub xmeas1: Vec<f64>,
    /// Shutdown `(reason, hour)`, if the plant tripped.
    pub shutdown: Option<(ShutdownReason, f64)>,
}

/// The regenerated Figure 3.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Trace (a): disturbance IDV(6).
    pub idv6: Fig3Trace,
    /// Trace (b): integrity attack on XMV(3).
    pub attack: Fig3Trace,
    /// Mean XMEAS(1) before onset, averaged over both traces.
    pub pre_onset_mean: f64,
    /// Mean XMEAS(1) after onset (excluding the collapse transient).
    pub post_onset_mean: f64,
}

fn run_trace(ctx: &ExperimentContext, kind: ScenarioKind) -> Result<Fig3Trace, RunError> {
    let scenario = Scenario::short(
        kind,
        ctx.duration_hours,
        ctx.onset_hour,
        ctx.base_seed + 300,
    );
    let data = ClosedLoopRunner::new(&scenario).run(10, |_| {})?;
    let x1 = xmeas_index(1);
    Ok(Fig3Trace {
        kind,
        xmeas1: data.process_view.col_iter(x1).collect(),
        hours: data.hours,
        shutdown: data.shutdown,
    })
}

/// Regenerates Figure 3: writes `fig3_xmeas1.csv`, `fig3a_idv6.txt` and
/// `fig3b_attack.txt`.
///
/// # Errors
///
/// Returns [`RunError`] if a closed-loop run fails.
pub fn run(ctx: &ExperimentContext) -> Result<Fig3Result, RunError> {
    let idv6 = run_trace(ctx, ScenarioKind::Idv6)?;
    let attack = run_trace(ctx, ScenarioKind::IntegrityXmv3)?;

    let mut csv =
        CsvWriter::with_header(&["hour_idv6", "xmeas1_idv6", "hour_attack", "xmeas1_attack"]);
    let n = idv6.hours.len().max(attack.hours.len());
    for i in 0..n {
        let row = [
            idv6.hours.get(i).copied().unwrap_or(f64::NAN),
            idv6.xmeas1.get(i).copied().unwrap_or(f64::NAN),
            attack.hours.get(i).copied().unwrap_or(f64::NAN),
            attack.xmeas1.get(i).copied().unwrap_or(f64::NAN),
        ];
        csv.push_numbers(&row);
    }
    let _ = csv.write_to(ctx.results_dir.join("fig3_xmeas1.csv"));

    let _ = std::fs::create_dir_all(&ctx.results_dir);
    for (trace, name, label) in [
        (&idv6, "fig3a_idv6.txt", "Figure 3a: XMEAS(1) under IDV(6)"),
        (
            &attack,
            "fig3b_attack.txt",
            "Figure 3b: XMEAS(1) under integrity attack on XMV(3)",
        ),
    ] {
        let mut text = line_chart(label, &trace.hours, &trace.xmeas1, 100, 16);
        if let Some((reason, hour)) = trace.shutdown {
            text.push_str(&format!("\nplant shut down at hour {hour:.2}: {reason}\n"));
        }
        let _ = std::fs::write(ctx.results_dir.join(name), text);
    }

    // Quantify the "nearly identical" claim: pre/post onset means.
    let mut pre = Vec::new();
    let mut post = Vec::new();
    for trace in [&idv6, &attack] {
        for (h, v) in trace.hours.iter().zip(&trace.xmeas1) {
            if *h < ctx.onset_hour {
                pre.push(*v);
            } else if *h > ctx.onset_hour + 0.2 {
                post.push(*v);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    Ok(Fig3Result {
        pre_onset_mean: mean(&pre),
        post_onset_mean: mean(&post),
        idv6,
        attack,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_traces_collapse_after_onset() {
        let dir = std::env::temp_dir().join("temspc_fig3_test");
        let ctx = ExperimentContext::quick(&dir, 1.5).unwrap();
        let r = run(&ctx).unwrap();
        // Pre-onset: near nominal (~3.9 kscmh); post-onset: collapsed.
        assert!(r.pre_onset_mean > 3.0, "pre = {}", r.pre_onset_mean);
        assert!(r.post_onset_mean < 0.4, "post = {}", r.post_onset_mean);
        // The two traces collapse to the same value.
        let last_a = *r.idv6.xmeas1.last().unwrap();
        let last_b = *r.attack.xmeas1.last().unwrap();
        assert!((last_a - last_b).abs() < 0.3, "a = {last_a}, b = {last_b}");
        assert!(dir.join("fig3_xmeas1.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
