//! FIG4/FIG5 — Figures 4 and 5 of the paper: oMEDA diagnosis of the four
//! anomalous scenarios, from the controller point of view (Figure 4) and
//! from the process point of view (Figure 5).
//!
//! Per the paper's protocol each scenario is run several times; the
//! oMEDA chart is computed over the pooled first violating observations
//! of all runs, once against the controller-level model and once against
//! the process-level model.
//!
//! Expected shapes:
//!
//! * 4a/5a (IDV(6)): both views implicate `XMEAS(1)` with a large
//!   negative bar;
//! * 4b (XMV(3) attack, controller view): like 4a — `XMEAS(1)` negative;
//!   5b (process view): **`XMV(3)` negative** — the forged actuator is
//!   exposed;
//! * 4c (XMEAS(1) attack, controller view): `XMEAS(1)` negative (the
//!   forged sensor); 5c (process view): `XMEAS(1)`/`XMV(3)` **positive**
//!   (the controller over-opened the real valve);
//! * 4d/5d (DoS): no variable stands out clearly.

use temspc_linalg::Matrix;
use temspc_mspc::omeda::{diagnosis_clarity, dominant_variable, omeda};

use crate::ascii_plot::bar_chart;
use crate::csv::CsvWriter;
use crate::experiments::ExperimentContext;
use crate::names::{variable_name, N_MONITORED};
use crate::runner::RunError;
use crate::scenario::{Scenario, ScenarioKind};

/// oMEDA outcome of one scenario at one level.
#[derive(Debug, Clone)]
pub struct OmedaPanel {
    /// Scenario of this panel.
    pub kind: ScenarioKind,
    /// The 53-entry oMEDA vector.
    pub omeda: Vec<f64>,
    /// Dominant variable `(index, value)`.
    pub dominant: (usize, f64),
    /// Clarity of the plot.
    pub clarity: f64,
}

impl OmedaPanel {
    /// Name of the dominant variable.
    pub fn dominant_name(&self) -> String {
        variable_name(self.dominant.0)
    }
}

/// The regenerated Figures 4 and 5: per scenario, a controller-level and
/// a process-level panel, plus detection bookkeeping.
#[derive(Debug, Clone)]
pub struct Fig45Result {
    /// Figure 4 panels (controller level), in paper order a–d.
    pub controller_panels: Vec<OmedaPanel>,
    /// Figure 5 panels (process level), in paper order a–d.
    pub process_panels: Vec<OmedaPanel>,
    /// Runs (per scenario) in which the anomaly was detected.
    pub detected_runs: Vec<usize>,
}

/// Regenerates Figures 4 and 5. Writes one CSV with all oMEDA vectors
/// (`fig45_omeda.csv`) and eight ASCII bar charts
/// (`fig4{a-d}_*.txt`, `fig5{a-d}_*.txt`).
///
/// # Errors
///
/// Returns [`RunError`] if a closed-loop run fails.
pub fn run(ctx: &ExperimentContext) -> Result<Fig45Result, RunError> {
    let mut controller_panels = Vec::new();
    let mut process_panels = Vec::new();
    let mut detected_runs = Vec::new();
    let labels: Vec<String> = (0..N_MONITORED).map(variable_name).collect();

    let mut csv = CsvWriter::with_header(&["scenario", "level", "variable", "omeda"]);
    let _ = std::fs::create_dir_all(&ctx.results_dir);

    for (panel_idx, kind) in ScenarioKind::anomalous().into_iter().enumerate() {
        // Pool the first violating observations across runs (the paper's
        // "set of the first observations that surpass control limits in
        // each of the ten runs").
        let mut pooled_controller = Matrix::default();
        let mut pooled_process = Matrix::default();
        let mut detected = 0;
        for run_idx in 0..ctx.scenario_runs {
            let scenario = Scenario::short(
                kind,
                ctx.duration_hours,
                ctx.onset_hour,
                ctx.base_seed + 10 * run_idx as u64,
            );
            let outcome = ctx.monitor.run_scenario(&scenario)?;
            if outcome.detection.earliest_hour().is_some() {
                detected += 1;
            }
            pooled_controller
                .append_rows(&outcome.event_rows_controller)
                .expect("event windows share the monitored layout");
            pooled_process
                .append_rows(&outcome.event_rows_process)
                .expect("event windows share the monitored layout");
        }
        detected_runs.push(detected);

        let dummy = vec![1.0; pooled_controller.nrows().max(1)];
        let (c_vec, p_vec) = if pooled_controller.nrows() == 0 {
            (vec![0.0; N_MONITORED], vec![0.0; N_MONITORED])
        } else {
            (
                omeda(
                    &pooled_controller,
                    &dummy,
                    ctx.monitor.controller_model().pca(),
                )
                .unwrap_or_else(|_| vec![0.0; N_MONITORED]),
                omeda(&pooled_process, &dummy, ctx.monitor.process_model().pca())
                    .unwrap_or_else(|_| vec![0.0; N_MONITORED]),
            )
        };

        let letter = ['a', 'b', 'c', 'd'][panel_idx];
        for (level, vec, fig) in [("controller", &c_vec, 4), ("process", &p_vec, 5)] {
            for (i, v) in vec.iter().enumerate() {
                csv.push_labelled(&format!("{},{},{}", kind.id(), level, labels[i]), &[*v]);
            }
            let chart = bar_chart(
                &format!(
                    "Figure {fig}{letter}: oMEDA ({} view) — {}",
                    level,
                    kind.description()
                ),
                &labels,
                vec,
                60,
            );
            let _ = std::fs::write(
                ctx.results_dir
                    .join(format!("fig{fig}{letter}_{}.txt", kind.id())),
                chart,
            );
        }

        controller_panels.push(OmedaPanel {
            kind,
            dominant: dominant_variable(&c_vec).unwrap_or((0, 0.0)),
            clarity: diagnosis_clarity(&c_vec),
            omeda: c_vec,
        });
        process_panels.push(OmedaPanel {
            kind,
            dominant: dominant_variable(&p_vec).unwrap_or((0, 0.0)),
            clarity: diagnosis_clarity(&p_vec),
            omeda: p_vec,
        });
    }
    let _ = csv.write_to(ctx.results_dir.join("fig45_omeda.csv"));

    Ok(Fig45Result {
        controller_panels,
        process_panels,
        detected_runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::{xmeas_index, xmv_index};

    #[test]
    fn fig45_shapes_match_paper() {
        let dir = std::env::temp_dir().join("temspc_fig45_test");
        let mut ctx = ExperimentContext::quick(&dir, 1.2).unwrap();
        ctx.scenario_runs = 1;
        let r = run(&ctx).unwrap();

        // Panel order: IDV6, IntegrityXmv3, IntegrityXmeas1, DosXmv3.
        let x1 = xmeas_index(1);
        let v3 = xmv_index(3);

        // 4a: controller view of IDV6 implicates XMEAS(1), negative.
        let p4a = &r.controller_panels[0];
        assert_eq!(p4a.dominant.0, x1, "4a dominant = {}", p4a.dominant_name());
        assert!(p4a.dominant.1 < 0.0);

        // 4b: controller view of the XMV(3) attack also implicates
        // XMEAS(1) — indistinguishable from 4a.
        let p4b = &r.controller_panels[1];
        assert_eq!(p4b.dominant.0, x1, "4b dominant = {}", p4b.dominant_name());
        assert!(p4b.dominant.1 < 0.0);

        // 5b: process view exposes XMV(3), negative.
        let p5b = &r.process_panels[1];
        assert_eq!(p5b.dominant.0, v3, "5b dominant = {}", p5b.dominant_name());
        assert!(p5b.dominant.1 < 0.0);

        // 4c: controller view of the XMEAS(1) attack: XMEAS(1) negative.
        let p4c = &r.controller_panels[2];
        assert_eq!(p4c.dominant.0, x1, "4c dominant = {}", p4c.dominant_name());
        assert!(p4c.dominant.1 < 0.0);

        // 5c: process view: the real flow and valve are *high*.
        let p5c = &r.process_panels[2];
        assert!(
            p5c.omeda[x1] > 0.0 && p5c.omeda[v3] > 0.0,
            "5c: xmeas1 = {}, xmv3 = {}",
            p5c.omeda[x1],
            p5c.omeda[v3]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
