//! Regeneration of every figure and table of the paper.
//!
//! | Experiment | Paper artifact | Module |
//! |------------|----------------|--------|
//! | FIG1 | Figure 1 — example control chart (95 %/99 % limits) | [`fig1`] |
//! | FIG2 | Figure 2 — PCS architecture and attack model | [`fig2`] |
//! | FIG3 | Figure 3 — XMEAS(1) under IDV(6) vs. XMV(3) attack | [`fig3`] |
//! | FIG4/FIG5 | Figures 4 & 5 — oMEDA at controller/process level | [`fig45`] |
//! | TAB1 | §V ARL discussion — run lengths per scenario | [`arl`] |
//! | TAB2 | §V-A discussion — dual-level verdict matrix | [`verdicts`] |
//! | TAB3 | §VII future work — network-level DoS ablation (ours) | [`netdos`] |
//! | TAB4 | pipeline ablations: PC count, detection rule, EWMA (ours) | [`ablations`] |
//! | TAB5 | GMM single-level baseline (Kiss et al., the paper's §II critique) | [`baseline`] |
//!
//! Each module has a `run(ctx)` entry point that writes CSV files and
//! ASCII plots into `ctx.results_dir` and returns a summary struct.
//! `examples/paper_experiments.rs` drives them all at paper scale;
//! the benches in `crates/bench` drive them at reduced scale.

pub mod ablations;
pub mod arl;
pub mod baseline;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig45;
pub mod netdos;
pub mod verdicts;

use std::path::PathBuf;

use crate::calibration::CalibrationConfig;
use crate::monitor::{DualMspc, MonitorConfig};
use temspc_mspc::MspcError;

/// Shared context of an experiment campaign: scale parameters and the
/// calibrated dual-level monitor.
#[derive(Debug)]
pub struct ExperimentContext {
    /// Output directory for CSV/ASCII artifacts.
    pub results_dir: PathBuf,
    /// Number of runs per anomalous scenario (paper: 10).
    pub scenario_runs: usize,
    /// Scenario duration, hours (paper: 72).
    pub duration_hours: f64,
    /// Anomaly onset, hours (paper: 10).
    pub onset_hour: f64,
    /// First seed for scenario runs.
    pub base_seed: u64,
    /// The calibrated monitor.
    pub monitor: DualMspc,
}

impl ExperimentContext {
    /// Calibrates at full paper scale: 30 calibration runs of 72 h, ten
    /// 72 h runs per scenario, onset at hour 10.
    ///
    /// # Errors
    ///
    /// Returns [`MspcError`] if calibration fails.
    pub fn paper(results_dir: impl Into<PathBuf>) -> Result<Self, MspcError> {
        let monitor =
            DualMspc::calibrate_with(&CalibrationConfig::default(), MonitorConfig::default())?;
        Ok(ExperimentContext {
            results_dir: results_dir.into(),
            scenario_runs: 10,
            duration_hours: 72.0,
            onset_hour: 10.0,
            base_seed: 42,
            monitor,
        })
    }

    /// A reduced-scale context for tests and benches: 3 calibration runs
    /// of 2 h, 2 runs per scenario of `duration` hours, onset at 0.5 h.
    ///
    /// # Errors
    ///
    /// Returns [`MspcError`] if calibration fails.
    pub fn quick(results_dir: impl Into<PathBuf>, duration: f64) -> Result<Self, MspcError> {
        let monitor =
            DualMspc::calibrate_with(&CalibrationConfig::quick(), MonitorConfig::default())?;
        Ok(ExperimentContext {
            results_dir: results_dir.into(),
            scenario_runs: 2,
            duration_hours: duration,
            onset_hour: 0.5,
            base_seed: 42,
            monitor,
        })
    }
}
