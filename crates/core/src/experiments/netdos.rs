//! TAB3 (ours) — the paper's §VII future work, quantified: how much does
//! adding network-level variables shorten the DoS detection delay?
//!
//! For each DoS run we compare the run length of (a) the paper's
//! dual-level process/controller monitor and (b) the network-level
//! monitor on fieldbus traffic features; we also record the channel the
//! network level implicates.

use crate::csv::CsvWriter;
use crate::experiments::ExperimentContext;
use crate::netmon::NetworkMonitor;
use crate::runner::RunError;
use crate::scenario::{Scenario, ScenarioKind};

/// One DoS run in the ablation.
#[derive(Debug, Clone)]
pub struct NetDosRow {
    /// Run index.
    pub run: usize,
    /// Dual-level (process charts) run length, hours.
    pub process_level_rl: Option<f64>,
    /// Network-level run length, hours.
    pub network_level_rl: Option<f64>,
    /// Feature the network level implicates.
    pub implicated: Option<String>,
}

/// The ablation result.
#[derive(Debug, Clone)]
pub struct NetDosResult {
    /// Per-run rows.
    pub rows: Vec<NetDosRow>,
    /// Mean process-level ARL (hours) over detected runs.
    pub process_arl: Option<f64>,
    /// Mean network-level ARL (hours) over detected runs.
    pub network_arl: Option<f64>,
}

impl NetDosResult {
    /// ARL improvement factor (process ARL / network ARL), if both
    /// detected at least once.
    pub fn speedup(&self) -> Option<f64> {
        match (self.process_arl, self.network_arl) {
            (Some(p), Some(n)) if n > 0.0 => Some(p / n),
            _ => None,
        }
    }
}

/// Runs the ablation; writes `tab3_network_ablation.{csv,txt}`.
///
/// `network` must be calibrated on the same normal-operation population
/// as `ctx.monitor` (see [`NetworkMonitor::calibrate`]).
///
/// # Errors
///
/// Returns [`RunError`] if a closed-loop run fails.
pub fn run(ctx: &ExperimentContext, network: &NetworkMonitor) -> Result<NetDosResult, RunError> {
    let mut rows = Vec::new();
    for run_idx in 0..ctx.scenario_runs {
        let scenario = Scenario::short(
            ScenarioKind::DosXmv3,
            ctx.duration_hours,
            ctx.onset_hour,
            ctx.base_seed + 10 * run_idx as u64,
        );
        let dual = ctx.monitor.run_scenario(&scenario)?;
        let net = network.run_scenario(&scenario)?;
        rows.push(NetDosRow {
            run: run_idx,
            process_level_rl: dual.detection.run_length(ctx.onset_hour),
            network_level_rl: net.detected_hour.map(|h| h - ctx.onset_hour),
            implicated: net.implicated_feature,
        });
    }
    let mean = |it: Vec<f64>| {
        if it.is_empty() {
            None
        } else {
            Some(it.iter().sum::<f64>() / it.len() as f64)
        }
    };
    let process_arl = mean(rows.iter().filter_map(|r| r.process_level_rl).collect());
    let network_arl = mean(rows.iter().filter_map(|r| r.network_level_rl).collect());

    let mut csv = CsvWriter::with_header(&[
        "run",
        "implicated",
        "process_level_rl_hours",
        "network_level_rl_hours",
    ]);
    let mut text = String::from(
        "Table 3 (beyond the paper): DoS detection with network-level variables\n\
         run  process-level RL [h]  network-level RL [h]  implicated feature\n",
    );
    for r in &rows {
        csv.push_labelled(
            &format!(
                "{},{}",
                r.run,
                r.implicated.as_deref().unwrap_or("-").replace(',', ";")
            ),
            &[
                r.process_level_rl.unwrap_or(f64::NAN),
                r.network_level_rl.unwrap_or(f64::NAN),
            ],
        );
        // Feature names contain brackets/commas-free identifiers.
        text.push_str(&format!(
            "{:>3}  {:>20.4}  {:>20.4}  {}\n",
            r.run,
            r.process_level_rl.unwrap_or(f64::NAN),
            r.network_level_rl.unwrap_or(f64::NAN),
            r.implicated.as_deref().unwrap_or("-"),
        ));
    }
    let result = NetDosResult {
        rows,
        process_arl,
        network_arl,
    };
    text.push_str(&format!(
        "\nprocess-level ARL {:.4} h, network-level ARL {:.4} h, speedup {:.0}x\n",
        result.process_arl.unwrap_or(f64::NAN),
        result.network_arl.unwrap_or(f64::NAN),
        result.speedup().unwrap_or(f64::NAN),
    ));
    let _ = csv.write_to(ctx.results_dir.join("tab3_network_ablation.csv"));
    let _ = std::fs::create_dir_all(&ctx.results_dir);
    let _ = std::fs::write(ctx.results_dir.join("tab3_network_ablation.txt"), &text);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::CalibrationConfig;

    #[test]
    fn network_level_is_dramatically_faster_on_dos() {
        let dir = std::env::temp_dir().join("temspc_netdos_test");
        let mut ctx = ExperimentContext::quick(&dir, 2.0).unwrap();
        ctx.scenario_runs = 1;
        let net = NetworkMonitor::calibrate(
            &CalibrationConfig {
                runs: 2,
                duration_hours: 0.5,
                record_every: 50,
                base_seed: 900,
                threads: 0,
            },
            0.02,
        )
        .unwrap();
        let r = run(&ctx, &net).unwrap();
        let row = &r.rows[0];
        let net_rl = row.network_level_rl.expect("network level detects DoS");
        assert!(net_rl < 0.12, "network RL = {net_rl} h");
        if let Some(proc_rl) = row.process_level_rl {
            assert!(
                proc_rl > 2.0 * net_rl,
                "network should be much faster: {proc_rl} vs {net_rl}"
            );
        }
        assert_eq!(row.implicated.as_deref(), Some("down_change[XMV(3)]"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
