//! TAB2 — the executable form of the paper's §V-A discussion: for every
//! scenario run, the dual-level diagnosis and the disturbance-vs-intrusion
//! verdict, compared against ground truth.

use crate::csv::CsvWriter;
use crate::diagnosis::{diagnose, Verdict, VerdictThresholds};
use crate::experiments::ExperimentContext;
use crate::runner::RunError;
use crate::scenario::{Scenario, ScenarioKind};

/// Verdict of one run.
#[derive(Debug, Clone)]
pub struct VerdictRow {
    /// Scenario.
    pub kind: ScenarioKind,
    /// Run index.
    pub run: usize,
    /// Whether the anomaly was detected at all.
    pub detected: bool,
    /// The verdict (if detected and diagnosable).
    pub verdict: Option<Verdict>,
    /// Variable implicated by the controller-level view.
    pub controller_variable: Option<String>,
    /// Variable implicated by the process-level view.
    pub process_variable: Option<String>,
    /// oMEDA divergence between the levels.
    pub divergence: Option<f64>,
    /// Whether the verdict matches the ground truth.
    pub correct: Option<bool>,
}

/// The regenerated verdict matrix.
#[derive(Debug, Clone)]
pub struct VerdictsResult {
    /// One row per scenario run.
    pub rows: Vec<VerdictRow>,
}

impl VerdictsResult {
    /// Fraction of detected runs whose verdict matches ground truth
    /// (counting `Inconclusive` as incorrect).
    pub fn accuracy(&self) -> f64 {
        let judged: Vec<&VerdictRow> = self.rows.iter().filter(|r| r.detected).collect();
        if judged.is_empty() {
            return 0.0;
        }
        let correct = judged.iter().filter(|r| r.correct == Some(true)).count();
        correct as f64 / judged.len() as f64
    }

    /// Rows of one scenario.
    pub fn rows_for(&self, kind: ScenarioKind) -> impl Iterator<Item = &VerdictRow> {
        self.rows.iter().filter(move |r| r.kind == kind)
    }
}

/// Runs the verdict experiment; writes `tab2_verdicts.csv` and
/// `tab2_verdicts.txt`.
///
/// # Errors
///
/// Returns [`RunError`] if a closed-loop run fails.
pub fn run(ctx: &ExperimentContext) -> Result<VerdictsResult, RunError> {
    let thresholds = VerdictThresholds::default();
    let mut rows = Vec::new();
    for kind in ScenarioKind::anomalous() {
        for run_idx in 0..ctx.scenario_runs {
            let scenario = Scenario::short(
                kind,
                ctx.duration_hours,
                ctx.onset_hour,
                ctx.base_seed + 10 * run_idx as u64,
            );
            let outcome = ctx.monitor.run_scenario(&scenario)?;
            let detected = outcome.detection.earliest_hour().is_some();
            let diag = diagnose(&ctx.monitor, &outcome, thresholds);
            let (verdict, cv, pv, div) = match &diag {
                Some(d) => (
                    Some(d.verdict),
                    Some(d.controller_variable()),
                    Some(d.process_variable()),
                    Some(d.divergence),
                ),
                None => (None, None, None, None),
            };
            let correct = verdict.map(|v| match v {
                Verdict::Disturbance => !kind.is_attack(),
                Verdict::Intrusion => kind.is_attack(),
                Verdict::Inconclusive => false,
            });
            rows.push(VerdictRow {
                kind,
                run: run_idx,
                detected,
                verdict,
                controller_variable: cv,
                process_variable: pv,
                divergence: div,
                correct,
            });
        }
    }

    let mut csv = CsvWriter::with_header(&[
        "scenario",
        "run",
        "detected",
        "verdict",
        "controller_variable",
        "process_variable",
        "divergence",
        "correct",
    ]);
    let mut text = String::from(
        "Table 2: dual-level diagnosis verdicts\n\
         scenario            run det verdict       ctrl-var    proc-var   diverg ok\n",
    );
    for r in &rows {
        let verdict_s = r.verdict.map_or("-".to_string(), |v| v.to_string());
        let cv = r.controller_variable.clone().unwrap_or_else(|| "-".into());
        let pv = r.process_variable.clone().unwrap_or_else(|| "-".into());
        csv.push_labelled(
            &format!(
                "{},{},{},{},{},{}",
                r.kind.id(),
                r.run,
                r.detected as u8,
                verdict_s,
                cv,
                pv
            ),
            &[
                r.divergence.unwrap_or(f64::NAN),
                r.correct.map_or(f64::NAN, |c| c as u8 as f64),
            ],
        );
        text.push_str(&format!(
            "{:<19} {:>3} {:>3} {:<13} {:<11} {:<10} {:>7.3} {}\n",
            r.kind.id(),
            r.run,
            if r.detected { "yes" } else { "no" },
            verdict_s,
            cv,
            pv,
            r.divergence.unwrap_or(f64::NAN),
            match r.correct {
                Some(true) => "y",
                Some(false) => "n",
                None => "-",
            }
        ));
    }
    let result = VerdictsResult { rows };
    text.push_str(&format!(
        "\naccuracy over detected runs: {:.1} %\n",
        100.0 * result.accuracy()
    ));
    let _ = csv.write_to(ctx.results_dir.join("tab2_verdicts.csv"));
    let _ = std::fs::create_dir_all(&ctx.results_dir);
    let _ = std::fs::write(ctx.results_dir.join("tab2_verdicts.txt"), &text);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_separate_disturbance_from_integrity_attacks() {
        let dir = std::env::temp_dir().join("temspc_verdicts_test");
        let mut ctx = ExperimentContext::quick(&dir, 1.2).unwrap();
        ctx.scenario_runs = 1;
        let r = run(&ctx).unwrap();

        let idv6 = r.rows_for(ScenarioKind::Idv6).next().unwrap();
        assert_eq!(idv6.verdict, Some(Verdict::Disturbance), "{idv6:?}");

        let xmv3 = r.rows_for(ScenarioKind::IntegrityXmv3).next().unwrap();
        assert_eq!(xmv3.verdict, Some(Verdict::Intrusion), "{xmv3:?}");

        let xmeas1 = r.rows_for(ScenarioKind::IntegrityXmeas1).next().unwrap();
        assert_eq!(xmeas1.verdict, Some(Verdict::Intrusion), "{xmeas1:?}");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
