//! # temspc — distinguishing process disturbances from intrusions with
//! dual-level MSPC
//!
//! A full reproduction of *"On the Feasibility of Distinguishing Between
//! Process Disturbances and Intrusions in Process Control Systems Using
//! Multivariate Statistical Process Control"* (Iturbe et al., DSN 2016),
//! built on:
//!
//! * [`temspc_tesim`] — a Tennessee-Eastman-like plant (41 XMEAS, 12 XMV,
//!   20 IDV, safety interlocks),
//! * [`temspc_control`] — a Ricker-style decentralized control layer,
//! * [`temspc_fieldbus`] — an insecure fieldbus with a man-in-the-middle
//!   adversary (integrity and DoS attacks),
//! * [`temspc_mspc`] — PCA-based MSPC: T²/SPE charts, control limits, the
//!   3-consecutive detector and oMEDA diagnosis.
//!
//! The crate adds the paper's pipeline: closed-loop **scenarios**
//! ([`Scenario`]), a **runner** that records the controller-level and
//! process-level views simultaneously ([`ClosedLoopRunner`]), **dual-level
//! calibration and monitoring** ([`DualMspc`]) and **diagnosis**
//! ([`diagnosis`]) that compares the two levels' oMEDA vectors to decide
//! *disturbance vs. intrusion*. The [`experiments`] module regenerates
//! every figure and table of the paper.
//!
//! # Quickstart
//!
//! ```no_run
//! use temspc::{CalibrationConfig, DualMspc, Scenario, ScenarioKind};
//!
//! // Calibrate the dual-level MSPC model on normal operation (abbreviated
//! // here; the paper uses 30 runs of 72 h).
//! let calib = CalibrationConfig {
//!     runs: 2,
//!     duration_hours: 2.0,
//!     ..CalibrationConfig::default()
//! };
//! let monitor = DualMspc::calibrate(&calib).unwrap();
//!
//! // Run the paper's scenario (b): integrity attack closing valve XMV(3).
//! let scenario = Scenario::paper(ScenarioKind::IntegrityXmv3, 42);
//! let outcome = monitor.run_scenario(&scenario).unwrap();
//! println!("detected: {:?}", outcome.detection);
//! ```

#![warn(missing_docs)]

pub mod ascii_plot;
mod calibration;
pub mod capture;
pub mod csv;
pub mod diagnosis;
pub mod experiments;
mod monitor;
mod names;
pub mod netmon;
pub mod persistence;
pub mod report;
mod runner;
mod scenario;

pub use calibration::{
    calibration_scenario, collect_calibration_data, run_calibration_scenario,
    stack_calibration_runs, CalibrationConfig,
};
pub use capture::{capture_scenario, CaptureError, ScenarioCapture, StreamScorer};
pub use diagnosis::{AnomalyDiagnosis, Verdict};
pub use monitor::{DetectionSummary, DualMspc, MonitorConfig, ScenarioOutcome};
pub use names::{variable_description, variable_name, xmeas_index, xmv_index, N_MONITORED};
pub use netmon::{NetworkMonitor, NetworkOutcome};
pub use report::incident_report;
pub use runner::{ClosedLoopRunner, RunData, RunError, RunScratch, StepSample};
pub use scenario::{Scenario, ScenarioKind};
// Re-exported so downstream consumers of `StreamScorer::events` (the
// live incident stream) can name the event type without a direct
// `temspc-mspc` dependency.
pub use temspc_mspc::AnomalousEvent;
