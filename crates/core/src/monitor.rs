//! Dual-level MSPC monitoring: one model for the controller-level view,
//! one for the process-level view — the paper's extension of traditional
//! (single-level) MSPC.

use serde::{Deserialize, Serialize};
use temspc_linalg::Matrix;
use temspc_mspc::detector::DetectorConfig;
use temspc_mspc::{
    AnomalousEvent, ConsecutiveDetector, MspcConfig, MspcError, MspcModel, ScoreScratch,
};

use crate::calibration::{collect_calibration_data, CalibrationConfig};
use crate::names::N_MONITORED;
use crate::runner::{ClosedLoopRunner, RunData, RunError};
use crate::scenario::Scenario;

/// Monitoring configuration shared by both levels.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// MSPC calibration settings (components, limit method).
    pub mspc: MspcConfig,
    /// Detection rule (3 consecutive violations by default).
    pub detector: DetectorConfig,
    /// Number of violating observations collected for oMEDA after the
    /// first detection (0 → default 200).
    pub event_window: usize,
}

impl MonitorConfig {
    fn window(&self) -> usize {
        if self.event_window == 0 {
            100
        } else {
            self.event_window
        }
    }
}

/// Detection results of one scenario run, per level.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetectionSummary {
    /// First anomalous event on the controller-level charts.
    pub controller: Option<AnomalousEvent>,
    /// First anomalous event on the process-level charts.
    pub process: Option<AnomalousEvent>,
}

impl DetectionSummary {
    /// Hour of the earliest detection across both levels.
    pub fn earliest_hour(&self) -> Option<f64> {
        match (self.controller, self.process) {
            (Some(c), Some(p)) => Some(c.detected_hour.min(p.detected_hour)),
            (Some(c), None) => Some(c.detected_hour),
            (None, Some(p)) => Some(p.detected_hour),
            (None, None) => None,
        }
    }

    /// Run length (hours from onset to earliest detection), if detected.
    pub fn run_length(&self, onset_hour: f64) -> Option<f64> {
        self.earliest_hour().map(|h| h - onset_hour)
    }
}

/// Everything produced by monitoring one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The decimated run data (both views, shutdown info).
    pub run: RunData,
    /// Detection events per level (first event at or after the onset).
    pub detection: DetectionSummary,
    /// Number of events flagged *before* the onset (false alarms).
    pub false_alarms: usize,
    /// Controller-level rows of the anomalous-event window (for oMEDA).
    pub event_rows_controller: Matrix,
    /// Process-level rows of the anomalous-event window (for oMEDA).
    pub event_rows_process: Matrix,
}

/// The dual-level MSPC monitor of the paper: calibrated models for the
/// controller-level and process-level variable vectors (41 XMEAS +
/// 12 XMV each).
///
/// Serializable: persist an expensive calibration with
/// [`crate::persistence::save_monitor`] and reload it with
/// [`crate::persistence::load_monitor`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DualMspc {
    controller_model: MspcModel,
    process_model: MspcModel,
    config: MonitorConfig,
}

impl DualMspc {
    /// Runs a calibration campaign and fits both models with default
    /// monitoring configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MspcError`] if a calibration run fails or the fit is
    /// degenerate.
    pub fn calibrate(calibration: &CalibrationConfig) -> Result<Self, MspcError> {
        Self::calibrate_with(calibration, MonitorConfig::default())
    }

    /// Runs a calibration campaign and fits both models.
    ///
    /// # Errors
    ///
    /// Returns [`MspcError`] if a calibration run fails or the fit is
    /// degenerate.
    pub fn calibrate_with(
        calibration: &CalibrationConfig,
        config: MonitorConfig,
    ) -> Result<Self, MspcError> {
        let (controller, process) = collect_calibration_data(calibration)
            .map_err(|_| MspcError::Numeric(temspc_linalg::LinalgError::Empty))?;
        Self::from_data(&controller, &process, config)
    }

    /// Fits both models from explicit calibration matrices.
    ///
    /// # Errors
    ///
    /// Returns [`MspcError`] on degenerate data.
    pub fn from_data(
        controller_calib: &Matrix,
        process_calib: &Matrix,
        config: MonitorConfig,
    ) -> Result<Self, MspcError> {
        Ok(DualMspc {
            controller_model: MspcModel::fit(controller_calib, config.mspc)?,
            process_model: MspcModel::fit(process_calib, config.mspc)?,
            config,
        })
    }

    /// The controller-level model.
    pub fn controller_model(&self) -> &MspcModel {
        &self.controller_model
    }

    /// The process-level model.
    pub fn process_model(&self) -> &MspcModel {
        &self.process_model
    }

    /// The monitoring configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Runs a scenario under full-rate dual-level monitoring.
    ///
    /// Returns the decimated run data, the per-level detection events and
    /// the anomalous-observation windows used for oMEDA diagnosis (the
    /// first `event_window` observations violating the 99 % limits on
    /// either level, starting from the first violation of the first
    /// event).
    ///
    /// Following the paper's protocol, only events flagged at or after the
    /// scenario's onset hour count: alarms before the onset are false
    /// alarms by construction and are reported separately in
    /// [`ScenarioOutcome::false_alarms`].
    ///
    /// Internally, samples are buffered into fixed-size blocks and scored
    /// through the batched kernel path; the detectors then consume the
    /// `(t2, spe)` series in step order, so every detection, false alarm
    /// and event-window row is bit-identical to one-observation-at-a-time
    /// scoring (the monitor observes the loop passively — buffering cannot
    /// change the plant trajectory).
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the closed loop fails.
    pub fn run_scenario(&self, scenario: &Scenario) -> Result<ScenarioOutcome, RunError> {
        let mut state = BlockMonitorState::new(self, scenario.onset_hour);
        let runner = ClosedLoopRunner::new(scenario);
        let run = runner.run(RECORD_EVERY, |sample| {
            state.push(sample.hour, &sample.controller_view, &sample.process_view)
        })?;
        let stream = state.finish();
        Ok(ScenarioOutcome {
            run,
            detection: stream.detection,
            false_alarms: stream.false_alarms,
            event_rows_controller: stream.event_rows_controller,
            event_rows_process: stream.event_rows_process,
        })
    }
}

/// Decimation factor of the recorded [`RunData`] relative to the
/// full-rate loop. Shared by the live path ([`DualMspc::run_scenario`])
/// and the capture replay path so a replayed tape reconstructs exactly
/// the rows a live run would have recorded.
pub(crate) const RECORD_EVERY: usize = 50;

/// Rows buffered before a batched scoring pass during monitoring. Large
/// enough to amortize the kernel's panel packing, small enough that the
/// two 53-column block buffers and their scratches stay cache-resident.
const SCORE_BLOCK_ROWS: usize = 256;

/// What the streaming scorer accumulated over one run: the per-level
/// detections, the false-alarm count and the oMEDA event windows.
pub(crate) struct StreamOutcome {
    pub(crate) detection: DetectionSummary,
    pub(crate) false_alarms: usize,
    pub(crate) event_rows_controller: Matrix,
    pub(crate) event_rows_process: Matrix,
}

/// Streaming state of one monitored run: buffers full-rate samples into
/// blocks, batch-scores each full block against both models and replays
/// the statistics through the detectors in step order.
///
/// This is the single scoring path shared by the live loop
/// ([`DualMspc::run_scenario`]) and the capture replay
/// ([`DualMspc::score_capture`](crate::capture)) — both feed it the same
/// `(hour, controller_view, process_view)` stream, so their outcomes are
/// bit-identical by construction.
pub(crate) struct BlockMonitorState<'m> {
    monitor: &'m DualMspc,
    controller_det: ConsecutiveDetector,
    process_det: ConsecutiveDetector,
    onset: f64,
    window: usize,
    hours: Vec<f64>,
    c_block: Matrix,
    p_block: Matrix,
    c_scratch: ScoreScratch,
    p_scratch: ScoreScratch,
    collecting: bool,
    event_rows_controller: Matrix,
    event_rows_process: Matrix,
}

impl<'m> BlockMonitorState<'m> {
    pub(crate) fn new(monitor: &'m DualMspc, onset: f64) -> Self {
        BlockMonitorState {
            monitor,
            controller_det: ConsecutiveDetector::new(
                *monitor.controller_model.limits(),
                monitor.config.detector,
            ),
            process_det: ConsecutiveDetector::new(
                *monitor.process_model.limits(),
                monitor.config.detector,
            ),
            onset,
            window: monitor.config.window(),
            hours: Vec::with_capacity(SCORE_BLOCK_ROWS),
            c_block: Matrix::with_capacity(SCORE_BLOCK_ROWS, N_MONITORED),
            p_block: Matrix::with_capacity(SCORE_BLOCK_ROWS, N_MONITORED),
            c_scratch: ScoreScratch::new(),
            p_scratch: ScoreScratch::new(),
            collecting: false,
            event_rows_controller: Matrix::default(),
            event_rows_process: Matrix::default(),
        }
    }

    /// Detection events fired so far on each level, in update order.
    /// Samples are scored in blocks, so an event surfaces once the block
    /// containing it flushes (at most [`SCORE_BLOCK_ROWS`] samples after
    /// the violation) — polling this between pushes never changes what
    /// [`BlockMonitorState::finish`] would report.
    pub(crate) fn events(&self) -> (&[AnomalousEvent], &[AnomalousEvent]) {
        (self.controller_det.events(), self.process_det.events())
    }

    pub(crate) fn push(&mut self, hour: f64, controller_view: &[f64], process_view: &[f64]) {
        debug_assert_eq!(controller_view.len(), N_MONITORED);
        self.hours.push(hour);
        self.c_block.push_row(controller_view);
        self.p_block.push_row(process_view);
        if self.hours.len() == SCORE_BLOCK_ROWS {
            self.flush();
        }
    }

    /// Flushes the final partial block and folds the detector state into
    /// a [`StreamOutcome`].
    pub(crate) fn finish(mut self) -> StreamOutcome {
        self.flush();
        let onset = self.onset;
        let first_after = |det: &ConsecutiveDetector| {
            det.events()
                .iter()
                .find(|e| e.detected_hour >= onset)
                .copied()
        };
        let false_alarms = self
            .controller_det
            .events()
            .iter()
            .chain(self.process_det.events())
            .filter(|e| e.detected_hour < onset)
            .count();
        StreamOutcome {
            detection: DetectionSummary {
                controller: first_after(&self.controller_det),
                process: first_after(&self.process_det),
            },
            false_alarms,
            event_rows_controller: self.event_rows_controller,
            event_rows_process: self.event_rows_process,
        }
    }

    fn flush(&mut self) {
        if self.hours.is_empty() {
            return;
        }
        self.monitor
            .controller_model
            .score_dataset_into(&self.c_block, &mut self.c_scratch)
            .expect("monitored vector length fixed");
        self.monitor
            .process_model
            .score_dataset_into(&self.p_block, &mut self.p_scratch)
            .expect("monitored vector length fixed");
        for (i, &hour) in self.hours.iter().enumerate() {
            let (c_t2, c_spe) = (self.c_scratch.t2()[i], self.c_scratch.spe()[i]);
            let (p_t2, p_spe) = (self.p_scratch.t2()[i], self.p_scratch.spe()[i]);
            let c_event = self.controller_det.update(hour, c_t2, c_spe);
            let p_event = self.process_det.update(hour, p_t2, p_spe);
            if hour >= self.onset
                && (c_event.is_some_and(|e| e.detected_hour >= self.onset)
                    || p_event.is_some_and(|e| e.detected_hour >= self.onset))
            {
                self.collecting = true;
            }
            if self.collecting && self.event_rows_controller.nrows() < self.window {
                let violating = self
                    .monitor
                    .controller_model
                    .limits()
                    .violates_99(c_t2, c_spe)
                    || self.monitor.process_model.limits().violates_99(p_t2, p_spe);
                if violating {
                    self.event_rows_controller.push_row(self.c_block.row(i));
                    self.event_rows_process.push_row(self.p_block.row(i));
                }
            }
        }
        self.hours.clear();
        self.c_block.clear_rows();
        self.p_block.clear_rows();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioKind;

    fn quick_monitor() -> DualMspc {
        let cfg = CalibrationConfig {
            runs: 3,
            duration_hours: 1.0,
            record_every: 10,
            base_seed: 100,
            threads: 3,
        };
        DualMspc::calibrate(&cfg).unwrap()
    }

    #[test]
    fn normal_scenario_rarely_alarms() {
        let monitor = quick_monitor();
        let s = Scenario::short(ScenarioKind::Normal, 0.5, f64::INFINITY, 999);
        let outcome = monitor.run_scenario(&s).unwrap();
        assert!(outcome.run.survived());
        // A short normal run should not produce a detection (3 consecutive
        // 99 % violations on fresh normal data are rare).
        assert!(
            outcome.detection.controller.is_none() && outcome.detection.process.is_none(),
            "false alarm: {:?}",
            outcome.detection
        );
    }

    #[test]
    fn integrity_attack_is_detected_fast_on_both_levels() {
        let monitor = quick_monitor();
        let s = Scenario::short(ScenarioKind::IntegrityXmv3, 1.0, 0.3, 42);
        let outcome = monitor.run_scenario(&s).unwrap();
        let det = outcome.detection;
        assert!(det.controller.is_some() && det.process.is_some());
        let rl = det.run_length(0.3).unwrap();
        assert!(rl < 0.2, "run length = {rl} h");
        assert!(outcome.event_rows_controller.nrows() > 0);
        assert_eq!(
            outcome.event_rows_controller.nrows(),
            outcome.event_rows_process.nrows()
        );
    }

    #[test]
    fn sensor_forgery_detected_at_both_levels() {
        let monitor = quick_monitor();
        let s = Scenario::short(ScenarioKind::IntegrityXmeas1, 1.0, 0.3, 43);
        let outcome = monitor.run_scenario(&s).unwrap();
        assert!(outcome.detection.earliest_hour().is_some());
    }
}
