//! Naming of the 53 monitored variables: XMEAS(1..41) then XMV(1..12).

use temspc_tesim::measurement::XMEAS_INFO;
use temspc_tesim::{N_XMEAS, N_XMV};

/// Number of monitored variables per level: 41 XMEAS + 12 XMV.
pub const N_MONITORED: usize = N_XMEAS + N_XMV;

/// Human-readable name of monitored variable `index` (0-based):
/// `XMEAS(1)`..`XMEAS(41)` then `XMV(1)`..`XMV(12)`.
///
/// # Panics
///
/// Panics if `index >= 53`.
pub fn variable_name(index: usize) -> String {
    assert!(index < N_MONITORED, "monitored-variable index out of range");
    if index < N_XMEAS {
        format!("XMEAS({})", index + 1)
    } else {
        format!("XMV({})", index - N_XMEAS + 1)
    }
}

/// Long descriptive name (includes the sensor description for XMEAS).
///
/// # Panics
///
/// Panics if `index >= 53`.
pub fn variable_description(index: usize) -> String {
    assert!(index < N_MONITORED, "monitored-variable index out of range");
    if index < N_XMEAS {
        format!("XMEAS({}) {}", index + 1, XMEAS_INFO[index].name)
    } else {
        variable_name(index)
    }
}

/// Monitored-variable index of `XMEAS(n)` (1-based `n`).
///
/// # Panics
///
/// Panics if `n` is 0 or greater than 41.
pub fn xmeas_index(n: usize) -> usize {
    assert!((1..=N_XMEAS).contains(&n), "XMEAS number out of range");
    n - 1
}

/// Monitored-variable index of `XMV(n)` (1-based `n`).
///
/// # Panics
///
/// Panics if `n` is 0 or greater than 12.
pub fn xmv_index(n: usize) -> usize {
    assert!((1..=N_XMV).contains(&n), "XMV number out of range");
    N_XMEAS + n - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_cover_both_blocks() {
        assert_eq!(variable_name(0), "XMEAS(1)");
        assert_eq!(variable_name(40), "XMEAS(41)");
        assert_eq!(variable_name(41), "XMV(1)");
        assert_eq!(variable_name(52), "XMV(12)");
    }

    #[test]
    fn index_helpers_roundtrip() {
        assert_eq!(xmeas_index(1), 0);
        assert_eq!(xmeas_index(41), 40);
        assert_eq!(xmv_index(1), 41);
        assert_eq!(xmv_index(3), 43);
        assert_eq!(variable_name(xmv_index(3)), "XMV(3)");
    }

    #[test]
    fn descriptions_include_sensor_names() {
        assert!(variable_description(0).contains("A feed"));
        assert_eq!(variable_description(43), "XMV(3)");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        variable_name(53);
    }
}
