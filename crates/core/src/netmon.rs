//! Network-level monitoring — the paper's §VII future work, implemented.
//!
//! > "We are confident that adding network-level variables to the ones of
//! > the process will ease anomaly diagnosis (e.g. by detecting increased
//! > traffic in the case of network DoS attacks) and will also shorten
//! > the ARL required to detect anomalies."
//!
//! A passive tap at the process end of the fieldbus aggregates traffic
//! features per window ([`temspc_fieldbus::TrafficMonitor`]): frame/byte
//! rates and per-channel update fractions. A third MSPC model is
//! calibrated on those features; a DoS that freezes a channel drives its
//! update fraction to zero within one window — detected in minutes
//! instead of the hours the process dynamics need, and attributed to the
//! exact channel by the top SPE contribution.

use temspc_fieldbus::{TrafficFeatures, TrafficMonitor};
use temspc_linalg::Matrix;
use temspc_mspc::contribution::{spe_contributions, t2_contributions, top_contributor};
use temspc_mspc::detector::DetectorConfig;
use temspc_mspc::{ConsecutiveDetector, MspcConfig, MspcError, MspcModel};
use temspc_tesim::{N_XMEAS, N_XMV};

use crate::calibration::CalibrationConfig;
use crate::capture::{check_shape, CaptureError, ScenarioCapture};
use crate::runner::{ClosedLoopRunner, RunError};
use crate::scenario::{Scenario, ScenarioKind};
use temspc_fieldbus::ReplayLink;

/// Frame sizes of the wire protocol (fixed layout: 18-byte header + 8
/// bytes per value).
const UPLINK_FRAME_BYTES: usize = 18 + 8 * N_XMEAS;
const DOWNLINK_FRAME_BYTES: usize = 18 + 8 * N_XMV;

/// A calibrated network-level MSPC monitor.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NetworkMonitor {
    model: MspcModel,
    window_hours: f64,
    detector: DetectorConfig,
}

/// Result of monitoring one scenario at the network level.
#[derive(Debug, Clone)]
pub struct NetworkOutcome {
    /// Hour of detection (3 consecutive windows over the 99 % limit), if
    /// any, at or after the onset.
    pub detected_hour: Option<f64>,
    /// Name of the feature dominating the first anomalous window's SPE
    /// (e.g. `down_change[XMV(3)]`).
    pub implicated_feature: Option<String>,
    /// Number of feature windows evaluated.
    pub windows: usize,
}

impl NetworkMonitor {
    /// Calibrates the network-level model from normal-operation traffic.
    ///
    /// `window_hours` is the traffic aggregation window (e.g. 0.02 h =
    /// 72 s). Detection uses the same 3-consecutive rule as the process
    /// charts, but per *window*.
    ///
    /// # Errors
    ///
    /// Returns [`MspcError`] if a calibration run fails or the model is
    /// degenerate.
    pub fn calibrate(
        calibration: &CalibrationConfig,
        window_hours: f64,
    ) -> Result<Self, MspcError> {
        let mut features = Matrix::default();
        for k in 0..calibration.runs {
            let scenario = Scenario::short(
                ScenarioKind::Normal,
                calibration.duration_hours,
                f64::INFINITY,
                calibration.base_seed + k as u64,
            );
            let rows = collect_traffic(&scenario, window_hours, |_| {})
                .map_err(|_| MspcError::Numeric(temspc_linalg::LinalgError::Empty))?;
            for row in rows.iter_rows() {
                features.push_row(row);
            }
        }
        // Update-fraction features are near-deterministic (always ~1 in
        // normal traffic): declare 2 % as the smallest meaningful move so
        // a frozen channel scores tens of sigmas.
        let config = MspcConfig {
            min_std: 0.02,
            ..MspcConfig::default()
        };
        let model = MspcModel::fit(&features, config)?;
        Ok(NetworkMonitor {
            model,
            window_hours,
            detector: DetectorConfig::default(),
        })
    }

    /// The underlying MSPC model over the 57 traffic features.
    pub fn model(&self) -> &MspcModel {
        &self.model
    }

    /// The traffic aggregation window, hours.
    pub fn window_hours(&self) -> f64 {
        self.window_hours
    }

    /// Monitors one scenario at the network level.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the closed loop fails.
    pub fn run_scenario(&self, scenario: &Scenario) -> Result<NetworkOutcome, RunError> {
        let mut scorer = WindowScorer::new(self, scenario.onset_hour);
        let rows = collect_traffic(scenario, self.window_hours, |f| scorer.update(f))?;
        let _ = rows;
        Ok(scorer.finish())
    }

    /// Scores a recorded capture at the network level.
    ///
    /// The replayed tape feeds the same process-end traffic tap and the
    /// same per-window scorer as [`NetworkMonitor::run_scenario`]: the
    /// captured wire lengths and the process-side values (true XMEAS
    /// sent, forged XMV delivered) reproduce the live feature windows
    /// bit-for-bit, so the detected hour and implicated feature match
    /// the live outcome exactly.
    ///
    /// # Errors
    ///
    /// Returns [`CaptureError`] if the tape is corrupt or was not
    /// recorded from a TE closed loop.
    pub fn score_capture(&self, capture: &ScenarioCapture) -> Result<NetworkOutcome, CaptureError> {
        let mut tap = TrafficMonitor::new(self.window_hours, N_XMEAS, N_XMV);
        let mut scorer = WindowScorer::new(self, capture.scenario.onset_hour);
        for (k, step) in ReplayLink::new(&capture.records).enumerate() {
            let step = step?;
            check_shape(k, &step)?;
            if let Some(f) = tap.observe_uplink(step.hour, step.uplink_wire_bytes, &step.true_xmeas)
            {
                scorer.update(&f);
            }
            if let Some(f) =
                tap.observe_downlink(step.hour, step.downlink_wire_bytes, &step.delivered_xmv)
            {
                scorer.update(&f);
            }
        }
        Ok(scorer.finish())
    }
}

/// Per-window scoring state shared by the live path
/// ([`NetworkMonitor::run_scenario`]) and the capture replay path
/// ([`NetworkMonitor::score_capture`]).
struct WindowScorer<'m> {
    monitor: &'m NetworkMonitor,
    detector: ConsecutiveDetector,
    implicated: Option<String>,
    windows: usize,
    onset: f64,
}

impl<'m> WindowScorer<'m> {
    fn new(monitor: &'m NetworkMonitor, onset: f64) -> Self {
        WindowScorer {
            monitor,
            detector: ConsecutiveDetector::new(*monitor.model.limits(), monitor.detector),
            implicated: None,
            windows: 0,
            onset,
        }
    }

    fn update(&mut self, f: &TrafficFeatures) {
        let model = &self.monitor.model;
        self.windows += 1;
        let v = f.to_vector();
        let score = model.score(&v).expect("fixed feature length");
        self.detector.update(f.hour, score.t2, score.spe);
        if self.implicated.is_none()
            && f.hour >= self.onset
            && model.limits().violates_99(score.t2, score.spe)
        {
            // Attribute via whichever chart carries the violation: the
            // frozen channel's direction may be in-model (T²) or in
            // the residual (SPE) depending on the retained subspace.
            let spe_rel = score.spe / model.limits().spe_99.max(1e-300);
            let t2_rel = score.t2 / model.limits().t2_99.max(1e-300);
            let contrib = if spe_rel >= t2_rel {
                spe_contributions(model.pca(), &v)
            } else {
                t2_contributions(model.pca(), &v)
            };
            if let Ok(c) = contrib {
                if let Some((idx, _)) = top_contributor(&c) {
                    self.implicated = Some(f.feature_name(idx));
                }
            }
        }
    }

    fn finish(self) -> NetworkOutcome {
        let detected_hour = self
            .detector
            .events()
            .iter()
            .find(|e| e.detected_hour >= self.onset)
            .map(|e| e.detected_hour);
        NetworkOutcome {
            detected_hour,
            implicated_feature: self.implicated,
            windows: self.windows,
        }
    }
}

/// Runs a scenario feeding a process-end traffic tap; returns the feature
/// rows and calls `on_window` for each completed window.
fn collect_traffic<F: FnMut(&TrafficFeatures)>(
    scenario: &Scenario,
    window_hours: f64,
    mut on_window: F,
) -> Result<Matrix, RunError> {
    let mut tap = TrafficMonitor::new(window_hours, N_XMEAS, N_XMV);
    let mut rows = Matrix::default();
    let runner = ClosedLoopRunner::new(scenario);
    runner.run(usize::MAX, |sample| {
        // Process-end tap: sees the true sensor frames leaving the plant
        // and the (possibly forged) actuator frames arriving at it.
        let up = &sample.process_view[..N_XMEAS];
        let down = &sample.process_view[N_XMEAS..];
        if let Some(f) = tap.observe_uplink(sample.hour, UPLINK_FRAME_BYTES, up) {
            rows.push_row(&f.to_vector());
            on_window(&f);
        }
        if let Some(f) = tap.observe_downlink(sample.hour, DOWNLINK_FRAME_BYTES, down) {
            rows.push_row(&f.to_vector());
            on_window(&f);
        }
    })?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_calibration() -> CalibrationConfig {
        CalibrationConfig {
            runs: 2,
            duration_hours: 0.5,
            record_every: 50,
            base_seed: 900,
            threads: 0,
        }
    }

    #[test]
    fn network_monitor_detects_dos_within_windows() {
        let monitor = NetworkMonitor::calibrate(&quick_calibration(), 0.02).unwrap();
        let scenario = Scenario::short(ScenarioKind::DosXmv3, 1.0, 0.3, 42);
        let outcome = monitor.run_scenario(&scenario).unwrap();
        let detected = outcome.detected_hour.expect("DoS visible in traffic");
        let delay = detected - 0.3;
        assert!(
            delay < 0.15,
            "network-level detection took {delay} h (expected a few windows)"
        );
        assert_eq!(
            outcome.implicated_feature.as_deref(),
            Some("down_change[XMV(3)]")
        );
    }

    #[test]
    fn network_monitor_stays_quiet_on_normal_runs() {
        let monitor = NetworkMonitor::calibrate(&quick_calibration(), 0.02).unwrap();
        let scenario = Scenario::short(ScenarioKind::Normal, 0.5, f64::INFINITY, 777);
        let outcome = monitor.run_scenario(&scenario).unwrap();
        assert!(outcome.detected_hour.is_none(), "{outcome:?}");
        assert!(outcome.windows > 10);
    }

    #[test]
    fn replayed_capture_scores_identically() {
        let monitor = NetworkMonitor::calibrate(&quick_calibration(), 0.02).unwrap();
        let scenario = Scenario::short(ScenarioKind::DosXmv3, 0.8, 0.3, 42);
        let live = monitor.run_scenario(&scenario).unwrap();
        let capture = crate::capture::capture_scenario(&scenario).unwrap();
        let replayed = monitor.score_capture(&capture).unwrap();
        assert_eq!(
            live.detected_hour.map(f64::to_bits),
            replayed.detected_hour.map(f64::to_bits)
        );
        assert_eq!(live.implicated_feature, replayed.implicated_feature);
        assert_eq!(live.windows, replayed.windows);
    }

    #[test]
    fn integrity_constant_also_freezes_the_channel_signature() {
        // An integrity-constant attack on XMV(3) also zeroes its update
        // fraction: the network level sees it too.
        let monitor = NetworkMonitor::calibrate(&quick_calibration(), 0.02).unwrap();
        let scenario = Scenario::short(ScenarioKind::IntegrityXmv3, 0.8, 0.3, 42);
        let outcome = monitor.run_scenario(&scenario).unwrap();
        assert!(outcome.detected_hour.is_some());
    }
}
