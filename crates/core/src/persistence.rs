//! Saving and loading calibrated monitors.
//!
//! Calibrating at paper scale costs minutes of simulated plant time; a
//! deployed detector should calibrate once and reload the frozen models.
//! Files use the TPB format of [`temspc_persist`] with a short magic
//! header for fail-fast version checks.

use std::io;
use std::path::Path;

use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::capture::ScenarioCapture;
use crate::monitor::DualMspc;
use crate::netmon::NetworkMonitor;
use temspc_persist::PersistError;

/// File magic + format version for calibrated monitors.
const MAGIC: &[u8; 8] = b"TEMSPC\x01\x00";

/// File magic + format version for scenario captures.
const CAPTURE_MAGIC: &[u8; 8] = b"TECAP\x01\x00\x00";

/// Errors from monitor persistence.
#[derive(Debug)]
pub enum PersistenceError {
    /// Filesystem failure.
    Io(io::Error),
    /// Encoding/decoding failure.
    Format(PersistError),
    /// The file does not start with the expected magic/version header.
    BadHeader,
}

impl std::fmt::Display for PersistenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistenceError::Io(e) => write!(f, "i/o failure: {e}"),
            PersistenceError::Format(e) => write!(f, "format failure: {e}"),
            PersistenceError::BadHeader => write!(f, "not a temspc model file (bad header)"),
        }
    }
}

impl std::error::Error for PersistenceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistenceError::Io(e) => Some(e),
            PersistenceError::Format(e) => Some(e),
            PersistenceError::BadHeader => None,
        }
    }
}

impl From<io::Error> for PersistenceError {
    fn from(e: io::Error) -> Self {
        PersistenceError::Io(e)
    }
}

impl From<PersistError> for PersistenceError {
    fn from(e: PersistError) -> Self {
        PersistenceError::Format(e)
    }
}

fn save<T: Serialize>(value: &T, path: &Path, magic: &[u8; 8]) -> Result<(), PersistenceError> {
    let mut bytes = Vec::with_capacity(1024);
    bytes.extend_from_slice(magic);
    bytes.extend_from_slice(&temspc_persist::to_bytes(value)?);
    // Atomic temp-file + rename: a crash mid-save leaves the previous
    // file (or nothing) behind, never a torn `.tpb`/`.cap` that would
    // later fail as `Format` instead of simply not existing.
    temspc_persist::write_atomic(path, &bytes)?;
    Ok(())
}

fn load<T: DeserializeOwned>(path: &Path, magic: &[u8; 8]) -> Result<T, PersistenceError> {
    let bytes = std::fs::read(path)?;
    let payload = bytes
        .strip_prefix(magic.as_slice())
        .ok_or(PersistenceError::BadHeader)?;
    Ok(temspc_persist::from_bytes(payload)?)
}

/// Saves a calibrated dual-level monitor to `path`.
///
/// # Errors
///
/// Returns [`PersistenceError`] on I/O or encoding failures.
pub fn save_monitor(monitor: &DualMspc, path: impl AsRef<Path>) -> Result<(), PersistenceError> {
    save(monitor, path.as_ref(), MAGIC)
}

/// Loads a dual-level monitor saved with [`save_monitor`].
///
/// # Errors
///
/// Returns [`PersistenceError`] on I/O, header or decoding failures.
pub fn load_monitor(path: impl AsRef<Path>) -> Result<DualMspc, PersistenceError> {
    load(path.as_ref(), MAGIC)
}

/// Saves a calibrated network-level monitor to `path`.
///
/// # Errors
///
/// Returns [`PersistenceError`] on I/O or encoding failures.
pub fn save_network_monitor(
    monitor: &NetworkMonitor,
    path: impl AsRef<Path>,
) -> Result<(), PersistenceError> {
    save(monitor, path.as_ref(), MAGIC)
}

/// Loads a network-level monitor saved with [`save_network_monitor`].
///
/// # Errors
///
/// Returns [`PersistenceError`] on I/O, header or decoding failures.
pub fn load_network_monitor(path: impl AsRef<Path>) -> Result<NetworkMonitor, PersistenceError> {
    load(path.as_ref(), MAGIC)
}

/// Saves a recorded scenario capture to `path` (a `.cap` wire tape).
///
/// Captures use their own magic header, so a capture file can never be
/// mistaken for a calibrated model or vice versa.
///
/// # Errors
///
/// Returns [`PersistenceError`] on I/O or encoding failures.
pub fn save_capture(
    capture: &ScenarioCapture,
    path: impl AsRef<Path>,
) -> Result<(), PersistenceError> {
    save(capture, path.as_ref(), CAPTURE_MAGIC)
}

/// Loads a scenario capture saved with [`save_capture`].
///
/// # Errors
///
/// Returns [`PersistenceError`] on I/O, header or decoding failures.
pub fn load_capture(path: impl AsRef<Path>) -> Result<ScenarioCapture, PersistenceError> {
    load(path.as_ref(), CAPTURE_MAGIC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::CalibrationConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir()
            .join("temspc_persistence_test")
            .join(name)
    }

    #[test]
    fn monitor_roundtrips_through_disk() {
        let cfg = CalibrationConfig {
            runs: 2,
            duration_hours: 0.3,
            record_every: 10,
            base_seed: 60,
            threads: 0,
        };
        let monitor = DualMspc::calibrate(&cfg).unwrap();
        let path = tmp("dual.tpb");
        save_monitor(&monitor, &path).unwrap();
        let loaded = load_monitor(&path).unwrap();
        // Identical limits and identical scoring.
        assert_eq!(
            monitor.controller_model().limits().t2_99,
            loaded.controller_model().limits().t2_99
        );
        let obs: Vec<f64> = (0..53).map(|i| i as f64 * 0.3).collect();
        assert_eq!(
            monitor.controller_model().score(&obs).unwrap(),
            loaded.controller_model().score(&obs).unwrap()
        );
        let _ = std::fs::remove_dir_all(tmp(""));
    }

    #[test]
    fn bad_header_is_rejected() {
        let path = tmp("garbage.tpb");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"NOTAMODEL").unwrap();
        assert!(matches!(
            load_monitor(&path),
            Err(PersistenceError::BadHeader)
        ));
        let _ = std::fs::remove_dir_all(tmp(""));
    }

    #[test]
    fn capture_roundtrips_through_disk() {
        use crate::capture::capture_scenario;
        use crate::scenario::{Scenario, ScenarioKind};
        let s = Scenario::short(ScenarioKind::IntegrityXmv3, 0.02, 0.01, 11);
        let capture = capture_scenario(&s).unwrap();
        let path = tmp("run.cap");
        save_capture(&capture, &path).unwrap();
        let loaded = load_capture(&path).unwrap();
        assert_eq!(loaded.records, capture.records);
        assert_eq!(loaded.shutdown, capture.shutdown);
        assert_eq!(loaded.scenario.kind, capture.scenario.kind);
        assert_eq!(loaded.scenario.seed, capture.scenario.seed);
        // A capture file is not a model file and vice versa.
        assert!(matches!(
            load_monitor(&path),
            Err(PersistenceError::BadHeader)
        ));
        let _ = std::fs::remove_dir_all(tmp(""));
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_monitor("/nonexistent/temspc/model.tpb"),
            Err(PersistenceError::Io(_))
        ));
    }
}
