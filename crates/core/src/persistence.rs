//! Saving and loading calibrated monitors.
//!
//! Calibrating at paper scale costs minutes of simulated plant time; a
//! deployed detector should calibrate once and reload the frozen models.
//! Files use the TPB format of [`temspc_persist`] with a short magic
//! header for fail-fast version checks.

use std::io;
use std::path::Path;

use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::monitor::DualMspc;
use crate::netmon::NetworkMonitor;
use temspc_persist::PersistError;

/// File magic + format version.
const MAGIC: &[u8; 8] = b"TEMSPC\x01\x00";

/// Errors from monitor persistence.
#[derive(Debug)]
pub enum PersistenceError {
    /// Filesystem failure.
    Io(io::Error),
    /// Encoding/decoding failure.
    Format(PersistError),
    /// The file does not start with the expected magic/version header.
    BadHeader,
}

impl std::fmt::Display for PersistenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistenceError::Io(e) => write!(f, "i/o failure: {e}"),
            PersistenceError::Format(e) => write!(f, "format failure: {e}"),
            PersistenceError::BadHeader => write!(f, "not a temspc model file (bad header)"),
        }
    }
}

impl std::error::Error for PersistenceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistenceError::Io(e) => Some(e),
            PersistenceError::Format(e) => Some(e),
            PersistenceError::BadHeader => None,
        }
    }
}

impl From<io::Error> for PersistenceError {
    fn from(e: io::Error) -> Self {
        PersistenceError::Io(e)
    }
}

impl From<PersistError> for PersistenceError {
    fn from(e: PersistError) -> Self {
        PersistenceError::Format(e)
    }
}

fn save<T: Serialize>(value: &T, path: &Path) -> Result<(), PersistenceError> {
    let mut bytes = Vec::with_capacity(1024);
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&temspc_persist::to_bytes(value)?);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, bytes)?;
    Ok(())
}

fn load<T: DeserializeOwned>(path: &Path) -> Result<T, PersistenceError> {
    let bytes = std::fs::read(path)?;
    let payload = bytes
        .strip_prefix(MAGIC.as_slice())
        .ok_or(PersistenceError::BadHeader)?;
    Ok(temspc_persist::from_bytes(payload)?)
}

/// Saves a calibrated dual-level monitor to `path`.
///
/// # Errors
///
/// Returns [`PersistenceError`] on I/O or encoding failures.
pub fn save_monitor(monitor: &DualMspc, path: impl AsRef<Path>) -> Result<(), PersistenceError> {
    save(monitor, path.as_ref())
}

/// Loads a dual-level monitor saved with [`save_monitor`].
///
/// # Errors
///
/// Returns [`PersistenceError`] on I/O, header or decoding failures.
pub fn load_monitor(path: impl AsRef<Path>) -> Result<DualMspc, PersistenceError> {
    load(path.as_ref())
}

/// Saves a calibrated network-level monitor to `path`.
///
/// # Errors
///
/// Returns [`PersistenceError`] on I/O or encoding failures.
pub fn save_network_monitor(
    monitor: &NetworkMonitor,
    path: impl AsRef<Path>,
) -> Result<(), PersistenceError> {
    save(monitor, path.as_ref())
}

/// Loads a network-level monitor saved with [`save_network_monitor`].
///
/// # Errors
///
/// Returns [`PersistenceError`] on I/O, header or decoding failures.
pub fn load_network_monitor(path: impl AsRef<Path>) -> Result<NetworkMonitor, PersistenceError> {
    load(path.as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::CalibrationConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir()
            .join("temspc_persistence_test")
            .join(name)
    }

    #[test]
    fn monitor_roundtrips_through_disk() {
        let cfg = CalibrationConfig {
            runs: 2,
            duration_hours: 0.3,
            record_every: 10,
            base_seed: 60,
            threads: 0,
        };
        let monitor = DualMspc::calibrate(&cfg).unwrap();
        let path = tmp("dual.tpb");
        save_monitor(&monitor, &path).unwrap();
        let loaded = load_monitor(&path).unwrap();
        // Identical limits and identical scoring.
        assert_eq!(
            monitor.controller_model().limits().t2_99,
            loaded.controller_model().limits().t2_99
        );
        let obs: Vec<f64> = (0..53).map(|i| i as f64 * 0.3).collect();
        assert_eq!(
            monitor.controller_model().score(&obs).unwrap(),
            loaded.controller_model().score(&obs).unwrap()
        );
        let _ = std::fs::remove_dir_all(tmp(""));
    }

    #[test]
    fn bad_header_is_rejected() {
        let path = tmp("garbage.tpb");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"NOTAMODEL").unwrap();
        assert!(matches!(
            load_monitor(&path),
            Err(PersistenceError::BadHeader)
        ));
        let _ = std::fs::remove_dir_all(tmp(""));
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_monitor("/nonexistent/temspc/model.tpb"),
            Err(PersistenceError::Io(_))
        ));
    }
}
