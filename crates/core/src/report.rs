//! Operator incident reports: a human-readable rendering of one
//! detection + diagnosis, the artifact a SOC analyst or plant operator
//! would actually read.

use std::fmt::Write as _;

use crate::diagnosis::AnomalyDiagnosis;
use crate::monitor::ScenarioOutcome;
use crate::names::{variable_description, variable_name};

/// Renders a full incident report for a monitored scenario outcome and
/// its diagnosis.
///
/// Sections: detection timeline, chart states, top implicated variables
/// per level, level comparison and verdict, and the recommended operator
/// action.
pub fn incident_report(outcome: &ScenarioOutcome, diagnosis: &AnomalyDiagnosis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "==================== INCIDENT REPORT ===================="
    );

    // ---- detection timeline ----
    let _ = writeln!(out, "\n[detection]");
    match outcome.detection.controller {
        Some(e) => {
            let _ = writeln!(
                out,
                "  controller-level charts : flagged at hour {:.4} (first violation {:.4}; {}{})",
                e.detected_hour,
                e.first_violation_hour,
                if e.t2_violating { "T2 " } else { "" },
                if e.spe_violating { "SPE" } else { "" },
            );
        }
        None => {
            let _ = writeln!(out, "  controller-level charts : no event");
        }
    }
    match outcome.detection.process {
        Some(e) => {
            let _ = writeln!(
                out,
                "  process-level charts    : flagged at hour {:.4}",
                e.detected_hour
            );
        }
        None => {
            let _ = writeln!(out, "  process-level charts    : no event");
        }
    }
    if outcome.false_alarms > 0 {
        let _ = writeln!(
            out,
            "  note: {} pre-onset event(s) discarded as false alarms",
            outcome.false_alarms
        );
    }
    let _ = writeln!(
        out,
        "  anomalous observations collected for diagnosis: {}",
        outcome.event_rows_controller.nrows()
    );

    // ---- per-level diagnosis ----
    for (label, omeda) in [
        ("controller-level view", &diagnosis.controller_omeda),
        ("process-level view", &diagnosis.process_omeda),
    ] {
        let _ = writeln!(out, "\n[oMEDA — {label}]");
        let mut ranked: Vec<(usize, f64)> = omeda.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
        for (idx, value) in ranked.iter().take(5) {
            let _ = writeln!(
                out,
                "  {:>10} {:>+14.0}   {}",
                variable_name(*idx),
                value,
                variable_description(*idx)
            );
        }
    }

    // ---- verdict ----
    let _ = writeln!(out, "\n[level comparison]");
    let _ = writeln!(
        out,
        "  divergence between levels : {:.3} (0 = identical stories)",
        diagnosis.divergence
    );
    let _ = writeln!(
        out,
        "  clarity (controller / process): {:.2} / {:.2}",
        diagnosis.controller_clarity, diagnosis.process_clarity
    );
    let _ = writeln!(out, "\n[VERDICT] {}", diagnosis.verdict);

    let action = match diagnosis.verdict {
        crate::diagnosis::Verdict::Disturbance => format!(
            "Process disturbance involving {}. Engage operations: check the\n\
             associated feed/utility and stabilize the unit; no security\n\
             response indicated by the data.",
            diagnosis.process_variable()
        ),
        crate::diagnosis::Verdict::Intrusion => format!(
            "The two monitoring levels disagree: data is being forged in\n\
             flight. The process-level view implicates {} while the\n\
             controllers see {}. Treat the fieldbus segment carrying these\n\
             points as compromised: isolate it, switch affected loops to\n\
             manual/local control, and preserve traffic captures.",
            diagnosis.process_variable(),
            diagnosis.controller_variable()
        ),
        crate::diagnosis::Verdict::Inconclusive => {
            "An anomaly is confirmed but no variable stands out (the DoS\n\
             signature). Correlate with network-level monitoring; inspect\n\
             channels whose values have stopped updating."
                .to_string()
        }
    };
    let _ = writeln!(
        out,
        "\n[recommended action]\n  {}",
        action.replace('\n', "\n  ")
    );
    if let Some((reason, hour)) = outcome.run.shutdown {
        let _ = writeln!(
            out,
            "\n[plant status] SHUT DOWN at hour {hour:.3} ({reason})"
        );
    }
    let _ = writeln!(
        out,
        "=========================================================="
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::CalibrationConfig;
    use crate::diagnosis::{diagnose, VerdictThresholds};
    use crate::monitor::DualMspc;
    use crate::scenario::{Scenario, ScenarioKind};

    #[test]
    fn intrusion_report_names_both_variables() {
        let monitor = DualMspc::calibrate(&CalibrationConfig {
            runs: 3,
            duration_hours: 1.0,
            record_every: 10,
            base_seed: 100,
            threads: 0,
        })
        .unwrap();
        let outcome = monitor
            .run_scenario(&Scenario::short(ScenarioKind::IntegrityXmv3, 1.5, 0.5, 42))
            .unwrap();
        let diag = diagnose(&monitor, &outcome, VerdictThresholds::default()).unwrap();
        let report = incident_report(&outcome, &diag);
        assert!(report.contains("[VERDICT] intrusion"));
        assert!(report.contains("XMV(3)"));
        assert!(report.contains("XMEAS(1)"));
        assert!(report.contains("isolate"));
        assert!(report.contains("[detection]"));
    }

    #[test]
    fn disturbance_report_recommends_operations() {
        let monitor = DualMspc::calibrate(&CalibrationConfig {
            runs: 3,
            duration_hours: 1.0,
            record_every: 10,
            base_seed: 100,
            threads: 0,
        })
        .unwrap();
        let outcome = monitor
            .run_scenario(&Scenario::short(ScenarioKind::Idv6, 1.5, 0.5, 42))
            .unwrap();
        let diag = diagnose(&monitor, &outcome, VerdictThresholds::default()).unwrap();
        let report = incident_report(&outcome, &diag);
        assert!(report.contains("[VERDICT] disturbance"));
        assert!(report.contains("no security"));
    }
}
