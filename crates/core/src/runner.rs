//! The closed-loop runner: plant + controller + fieldbus + adversary,
//! with dual-level recording.
//!
//! Each 1.8 s step performs the loop of Figure 2 of the paper:
//!
//! 1. the plant's sensors produce the true XMEAS,
//! 2. the **uplink** carries them to the controller (the adversary may
//!    forge them) — the received values are the *controller-level* XMEAS,
//! 3. the controller computes the XMV commands — the *controller-level*
//!    XMV,
//! 4. the **downlink** carries them to the actuators (the adversary may
//!    forge them) — the delivered values are the *process-level* XMV,
//! 5. the plant advances one step.
//!
//! The *process-level* view is `[true XMEAS, delivered XMV]`; the
//! *controller-level* view is `[received XMEAS, commanded XMV]`. In an
//! attack-free run the two views are identical (the paper's observation).

use std::cell::RefCell;

use temspc_control::DecentralizedController;
use temspc_fieldbus::{CaptureRecord, FieldbusLink, LinkError, LinkScratch, MitmAdversary};
use temspc_linalg::Matrix;
use temspc_tesim::{
    MeasurementVector, PlantConfig, ShutdownReason, TePlant, N_XMV, SAMPLES_PER_HOUR,
};

use crate::names::N_MONITORED;
use crate::scenario::Scenario;

/// One full-rate sample of the closed loop, handed to streaming
/// observers.
#[derive(Debug, Clone)]
pub struct StepSample {
    /// Simulation hour of the sample.
    pub hour: f64,
    /// Controller-level view: received XMEAS ++ commanded XMV (53).
    pub controller_view: Vec<f64>,
    /// Process-level view: true XMEAS ++ delivered XMV (53).
    pub process_view: Vec<f64>,
}

/// Reusable buffers for the closed-loop hot path: the streamed
/// [`StepSample`], the sensor vector, both link transfer outputs and the
/// fieldbus wire buffers. After the first step warms the capacities, the
/// per-step loop performs **zero heap allocations** — only the decimated
/// recording matrices (pre-sized once per run) touch the allocator.
///
/// [`ClosedLoopRunner::run`] keeps one scratch per thread automatically;
/// [`ClosedLoopRunner::run_with`] takes an explicit scratch for callers
/// that manage worker state themselves.
#[derive(Debug)]
pub struct RunScratch {
    sample: StepSample,
    xmeas: MeasurementVector,
    received_xmeas: Vec<f64>,
    delivered_xmv: Vec<f64>,
    link: LinkScratch,
}

impl Default for RunScratch {
    fn default() -> Self {
        RunScratch {
            sample: StepSample {
                hour: 0.0,
                controller_view: Vec::new(),
                process_view: Vec::new(),
            },
            xmeas: MeasurementVector::nominal(),
            received_xmeas: Vec::new(),
            delivered_xmv: Vec::new(),
            link: LinkScratch::new(),
        }
    }
}

impl RunScratch {
    /// Empty scratch; buffers grow to steady-state size on first use.
    pub fn new() -> Self {
        RunScratch::default()
    }
}

thread_local! {
    /// Per-thread scratch behind [`ClosedLoopRunner::run`]: on a
    /// persistent worker pool the buffers warm up once and every later
    /// run on that thread is allocation-free from its first step.
    static RUN_SCRATCH: RefCell<RunScratch> = RefCell::new(RunScratch::new());
}

/// Recorded (decimated) data of one run.
#[derive(Debug, Clone)]
pub struct RunData {
    /// Scenario that produced the run.
    pub scenario: Scenario,
    /// Hours of the recorded rows.
    pub hours: Vec<f64>,
    /// Controller-level rows (`N x 53`).
    pub controller_view: Matrix,
    /// Process-level rows (`N x 53`).
    pub process_view: Matrix,
    /// Shutdown, if the plant tripped: `(reason, hour)`.
    pub shutdown: Option<(ShutdownReason, f64)>,
}

impl RunData {
    /// Whether the plant survived the full scheduled duration.
    pub fn survived(&self) -> bool {
        self.shutdown.is_none()
    }
}

/// Errors from running a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The fieldbus failed (cannot happen with the modelled attacks).
    Link(LinkError),
    /// An MSPC model fit or scoring step failed.
    Model(temspc_mspc::MspcError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Link(e) => write!(f, "fieldbus failure: {e}"),
            RunError::Model(e) => write!(f, "model failure: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<LinkError> for RunError {
    fn from(e: LinkError) -> Self {
        RunError::Link(e)
    }
}

impl From<temspc_mspc::MspcError> for RunError {
    fn from(e: temspc_mspc::MspcError) -> Self {
        RunError::Model(e)
    }
}

/// Drives one closed-loop scenario run.
///
/// ```no_run
/// use temspc::{ClosedLoopRunner, Scenario, ScenarioKind};
///
/// let scenario = Scenario::short(ScenarioKind::Normal, 1.0, 0.5, 7);
/// let data = ClosedLoopRunner::new(&scenario).run(50, |_s| {}).unwrap();
/// assert!(data.survived());
/// ```
#[derive(Debug)]
pub struct ClosedLoopRunner {
    scenario: Scenario,
    plant: TePlant,
    controller: DecentralizedController,
    link: FieldbusLink,
}

impl ClosedLoopRunner {
    /// Builds the closed loop for a scenario (plant noise and process
    /// randomness enabled, per the paper's randomized TE model).
    pub fn new(scenario: &Scenario) -> Self {
        let mut plant = TePlant::new(PlantConfig::default(), scenario.seed);
        plant.set_disturbances(scenario.disturbances());
        let link = FieldbusLink::new(MitmAdversary::new(scenario.attacks()));
        ClosedLoopRunner {
            scenario: scenario.clone(),
            plant,
            controller: DecentralizedController::new(),
            link,
        }
    }

    /// Builds the closed loop with a custom attack set, overriding the
    /// scenario's own attacks (for adversaries beyond the paper's four
    /// scenarios; the scenario still provides duration, onset, seed and
    /// disturbances).
    pub fn with_attacks(scenario: &Scenario, attacks: Vec<temspc_fieldbus::Attack>) -> Self {
        let mut plant = TePlant::new(PlantConfig::default(), scenario.seed);
        plant.set_disturbances(scenario.disturbances());
        let link = FieldbusLink::new(MitmAdversary::new(attacks));
        ClosedLoopRunner {
            scenario: scenario.clone(),
            plant,
            controller: DecentralizedController::new(),
            link,
        }
    }

    /// Builds the closed loop with a custom plant configuration
    /// (e.g. noise disabled for deterministic tests).
    pub fn with_plant_config(scenario: &Scenario, config: PlantConfig) -> Self {
        let mut plant = TePlant::new(config, scenario.seed);
        plant.set_disturbances(scenario.disturbances());
        let link = FieldbusLink::new(MitmAdversary::new(scenario.attacks()));
        ClosedLoopRunner {
            scenario: scenario.clone(),
            plant,
            controller: DecentralizedController::new(),
            link,
        }
    }

    /// Runs the scenario to completion (scheduled duration or shutdown).
    ///
    /// Every full-rate sample is passed to `observer`; every
    /// `record_every`-th sample is stored in the returned [`RunData`].
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Link`] on a fieldbus failure (not produced by
    /// the modelled attacks).
    pub fn run<F: FnMut(&StepSample)>(
        mut self,
        record_every: usize,
        observer: F,
    ) -> Result<RunData, RunError> {
        // Reuse this thread's scratch; fall back to a fresh one if the
        // observer re-entered `run` on the same thread.
        RUN_SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => self.run_impl(record_every, observer, &mut scratch),
            Err(_) => self.run_impl(record_every, observer, &mut RunScratch::new()),
        })
    }

    /// Runs the scenario like [`ClosedLoopRunner::run`], reusing the
    /// caller's [`RunScratch`] for every per-step buffer. Results are
    /// identical; only the allocation behaviour differs.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Link`] on a fieldbus failure.
    pub fn run_with<F: FnMut(&StepSample)>(
        mut self,
        record_every: usize,
        observer: F,
        scratch: &mut RunScratch,
    ) -> Result<RunData, RunError> {
        self.run_impl(record_every, observer, scratch)
    }

    /// Runs the scenario like [`ClosedLoopRunner::run`] while a passive
    /// capture tap records every frame crossing the fieldbus — both
    /// directions, both sides of the adversary. Returns the run data and
    /// the recorded wire tape (four [`CaptureRecord`]s per closed-loop
    /// step), from which [`crate::capture::ScenarioCapture`] can rebuild
    /// both monitoring views bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Link`] on a fieldbus failure.
    pub fn run_captured<F: FnMut(&StepSample)>(
        mut self,
        record_every: usize,
        observer: F,
    ) -> Result<(RunData, Vec<CaptureRecord>), RunError> {
        self.link.attach_tap();
        let data = RUN_SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => self.run_impl(record_every, observer, &mut scratch),
            Err(_) => self.run_impl(record_every, observer, &mut RunScratch::new()),
        })?;
        let records = self
            .link
            .take_tap()
            .map(|tap| tap.into_records())
            .unwrap_or_default();
        Ok((data, records))
    }

    fn run_impl<F: FnMut(&StepSample)>(
        &mut self,
        record_every: usize,
        mut observer: F,
        scratch: &mut RunScratch,
    ) -> Result<RunData, RunError> {
        let record_every = record_every.max(1);
        let steps = (self.scenario.duration_hours * SAMPLES_PER_HOUR as f64).round() as usize;
        // Every record_every-th step starting at 0 is recorded; sizing the
        // buffers up front avoids the geometric-growth reallocation series
        // push_row would otherwise trigger on long runs.
        let recorded_rows = steps.div_ceil(record_every);
        let mut hours = Vec::with_capacity(recorded_rows);
        let mut controller_rows = Matrix::with_capacity(recorded_rows, N_MONITORED);
        let mut process_rows = Matrix::with_capacity(recorded_rows, N_MONITORED);

        // Split the scratch so the per-step borrows stay disjoint. Every
        // buffer below is reused across steps (and, through the
        // thread-local scratch, across runs): the loop body performs no
        // heap allocation once the capacities are warm.
        let RunScratch {
            sample,
            xmeas,
            received_xmeas,
            delivered_xmv,
            link: link_scratch,
        } = scratch;

        for k in 0..steps {
            let hour = self.plant.hour();
            // 1. True sensor readings (process side of the uplink).
            self.plant.measurements_into(xmeas);
            // 2. Uplink through the (possibly hostile) fieldbus.
            self.link
                .uplink_into(hour, xmeas.as_slice(), received_xmeas, link_scratch)?;
            // 3. Control scan on what the controller received.
            let commanded_xmv = self.controller.step(received_xmeas);
            // 4. Downlink to the actuators.
            self.link
                .downlink_into(hour, &commanded_xmv, delivered_xmv, link_scratch)?;
            // 5. Plant advances (errors only after a shutdown, which we
            //    catch via the flag below).
            let _ = self.plant.step(delivered_xmv);

            sample.hour = hour;
            sample.controller_view.clear();
            sample.controller_view.extend_from_slice(received_xmeas);
            sample.controller_view.extend_from_slice(&commanded_xmv);
            sample.process_view.clear();
            sample.process_view.extend_from_slice(xmeas.as_slice());
            sample
                .process_view
                .extend_from_slice(&delivered_xmv[..N_XMV]);

            observer(sample);
            if k % record_every == 0 {
                hours.push(sample.hour);
                controller_rows.push_row(&sample.controller_view);
                process_rows.push_row(&sample.process_view);
            }
            if self.plant.is_shut_down() {
                break;
            }
        }
        Ok(RunData {
            scenario: self.scenario.clone(),
            hours,
            controller_view: controller_rows,
            process_view: process_rows,
            shutdown: self.plant.shutdown(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::{xmeas_index, xmv_index};
    use crate::scenario::ScenarioKind;

    fn quiet_plant() -> PlantConfig {
        PlantConfig {
            measurement_noise: false,
            process_randomness: false,
            ..PlantConfig::default()
        }
    }

    #[test]
    fn normal_run_views_are_identical() {
        let s = Scenario::short(ScenarioKind::Normal, 0.2, 0.1, 3);
        let data = ClosedLoopRunner::new(&s).run(10, |_| {}).unwrap();
        assert!(data.survived());
        assert_eq!(data.controller_view, data.process_view);
        assert_eq!(data.controller_view.ncols(), N_MONITORED);
        assert_eq!(data.hours.len(), data.controller_view.nrows());
    }

    #[test]
    fn xmv3_attack_splits_views() {
        let s = Scenario::short(ScenarioKind::IntegrityXmv3, 0.4, 0.1, 3);
        let data = ClosedLoopRunner::with_plant_config(&s, quiet_plant())
            .run(1, |_| {})
            .unwrap();
        let last = data.process_view.nrows() - 1;
        let xmv3 = xmv_index(3);
        // Process receives 0; controller believes it commands high.
        assert!(data.process_view.get(last, xmv3) < 1e-9);
        assert!(data.controller_view.get(last, xmv3) > 50.0);
        // Both views see the A-feed flow collapse.
        let x1 = xmeas_index(1);
        assert!(data.process_view.get(last, x1) < 0.5);
        assert!(data.controller_view.get(last, x1) < 0.5);
    }

    #[test]
    fn xmeas1_attack_splits_views_other_way() {
        let s = Scenario::short(ScenarioKind::IntegrityXmeas1, 0.4, 0.1, 3);
        let data = ClosedLoopRunner::with_plant_config(&s, quiet_plant())
            .run(1, |_| {})
            .unwrap();
        let last = data.process_view.nrows() - 1;
        let x1 = xmeas_index(1);
        // Controller sees zero; the real flow is *above* nominal because
        // the flow PI winds the valve open.
        assert_eq!(data.controller_view.get(last, x1), 0.0);
        assert!(
            data.process_view.get(last, x1) > 4.5,
            "real flow {}",
            data.process_view.get(last, x1)
        );
        let xmv3 = xmv_index(3);
        assert!(data.process_view.get(last, xmv3) > 90.0);
    }

    #[test]
    fn observer_sees_full_rate() {
        let s = Scenario::short(ScenarioKind::Normal, 0.1, 0.05, 1);
        let mut count = 0;
        let data = ClosedLoopRunner::new(&s).run(50, |_| count += 1).unwrap();
        assert_eq!(count, 200); // 0.1 h * 2000 samples/h
        assert_eq!(data.hours.len(), 4); // every 50th
    }

    #[test]
    fn idv6_run_records_shutdown() {
        // Shortened IDV(6): onset almost immediately; the plant must trip
        // within 12 h of onset.
        let s = Scenario::short(ScenarioKind::Idv6, 14.0, 0.5, 5);
        let data = ClosedLoopRunner::new(&s).run(100, |_| {}).unwrap();
        assert!(!data.survived(), "IDV(6) must shut the plant down");
        let (reason, hour) = data.shutdown.unwrap();
        assert_eq!(reason, ShutdownReason::StripperLevelLow);
        assert!(hour > 0.5 && hour < 14.0);
    }
}
