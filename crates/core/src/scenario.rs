//! Scenario definitions, including the paper's four evaluation scenarios.

use serde::{Deserialize, Serialize};
use temspc_fieldbus::{Attack, AttackKind, AttackTarget};
use temspc_tesim::{Disturbance, DisturbanceSet};

/// The four anomalous situations evaluated in §V of the paper, plus
/// normal operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Attack-free, disturbance-free normal operation (calibration).
    Normal,
    /// (a) Process disturbance IDV(6): loss of A feed.
    Idv6,
    /// (b) Integrity attack closing valve XMV(3) (actuator side).
    IntegrityXmv3,
    /// (c) Integrity attack forcing sensor XMEAS(1) to zero
    /// (controller side).
    IntegrityXmeas1,
    /// (d) Denial of service on XMV(3): the actuator holds the last
    /// pre-attack command.
    DosXmv3,
}

impl ScenarioKind {
    /// Short identifier used in file names and tables.
    pub fn id(self) -> &'static str {
        match self {
            ScenarioKind::Normal => "normal",
            ScenarioKind::Idv6 => "idv6",
            ScenarioKind::IntegrityXmv3 => "integrity_xmv3",
            ScenarioKind::IntegrityXmeas1 => "integrity_xmeas1",
            ScenarioKind::DosXmv3 => "dos_xmv3",
        }
    }

    /// The paper's description of the scenario.
    pub fn description(self) -> &'static str {
        match self {
            ScenarioKind::Normal => "normal operation",
            ScenarioKind::Idv6 => "disturbance IDV(6): A feed loss",
            ScenarioKind::IntegrityXmv3 => "integrity attack on XMV(3): close A feed valve",
            ScenarioKind::IntegrityXmeas1 => "integrity attack on XMEAS(1): forge A flow to zero",
            ScenarioKind::DosXmv3 => "DoS on XMV(3): actuator holds last value",
        }
    }

    /// Whether the anomaly is human-induced (an attack) rather than a
    /// natural disturbance — the ground truth the paper's technique tries
    /// to recover.
    pub fn is_attack(self) -> bool {
        matches!(
            self,
            ScenarioKind::IntegrityXmv3 | ScenarioKind::IntegrityXmeas1 | ScenarioKind::DosXmv3
        )
    }

    /// All four anomalous scenarios, in the paper's order.
    pub fn anomalous() -> [ScenarioKind; 4] {
        [
            ScenarioKind::Idv6,
            ScenarioKind::IntegrityXmv3,
            ScenarioKind::IntegrityXmeas1,
            ScenarioKind::DosXmv3,
        ]
    }
}

/// A fully specified simulation scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario kind (drives disturbances/attacks).
    pub kind: ScenarioKind,
    /// Simulation length in hours (the paper: 72, or until shutdown).
    pub duration_hours: f64,
    /// Hour at which the anomaly starts (the paper: 10).
    pub onset_hour: f64,
    /// RNG seed for this run.
    pub seed: u64,
}

impl Scenario {
    /// The paper's configuration: 72 h duration, anomaly onset at hour 10.
    pub fn paper(kind: ScenarioKind, seed: u64) -> Self {
        Scenario {
            kind,
            duration_hours: 72.0,
            onset_hour: 10.0,
            seed,
        }
    }

    /// A shortened variant for tests and benches: `duration` hours with
    /// onset at `onset`.
    pub fn short(kind: ScenarioKind, duration: f64, onset: f64, seed: u64) -> Self {
        Scenario {
            kind,
            duration_hours: duration,
            onset_hour: onset,
            seed,
        }
    }

    /// The process disturbances this scenario schedules.
    pub fn disturbances(&self) -> DisturbanceSet {
        let mut set = DisturbanceSet::new();
        if self.kind == ScenarioKind::Idv6 {
            set.schedule(Disturbance::AFeedLoss, self.onset_hour);
        }
        set
    }

    /// The fieldbus attacks this scenario mounts.
    pub fn attacks(&self) -> Vec<Attack> {
        let window = self.onset_hour..f64::INFINITY;
        match self.kind {
            ScenarioKind::Normal | ScenarioKind::Idv6 => Vec::new(),
            ScenarioKind::IntegrityXmv3 => vec![Attack::new(
                AttackTarget::Actuator(3),
                AttackKind::IntegrityConstant(0.0),
                window,
            )],
            ScenarioKind::IntegrityXmeas1 => vec![Attack::new(
                AttackTarget::Sensor(1),
                AttackKind::IntegrityConstant(0.0),
                window,
            )],
            ScenarioKind::DosXmv3 => vec![Attack::new(
                AttackTarget::Actuator(3),
                AttackKind::DenialOfService,
                window,
            )],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenarios_match_section_v() {
        let s = Scenario::paper(ScenarioKind::Idv6, 1);
        assert_eq!(s.duration_hours, 72.0);
        assert_eq!(s.onset_hour, 10.0);
        assert!(!s.disturbances().is_empty());
        assert!(s.attacks().is_empty());

        let b = Scenario::paper(ScenarioKind::IntegrityXmv3, 1);
        assert!(b.disturbances().is_empty());
        let attacks = b.attacks();
        assert_eq!(attacks.len(), 1);
        assert_eq!(attacks[0].target, AttackTarget::Actuator(3));
        assert_eq!(attacks[0].kind, AttackKind::IntegrityConstant(0.0));
        assert_eq!(attacks[0].window.start, 10.0);

        let c = Scenario::paper(ScenarioKind::IntegrityXmeas1, 1);
        assert_eq!(c.attacks()[0].target, AttackTarget::Sensor(1));

        let d = Scenario::paper(ScenarioKind::DosXmv3, 1);
        assert_eq!(d.attacks()[0].kind, AttackKind::DenialOfService);
    }

    #[test]
    fn ground_truth_labels() {
        assert!(!ScenarioKind::Normal.is_attack());
        assert!(!ScenarioKind::Idv6.is_attack());
        assert!(ScenarioKind::IntegrityXmv3.is_attack());
        assert!(ScenarioKind::IntegrityXmeas1.is_attack());
        assert!(ScenarioKind::DosXmv3.is_attack());
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<&str> = ScenarioKind::anomalous().iter().map(|k| k.id()).collect();
        ids.push(ScenarioKind::Normal.id());
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }
}
