//! The Krotofil attack model: integrity attacks and DoS on sensor and
//! actuator channels.
//!
//! Following Krotofil et al. (ASIA CCS'15), an attacked variable is
//!
//! ```text
//! Y'(t) = Y(t)   for t ∉ Ta        (attack interval)
//! Y'(t) = Ya(t)  for t ∈ Ta
//! ```
//!
//! where `Ya` is the attacker's injected value. For a DoS starting at
//! `ta`, `Ya(t) = Y(ta - 1)` — the receiver keeps consuming the last value
//! it saw before communication stopped.

use std::ops::Range;

use serde::{Deserialize, Serialize};

/// What the attack targets: a sensor (XMEAS) or an actuator (XMV) channel.
///
/// Numbers are 1-based, matching the paper (XMEAS(1)..(41),
/// XMV(1)..(12)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackTarget {
    /// Sensor channel: the forged value reaches the *controller*.
    Sensor(usize),
    /// Actuator channel: the forged value reaches the *process*.
    Actuator(usize),
}

/// The attack primitive applied inside the attack window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackKind {
    /// Integrity attack: replace the value with a constant
    /// (e.g. "close the valve" = 0.0).
    IntegrityConstant(f64),
    /// Integrity attack: add a constant bias.
    IntegrityBias(f64),
    /// Integrity attack: multiply by a constant factor.
    IntegrityScale(f64),
    /// Denial of service: the receiver keeps seeing the last value from
    /// before the attack started.
    DenialOfService,
    /// Replay: repeat the value observed exactly `period_hours` earlier
    /// (the classic Stuxnet-style recording trick). Until one full period
    /// has been recorded, behaves like [`AttackKind::DenialOfService`].
    Replay {
        /// Length of the recorded loop, hours.
        period_hours: f64,
    },
}

/// A single attack: target, primitive and time window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attack {
    /// Attacked channel.
    pub target: AttackTarget,
    /// Attack primitive.
    pub kind: AttackKind,
    /// Active interval `[start, end)` in simulation hours.
    pub window: Range<f64>,
}

impl Attack {
    /// Creates an attack on `target` with primitive `kind`, active during
    /// `window` (use `start..f64::INFINITY` for open-ended attacks).
    pub fn new(target: AttackTarget, kind: AttackKind, window: Range<f64>) -> Self {
        Attack {
            target,
            kind,
            window,
        }
    }

    /// Whether the attack is active at `hour`.
    pub fn is_active(&self, hour: f64) -> bool {
        self.window.contains(&hour)
    }
}

/// Per-attack runtime state (DoS hold value, replay recording).
#[derive(Debug, Clone)]
struct AttackState {
    attack: Attack,
    /// Last clean value seen before the window opened (DoS hold).
    held: Option<f64>,
    /// Recording for replay: (hour, value) samples from before the attack.
    recording: Vec<(f64, f64)>,
}

impl AttackState {
    fn apply(&mut self, hour: f64, clean: f64) -> f64 {
        if !self.attack.is_active(hour) {
            // Outside the window: track the value so a future DoS can hold
            // the last pre-attack value, and keep a bounded replay tape.
            self.held = Some(clean);
            if let AttackKind::Replay { period_hours } = self.attack.kind {
                self.recording.push((hour, clean));
                let cutoff = hour - period_hours;
                self.recording.retain(|&(h, _)| h >= cutoff);
            }
            return clean;
        }
        match self.attack.kind {
            AttackKind::IntegrityConstant(v) => v,
            AttackKind::IntegrityBias(b) => clean + b,
            AttackKind::IntegrityScale(s) => clean * s,
            AttackKind::DenialOfService => self.held.unwrap_or(clean),
            AttackKind::Replay { period_hours } => {
                let target_hour = hour - period_hours;
                // total_cmp, not partial_cmp().unwrap(): a NaN distance
                // (NaN timestamp on the tape, or a non-finite period)
                // must degrade to an arbitrary-but-deterministic pick,
                // never a panic in the middle of a run.
                self.recording
                    .iter()
                    .min_by(|a, b| {
                        (a.0 - target_hour)
                            .abs()
                            .total_cmp(&(b.0 - target_hour).abs())
                    })
                    .map(|&(_, v)| v)
                    .or(self.held)
                    .unwrap_or(clean)
            }
        }
    }
}

/// A man-in-the-middle adversary holding a set of attacks.
///
/// The adversary sits on the fieldbus and rewrites values in flight:
/// [`MitmAdversary::tamper_sensors`] on the uplink (XMEAS toward the
/// controller) and [`MitmAdversary::tamper_actuators`] on the downlink
/// (XMV toward the process).
#[derive(Debug, Clone)]
pub struct MitmAdversary {
    states: Vec<AttackState>,
}

impl MitmAdversary {
    /// Creates an adversary running the given attacks.
    pub fn new(attacks: Vec<Attack>) -> Self {
        MitmAdversary {
            states: attacks
                .into_iter()
                .map(|attack| AttackState {
                    attack,
                    held: None,
                    recording: Vec::new(),
                })
                .collect(),
        }
    }

    /// An adversary that does nothing (attack-free runs).
    pub fn passive() -> Self {
        MitmAdversary::new(Vec::new())
    }

    /// Whether any attack is active at `hour`.
    pub fn is_attacking(&self, hour: f64) -> bool {
        self.states.iter().any(|s| s.attack.is_active(hour))
    }

    /// The configured attacks.
    pub fn attacks(&self) -> impl Iterator<Item = &Attack> {
        self.states.iter().map(|s| &s.attack)
    }

    /// Rewrites sensor values in flight. `values` are the XMEAS the plant
    /// sent; after the call they are what the controller receives.
    pub fn tamper_sensors(&mut self, hour: f64, values: &mut [f64]) {
        for state in &mut self.states {
            if let AttackTarget::Sensor(n) = state.attack.target {
                if n >= 1 && n <= values.len() {
                    values[n - 1] = state.apply(hour, values[n - 1]);
                }
            }
        }
    }

    /// Rewrites actuator commands in flight. `values` are the XMV the
    /// controller sent; after the call they are what the actuators
    /// receive.
    pub fn tamper_actuators(&mut self, hour: f64, values: &mut [f64]) {
        for state in &mut self.states {
            if let AttackTarget::Actuator(n) = state.attack.target {
                if n >= 1 && n <= values.len() {
                    values[n - 1] = state.apply(hour, values[n - 1]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensor_values() -> Vec<f64> {
        (1..=41).map(|i| i as f64).collect()
    }

    #[test]
    fn integrity_constant_replaces_only_in_window() {
        let mut adv = MitmAdversary::new(vec![Attack::new(
            AttackTarget::Sensor(1),
            AttackKind::IntegrityConstant(0.0),
            10.0..20.0,
        )]);
        let mut v = sensor_values();
        adv.tamper_sensors(5.0, &mut v);
        assert_eq!(v[0], 1.0);
        adv.tamper_sensors(15.0, &mut v);
        assert_eq!(v[0], 0.0);
        let mut v2 = sensor_values();
        adv.tamper_sensors(25.0, &mut v2);
        assert_eq!(v2[0], 1.0);
    }

    #[test]
    fn bias_and_scale() {
        let mut adv = MitmAdversary::new(vec![
            Attack::new(
                AttackTarget::Sensor(2),
                AttackKind::IntegrityBias(10.0),
                0.0..f64::INFINITY,
            ),
            Attack::new(
                AttackTarget::Sensor(3),
                AttackKind::IntegrityScale(0.5),
                0.0..f64::INFINITY,
            ),
        ]);
        let mut v = sensor_values();
        adv.tamper_sensors(1.0, &mut v);
        assert_eq!(v[1], 12.0);
        assert_eq!(v[2], 1.5);
    }

    #[test]
    fn dos_holds_last_pre_attack_value() {
        let mut adv = MitmAdversary::new(vec![Attack::new(
            AttackTarget::Actuator(3),
            AttackKind::DenialOfService,
            10.0..f64::INFINITY,
        )]);
        let mut v = vec![50.0; 12];
        v[2] = 44.0;
        adv.tamper_actuators(9.9995, &mut v); // last clean sample
        assert_eq!(v[2], 44.0);
        // Controller keeps changing its command, but the actuator keeps
        // receiving 44.0.
        let mut v2 = vec![50.0; 12];
        v2[2] = 99.0;
        adv.tamper_actuators(10.0, &mut v2);
        assert_eq!(v2[2], 44.0);
        let mut v3 = vec![50.0; 12];
        v3[2] = 0.0;
        adv.tamper_actuators(30.0, &mut v3);
        assert_eq!(v3[2], 44.0);
    }

    #[test]
    fn dos_with_no_history_passes_current_value() {
        let mut adv = MitmAdversary::new(vec![Attack::new(
            AttackTarget::Sensor(1),
            AttackKind::DenialOfService,
            0.0..f64::INFINITY,
        )]);
        let mut v = sensor_values();
        adv.tamper_sensors(0.0, &mut v);
        assert_eq!(v[0], 1.0);
    }

    #[test]
    fn replay_repeats_recorded_values() {
        let mut adv = MitmAdversary::new(vec![Attack::new(
            AttackTarget::Sensor(1),
            AttackKind::Replay { period_hours: 1.0 },
            10.0..f64::INFINITY,
        )]);
        // Record a ramp before the attack.
        for k in 0..2000 {
            let hour = 9.0 + k as f64 * 0.0005;
            let mut v = vec![hour; 41];
            adv.tamper_sensors(hour, &mut v);
        }
        // At hour 10.3 the replay should show ~9.3.
        let mut v = vec![123.0; 41];
        adv.tamper_sensors(10.3, &mut v);
        assert!((v[0] - 9.3).abs() < 0.01, "got {}", v[0]);
    }

    #[test]
    fn replay_with_nan_timestamp_never_panics() {
        // A NaN hour on the tape (e.g. a corrupt capture replayed through
        // the adversary) must not panic the replay selection.
        let mut adv = MitmAdversary::new(vec![Attack::new(
            AttackTarget::Sensor(1),
            AttackKind::Replay { period_hours: 1.0 },
            10.0..f64::INFINITY,
        )]);
        let mut v = vec![5.0; 41];
        adv.tamper_sensors(9.0, &mut v); // recorded sample
        let mut nan_v = vec![7.0; 41];
        adv.tamper_sensors(f64::NAN, &mut nan_v); // NaN timestamp hits the tape
        let mut attacked = vec![123.0; 41];
        adv.tamper_sensors(10.5, &mut attacked);
        // Whatever the tape yields, it is one of the values the adversary
        // observed — never an invention, never a panic.
        assert!([5.0, 7.0].contains(&attacked[0]), "got {}", attacked[0]);
    }

    #[test]
    fn replay_with_nan_distances_never_panics() {
        // Infinite recorded hours + an infinite period make every
        // candidate's distance NaN; partial_cmp().unwrap() panicked here.
        let mut adv = MitmAdversary::new(vec![Attack::new(
            AttackTarget::Sensor(1),
            AttackKind::Replay {
                period_hours: f64::NEG_INFINITY,
            },
            10.0..20.0,
        )]);
        let mut a = vec![1.0; 41];
        adv.tamper_sensors(f64::INFINITY, &mut a);
        let mut b = vec![2.0; 41];
        adv.tamper_sensors(f64::INFINITY, &mut b);
        let mut attacked = vec![123.0; 41];
        adv.tamper_sensors(15.0, &mut attacked);
        assert!([1.0, 2.0].contains(&attacked[0]), "got {}", attacked[0]);
    }

    #[test]
    fn actuator_attack_does_not_touch_sensors() {
        let mut adv = MitmAdversary::new(vec![Attack::new(
            AttackTarget::Actuator(1),
            AttackKind::IntegrityConstant(0.0),
            0.0..f64::INFINITY,
        )]);
        let mut v = sensor_values();
        adv.tamper_sensors(1.0, &mut v);
        assert_eq!(v, sensor_values());
    }

    #[test]
    fn out_of_range_target_is_ignored() {
        let mut adv = MitmAdversary::new(vec![Attack::new(
            AttackTarget::Sensor(99),
            AttackKind::IntegrityConstant(0.0),
            0.0..f64::INFINITY,
        )]);
        let mut v = sensor_values();
        adv.tamper_sensors(1.0, &mut v);
        assert_eq!(v, sensor_values());
    }

    #[test]
    fn passive_adversary_never_attacks() {
        let adv = MitmAdversary::passive();
        assert!(!adv.is_attacking(0.0));
        assert!(!adv.is_attacking(1e9));
    }
}
