//! The capture/replay boundary: record every wire frame crossing the
//! fieldbus once, re-drive the recorded traffic through the monitors any
//! number of times — no co-simulated plant loop required.
//!
//! A [`CaptureTap`] sits at both endpoints of both directions of a
//! [`crate::FieldbusLink`] and stores each frame as raw wire bytes plus
//! its tap point and arrival hour. A [`ReplayLink`] walks the recorded
//! tape, reassembles the four frames of each closed-loop step and hands
//! the decoded views back — treating every byte as untrusted: frames are
//! decoded with the strict [`Frame::decode`], tap points must arrive in
//! step order, and the four frames of a step must agree on hour and
//! sequence number. Corrupt tapes fail loudly with a [`ReplayError`]
//! instead of yielding invented data.

use serde::{Deserialize, Serialize};

use crate::frame::{Frame, FrameError, FrameKind};

/// Where on the link a frame was captured.
///
/// The adversary sits between `Sent` and `Delivered` in each direction,
/// so the four points together reconstruct both monitoring views: the
/// *process level* is `UplinkSent` (true XMEAS) + `DownlinkDelivered`
/// (XMV the actuators received); the *controller level* is
/// `UplinkDelivered` (XMEAS the controller received) + `DownlinkSent`
/// (XMV it commanded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TapPoint {
    /// Sensor report as the plant sent it (pre-adversary).
    UplinkSent,
    /// Sensor report as delivered to the controller (post-adversary).
    UplinkDelivered,
    /// Actuator command as the controller sent it (pre-adversary).
    DownlinkSent,
    /// Actuator command as delivered to the actuators (post-adversary).
    DownlinkDelivered,
}

impl TapPoint {
    /// The four tap points in the order one closed-loop step produces
    /// them.
    pub const STEP_ORDER: [TapPoint; 4] = [
        TapPoint::UplinkSent,
        TapPoint::UplinkDelivered,
        TapPoint::DownlinkSent,
        TapPoint::DownlinkDelivered,
    ];

    /// The frame kind a capture at this point must carry.
    pub fn expected_kind(self) -> FrameKind {
        match self {
            TapPoint::UplinkSent | TapPoint::UplinkDelivered => FrameKind::SensorReport,
            TapPoint::DownlinkSent | TapPoint::DownlinkDelivered => FrameKind::ActuatorCommand,
        }
    }
}

impl std::fmt::Display for TapPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TapPoint::UplinkSent => "uplink/sent",
            TapPoint::UplinkDelivered => "uplink/delivered",
            TapPoint::DownlinkSent => "downlink/sent",
            TapPoint::DownlinkDelivered => "downlink/delivered",
        };
        f.write_str(s)
    }
}

/// One captured frame: raw wire bytes, where they were seen, and when.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaptureRecord {
    /// Tap point the frame was observed at.
    pub point: TapPoint,
    /// Arrival hour (simulation time).
    pub hour: f64,
    /// The frame exactly as it crossed the wire.
    pub wire: Vec<u8>,
}

/// A passive tap buffering every frame it sees, in arrival order.
#[derive(Debug, Clone, Default)]
pub struct CaptureTap {
    records: Vec<CaptureRecord>,
}

impl CaptureTap {
    /// An empty tap.
    pub fn new() -> Self {
        CaptureTap::default()
    }

    /// Records one frame.
    pub fn record(&mut self, point: TapPoint, hour: f64, wire: &[u8]) {
        self.records.push(CaptureRecord {
            point,
            hour,
            wire: wire.to_vec(),
        });
    }

    /// The frames captured so far.
    pub fn records(&self) -> &[CaptureRecord] {
        &self.records
    }

    /// Consumes the tap, yielding the recorded tape.
    pub fn into_records(self) -> Vec<CaptureRecord> {
        self.records
    }

    /// Number of captured frames.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was captured yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Errors raised while replaying a recorded tape.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// A recorded frame failed the strict wire decode.
    Frame {
        /// Index of the offending record in the tape.
        index: usize,
        /// The decode failure.
        error: FrameError,
    },
    /// A record arrived at an unexpected tap point (torn or reordered
    /// tape).
    OutOfOrder {
        /// Index of the offending record.
        index: usize,
        /// Tap point the step grammar expected.
        expected: TapPoint,
        /// Tap point actually recorded.
        found: TapPoint,
    },
    /// A frame's kind does not match its tap point's direction.
    KindMismatch {
        /// Index of the offending record.
        index: usize,
        /// Tap point of the record.
        point: TapPoint,
    },
    /// The four frames of one step disagree on hour, sequence number or
    /// payload width.
    InconsistentStep {
        /// Index of the first record of the step.
        index: usize,
        /// What disagreed.
        detail: &'static str,
    },
    /// The tape ends in the middle of a step.
    TruncatedTape {
        /// Records left over after the last complete step.
        leftover: usize,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Frame { index, error } => {
                write!(f, "record {index}: frame decode failed: {error}")
            }
            ReplayError::OutOfOrder {
                index,
                expected,
                found,
            } => write!(f, "record {index}: expected {expected}, found {found}"),
            ReplayError::KindMismatch { index, point } => {
                write!(f, "record {index}: frame kind does not match {point}")
            }
            ReplayError::InconsistentStep { index, detail } => {
                write!(f, "step at record {index}: {detail}")
            }
            ReplayError::TruncatedTape { leftover } => {
                write!(f, "tape ends mid-step ({leftover} records left over)")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// One closed-loop step reassembled from four captured frames.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayStep {
    /// Simulation hour of the step.
    pub hour: f64,
    /// True XMEAS the plant sent (process-level sensors).
    pub true_xmeas: Vec<f64>,
    /// XMEAS the controller received (controller-level sensors).
    pub received_xmeas: Vec<f64>,
    /// XMV the controller commanded (controller-level actuators).
    pub commanded_xmv: Vec<f64>,
    /// XMV the actuators received (process-level actuators).
    pub delivered_xmv: Vec<f64>,
    /// Wire length of the uplink frame the process end saw, bytes.
    pub uplink_wire_bytes: usize,
    /// Wire length of the downlink frame the process end saw, bytes.
    pub downlink_wire_bytes: usize,
}

/// Re-drives a recorded tape as a sequence of [`ReplayStep`]s.
///
/// The iterator yields one `Result` per reassembled step; after the
/// first error it fuses (returns `None` forever), since a torn tape has
/// no trustworthy continuation.
#[derive(Debug, Clone)]
pub struct ReplayLink<'a> {
    records: &'a [CaptureRecord],
    pos: usize,
    failed: bool,
}

impl<'a> ReplayLink<'a> {
    /// A replay over a recorded tape.
    pub fn new(records: &'a [CaptureRecord]) -> Self {
        ReplayLink {
            records,
            pos: 0,
            failed: false,
        }
    }

    /// Number of complete steps the tape should hold.
    pub fn expected_steps(&self) -> usize {
        self.records.len() / TapPoint::STEP_ORDER.len()
    }

    fn next_step(&mut self) -> Result<ReplayStep, ReplayError> {
        let base = self.pos;
        let left = self.records.len() - base;
        if left < TapPoint::STEP_ORDER.len() {
            return Err(ReplayError::TruncatedTape { leftover: left });
        }
        let mut frames = Vec::with_capacity(TapPoint::STEP_ORDER.len());
        for (offset, &expected) in TapPoint::STEP_ORDER.iter().enumerate() {
            let index = base + offset;
            let record = &self.records[index];
            if record.point != expected {
                return Err(ReplayError::OutOfOrder {
                    index,
                    expected,
                    found: record.point,
                });
            }
            let frame =
                Frame::decode(&record.wire).map_err(|error| ReplayError::Frame { index, error })?;
            if frame.kind != expected.expected_kind() {
                return Err(ReplayError::KindMismatch {
                    index,
                    point: expected,
                });
            }
            frames.push(frame);
        }
        let [up_sent, up_delivered, down_sent, down_delivered]: [Frame; 4] =
            frames.try_into().expect("exactly four frames per step");
        let hour = self.records[base].hour;
        if self.records[base..base + 4].iter().any(|r| r.hour != hour)
            || [&up_sent, &up_delivered, &down_sent, &down_delivered]
                .iter()
                .any(|f| f.hour != hour)
        {
            return Err(ReplayError::InconsistentStep {
                index: base,
                detail: "frames of one step disagree on the hour",
            });
        }
        if up_sent.seq != up_delivered.seq || down_sent.seq != down_delivered.seq {
            return Err(ReplayError::InconsistentStep {
                index: base,
                detail: "sent and delivered sequence numbers disagree",
            });
        }
        if up_sent.values.len() != up_delivered.values.len()
            || down_sent.values.len() != down_delivered.values.len()
        {
            return Err(ReplayError::InconsistentStep {
                index: base,
                detail: "sent and delivered payload widths disagree",
            });
        }
        let uplink_wire_bytes = self.records[base].wire.len();
        let downlink_wire_bytes = self.records[base + 3].wire.len();
        self.pos = base + 4;
        Ok(ReplayStep {
            hour,
            true_xmeas: up_sent.values,
            received_xmeas: up_delivered.values,
            commanded_xmv: down_sent.values,
            delivered_xmv: down_delivered.values,
            uplink_wire_bytes,
            downlink_wire_bytes,
        })
    }
}

impl Iterator for ReplayLink<'_> {
    type Item = Result<ReplayStep, ReplayError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.pos == self.records.len() {
            return None;
        }
        let step = self.next_step();
        if step.is_err() {
            self.failed = true;
        }
        Some(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{Attack, AttackKind, AttackTarget, MitmAdversary};
    use crate::link::FieldbusLink;

    /// Drives a tapped link for `steps` steps and returns the tape.
    fn tape(steps: usize, adversary: MitmAdversary) -> Vec<CaptureRecord> {
        let mut link = FieldbusLink::new(adversary);
        link.attach_tap();
        for k in 0..steps {
            let hour = k as f64 * 0.0005;
            let xmeas: Vec<f64> = (0..41).map(|i| i as f64 + hour).collect();
            link.uplink(hour, &xmeas).unwrap();
            let xmv = vec![50.0 + hour; 12];
            link.downlink(hour, &xmv).unwrap();
        }
        link.take_tap().expect("tap attached").into_records()
    }

    #[test]
    fn passive_tape_replays_identically() {
        let records = tape(5, MitmAdversary::passive());
        assert_eq!(records.len(), 20); // 4 frames per step
        let steps: Vec<ReplayStep> = ReplayLink::new(&records).map(|s| s.unwrap()).collect();
        assert_eq!(steps.len(), 5);
        for (k, step) in steps.iter().enumerate() {
            assert_eq!(step.hour, k as f64 * 0.0005);
            assert_eq!(step.true_xmeas, step.received_xmeas);
            assert_eq!(step.commanded_xmv, step.delivered_xmv);
            assert_eq!(step.true_xmeas.len(), 41);
            assert_eq!(step.delivered_xmv.len(), 12);
        }
    }

    #[test]
    fn attacked_tape_preserves_both_sides() {
        let records = tape(
            4,
            MitmAdversary::new(vec![Attack::new(
                AttackTarget::Sensor(1),
                AttackKind::IntegrityConstant(0.0),
                0.0..f64::INFINITY,
            )]),
        );
        for step in ReplayLink::new(&records) {
            let step = step.unwrap();
            assert!(step.true_xmeas[0] > 0.0 || step.hour == 0.0);
            assert_eq!(step.received_xmeas[0], 0.0); // forged view preserved
        }
    }

    #[test]
    fn corrupt_wire_bytes_fail_loudly() {
        let mut records = tape(3, MitmAdversary::passive());
        records[5].wire.push(0xAB); // trailing byte in one frame
        let results: Vec<_> = ReplayLink::new(&records).collect();
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(ReplayError::Frame {
                index: 5,
                error: FrameError::LengthMismatch { .. },
            })
        ));
        // Fused after the first error.
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn reordered_tape_is_rejected() {
        let mut records = tape(2, MitmAdversary::passive());
        records.swap(0, 2);
        assert!(matches!(
            ReplayLink::new(&records).next(),
            Some(Err(ReplayError::OutOfOrder { index: 0, .. }))
        ));
    }

    #[test]
    fn truncated_tape_is_rejected() {
        let mut records = tape(2, MitmAdversary::passive());
        records.truncate(6);
        let results: Vec<_> = ReplayLink::new(&records).collect();
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(ReplayError::TruncatedTape { leftover: 2 }));
    }

    #[test]
    fn inconsistent_hours_are_rejected() {
        let mut records = tape(1, MitmAdversary::passive());
        records[3].hour += 1.0;
        assert!(matches!(
            ReplayLink::new(&records).next(),
            Some(Err(ReplayError::InconsistentStep { index: 0, .. }))
        ));
    }

    #[test]
    fn empty_tape_yields_no_steps() {
        assert_eq!(ReplayLink::new(&[]).count(), 0);
    }
}
