//! A minimal unauthenticated wire format for sensor/actuator traffic.
//!
//! The format is intentionally in the spirit of legacy industrial
//! protocols: a fixed header, a sequence number, a timestamp and raw IEEE
//! 754 payload values — **no authentication, no integrity protection** —
//! which is precisely what makes the man-in-the-middle attacks of the DSN
//! 2016 paper possible.
//!
//! Layout (big endian):
//!
//! ```text
//! [0..2]   magic 0x7E55
//! [2]      kind: 0x01 sensor report, 0x02 actuator command
//! [3]      reserved (0)
//! [4..8]   sequence number, u32
//! [8..16]  timestamp (simulation hour), f64
//! [16..18] value count, u16
//! [18..]   values, f64 each
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u16 = 0x7E55;
const HEADER_LEN: usize = 18;

/// Largest payload the 16-bit count field can express.
pub const MAX_VALUES: usize = u16::MAX as usize;

/// Frame direction/type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Sensor report (process → controller, XMEAS values).
    SensorReport,
    /// Actuator command (controller → process, XMV values).
    ActuatorCommand,
}

impl FrameKind {
    fn code(self) -> u8 {
        match self {
            FrameKind::SensorReport => 0x01,
            FrameKind::ActuatorCommand => 0x02,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            0x01 => Some(FrameKind::SensorReport),
            0x02 => Some(FrameKind::ActuatorCommand),
            _ => None,
        }
    }
}

/// Encoding and decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Buffer shorter than the fixed header.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Unknown frame-kind code.
    UnknownKind(u8),
    /// The reserved header byte was not zero.
    BadReserved(u8),
    /// The payload does not hold exactly the advertised number of values
    /// (truncated payload, trailing bytes or a non-multiple-of-8
    /// remainder).
    LengthMismatch {
        /// Values advertised in the header.
        advertised: usize,
        /// Payload bytes actually present after the header.
        payload_bytes: usize,
    },
    /// The payload holds more values than the 16-bit count field can
    /// express; encoding would silently wrap the count.
    TooManyValues {
        /// Number of values in the frame.
        count: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame shorter than header"),
            FrameError::BadMagic => write!(f, "bad magic bytes"),
            FrameError::UnknownKind(c) => write!(f, "unknown frame kind 0x{c:02x}"),
            FrameError::BadReserved(b) => write!(f, "reserved header byte is 0x{b:02x}, not 0"),
            FrameError::LengthMismatch {
                advertised,
                payload_bytes,
            } => write!(
                f,
                "frame advertises {advertised} values ({} bytes) but the payload holds \
                 {payload_bytes} bytes",
                advertised * 8
            ),
            FrameError::TooManyValues { count } => write!(
                f,
                "frame holds {count} values but the count field caps at {MAX_VALUES}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// A decoded fieldbus frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Frame type.
    pub kind: FrameKind,
    /// Monotonic sequence number.
    pub seq: u32,
    /// Timestamp, simulation hours.
    pub hour: f64,
    /// Payload values (XMEAS or XMV, depending on `kind`).
    pub values: Vec<f64>,
}

impl Frame {
    /// Builds a frame.
    pub fn new(kind: FrameKind, seq: u32, hour: f64, values: Vec<f64>) -> Self {
        Frame {
            kind,
            seq,
            hour,
            values,
        }
    }

    /// Serializes the frame to bytes.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::TooManyValues`] when the payload exceeds
    /// [`MAX_VALUES`] — the 16-bit count field would silently wrap and the
    /// frame would decode with the wrong value count.
    pub fn encode(&self) -> Result<Bytes, FrameError> {
        let mut buf = BytesMut::with_capacity(HEADER_LEN + 8 * self.values.len());
        self.encode_into(&mut buf)?;
        Ok(buf.freeze())
    }

    /// Serializes the frame into `buf`, clearing it first. The buffer's
    /// capacity is reused across calls, so a steady-state encode performs
    /// no heap allocation — this is the closed-loop hot path
    /// ([`Frame::encode`] wraps it for one-shot callers).
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::TooManyValues`] when the payload exceeds
    /// [`MAX_VALUES`]; `buf` is left empty.
    pub fn encode_into(&self, buf: &mut BytesMut) -> Result<(), FrameError> {
        buf.clear();
        if self.values.len() > MAX_VALUES {
            return Err(FrameError::TooManyValues {
                count: self.values.len(),
            });
        }
        buf.reserve(HEADER_LEN + 8 * self.values.len());
        buf.put_u16(MAGIC);
        buf.put_u8(self.kind.code());
        buf.put_u8(0);
        buf.put_u32(self.seq);
        buf.put_f64(self.hour);
        buf.put_u16(self.values.len() as u16);
        for &v in &self.values {
            buf.put_f64(v);
        }
        Ok(())
    }

    /// Parses a frame from bytes.
    ///
    /// The decoder is strict: the buffer must hold the fixed header plus
    /// *exactly* the advertised payload. Trailing bytes — including a
    /// non-multiple-of-8 remainder — are rejected rather than silently
    /// discarded, so a corrupt capture file fails loudly instead of
    /// yielding short payloads. A successful decode re-encodes to the
    /// identical bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] for truncated buffers, bad magic, unknown
    /// kinds, a nonzero reserved byte, or any payload-length mismatch.
    pub fn decode(buf: &[u8]) -> Result<Self, FrameError> {
        let mut frame = Frame::new(FrameKind::SensorReport, 0, 0.0, Vec::new());
        Frame::decode_into(buf, &mut frame)?;
        Ok(frame)
    }

    /// Parses a frame from bytes into `out`, reusing its `values`
    /// allocation — the allocation-free counterpart of [`Frame::decode`],
    /// with identical strictness. On error `out` is left in an
    /// unspecified (but valid) state.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Frame::decode`].
    pub fn decode_into(mut buf: &[u8], out: &mut Frame) -> Result<(), FrameError> {
        if buf.len() < HEADER_LEN {
            return Err(FrameError::Truncated);
        }
        if buf.get_u16() != MAGIC {
            return Err(FrameError::BadMagic);
        }
        let kind_code = buf.get_u8();
        let kind = FrameKind::from_code(kind_code).ok_or(FrameError::UnknownKind(kind_code))?;
        let reserved = buf.get_u8();
        if reserved != 0 {
            return Err(FrameError::BadReserved(reserved));
        }
        let seq = buf.get_u32();
        let hour = buf.get_f64();
        let advertised = buf.get_u16() as usize;
        let payload_bytes = buf.remaining();
        if payload_bytes != advertised * 8 {
            return Err(FrameError::LengthMismatch {
                advertised,
                payload_bytes,
            });
        }
        out.kind = kind;
        out.seq = seq;
        out.hour = hour;
        out.values.clear();
        out.values.extend((0..advertised).map(|_| buf.get_f64()));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_sensor_frame() {
        let f = Frame::new(FrameKind::SensorReport, 42, 10.5, vec![1.0, -2.5, 3.25]);
        let decoded = Frame::decode(&f.encode().unwrap()).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn roundtrip_actuator_frame() {
        let f = Frame::new(FrameKind::ActuatorCommand, 7, 0.0, vec![55.0; 12]);
        assert_eq!(Frame::decode(&f.encode().unwrap()).unwrap(), f);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let f = Frame::new(FrameKind::SensorReport, 0, 0.0, vec![]);
        assert_eq!(Frame::decode(&f.encode().unwrap()).unwrap(), f);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(Frame::decode(&[0u8; 5]), Err(FrameError::Truncated));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = Frame::new(FrameKind::SensorReport, 1, 1.0, vec![1.0])
            .encode()
            .unwrap()
            .to_vec();
        bytes[0] = 0xFF;
        assert_eq!(Frame::decode(&bytes), Err(FrameError::BadMagic));
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut bytes = Frame::new(FrameKind::SensorReport, 1, 1.0, vec![1.0])
            .encode()
            .unwrap()
            .to_vec();
        bytes[2] = 0x09;
        assert_eq!(Frame::decode(&bytes), Err(FrameError::UnknownKind(0x09)));
    }

    #[test]
    fn nonzero_reserved_rejected() {
        let mut bytes = Frame::new(FrameKind::SensorReport, 1, 1.0, vec![1.0])
            .encode()
            .unwrap()
            .to_vec();
        bytes[3] = 0x55;
        assert_eq!(Frame::decode(&bytes), Err(FrameError::BadReserved(0x55)));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut bytes = Frame::new(FrameKind::SensorReport, 1, 1.0, vec![1.0])
            .encode()
            .unwrap()
            .to_vec();
        bytes[17] = 200; // advertise 200 values
        assert_eq!(
            Frame::decode(&bytes),
            Err(FrameError::LengthMismatch {
                advertised: 200,
                payload_bytes: 8,
            })
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Frame::new(FrameKind::SensorReport, 1, 1.0, vec![1.0, 2.0])
            .encode()
            .unwrap()
            .to_vec();
        // A whole extra value beyond the advertised two...
        bytes.extend_from_slice(&3.0f64.to_be_bytes());
        assert_eq!(
            Frame::decode(&bytes),
            Err(FrameError::LengthMismatch {
                advertised: 2,
                payload_bytes: 24,
            })
        );
        // ...and a ragged remainder shorter than one value.
        bytes.truncate(HEADER_LEN + 2 * 8 + 3);
        assert_eq!(
            Frame::decode(&bytes),
            Err(FrameError::LengthMismatch {
                advertised: 2,
                payload_bytes: 19,
            })
        );
    }

    #[test]
    fn too_many_values_rejected_and_boundary_roundtrips() {
        let oversized = Frame::new(FrameKind::SensorReport, 1, 1.0, vec![0.0; MAX_VALUES + 1]);
        assert_eq!(
            oversized.encode(),
            Err(FrameError::TooManyValues {
                count: MAX_VALUES + 1,
            })
        );
        // Exactly MAX_VALUES still round-trips.
        let full = Frame::new(FrameKind::SensorReport, 1, 1.0, vec![0.5; MAX_VALUES]);
        assert_eq!(Frame::decode(&full.encode().unwrap()).unwrap(), full);
    }

    #[test]
    fn tampering_is_undetectable() {
        // The security premise of the paper: an attacker can rewrite a value
        // and re-encode; the result is indistinguishable from a genuine
        // frame.
        let genuine = Frame::new(FrameKind::SensorReport, 9, 10.0, vec![3.9, 2.0]);
        let mut tampered = Frame::decode(&genuine.encode().unwrap()).unwrap();
        tampered.values[0] = 0.0;
        let reencoded = tampered.encode().unwrap();
        let redecoded = Frame::decode(&reencoded).unwrap();
        assert_eq!(redecoded.values[0], 0.0);
        assert_eq!(redecoded.seq, genuine.seq);
    }
}
