//! An insecure fieldbus between controllers and the physical process, with
//! a man-in-the-middle adversary.
//!
//! The DSN 2016 paper's attack model (after Krotofil et al., ASIA CCS'15)
//! assumes the controller ↔ sensor/actuator links run over unauthenticated
//! legacy protocols, so an attacker can read and rewrite traffic in both
//! directions:
//!
//! * **uplink** — sensor values (XMEAS) travelling to the controller may be
//!   forged before the controller sees them;
//! * **downlink** — actuator commands (XMV) travelling to the process may
//!   be forged before the actuators receive them.
//!
//! [`FieldbusLink`] carries both directions as explicit wire [`frame`]s and
//! exposes *taps at both endpoints*: the process-side view (what the plant
//! really sent/received) and the controller-side view (what the controller
//! received/sent). The paper's dual-level MSPC monitors exactly these two
//! views.
//!
//! # Example
//!
//! ```
//! use temspc_fieldbus::{Attack, AttackKind, AttackTarget, FieldbusLink, MitmAdversary};
//!
//! // Attacker forces sensor XMEAS(1) to zero from hour 10 onwards.
//! let attack = Attack::new(
//!     AttackTarget::Sensor(1),
//!     AttackKind::IntegrityConstant(0.0),
//!     10.0..f64::INFINITY,
//! );
//! let mut link = FieldbusLink::new(MitmAdversary::new(vec![attack]));
//! let truth = vec![3.9; 41];
//! let received = link.uplink(12.0, &truth).unwrap();
//! assert_eq!(received[0], 0.0);      // controller sees the forged value
//! assert_eq!(truth[0], 3.9);         // the process-side truth is intact
//! ```

#![warn(missing_docs)]

pub mod attack;
pub mod capture;
pub mod frame;
mod link;
pub mod netstat;

pub use attack::{Attack, AttackKind, AttackTarget, MitmAdversary};
pub use capture::{CaptureRecord, CaptureTap, ReplayError, ReplayLink, ReplayStep, TapPoint};
pub use frame::{Frame, FrameError, FrameKind};
pub use link::{FieldbusLink, LinkError, LinkScratch};
pub use netstat::{TrafficFeatures, TrafficMonitor};
