//! The controller ↔ process link, carrying framed traffic through the
//! adversary.

use bytes::BytesMut;

use crate::attack::MitmAdversary;
use crate::capture::{CaptureTap, TapPoint};
use crate::frame::{Frame, FrameError, FrameKind};

/// Reusable buffers for one link's transfers: outbound and intercepted
/// frames plus both wire images. After the first transfer warms the
/// capacities, [`FieldbusLink::uplink_into`] and
/// [`FieldbusLink::downlink_into`] perform no heap allocation — this is
/// what keeps the closed-loop hot path off the global allocator when
/// many plants run in parallel.
#[derive(Debug)]
pub struct LinkScratch {
    outbound: Frame,
    intercepted: Frame,
    wire: BytesMut,
    forged_wire: BytesMut,
}

impl Default for LinkScratch {
    fn default() -> Self {
        LinkScratch {
            outbound: Frame::new(FrameKind::SensorReport, 0, 0.0, Vec::new()),
            intercepted: Frame::new(FrameKind::SensorReport, 0, 0.0, Vec::new()),
            wire: BytesMut::new(),
            forged_wire: BytesMut::new(),
        }
    }
}

impl LinkScratch {
    /// Empty scratch; buffers grow to steady-state size on first use.
    pub fn new() -> Self {
        LinkScratch::default()
    }
}

/// Errors surfaced by the link.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkError {
    /// A frame failed to encode or decode (should not happen unless the
    /// adversary corrupts framing, which the modelled attacks never do).
    Frame(FrameError),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::Frame(e) => write!(f, "frame error: {e}"),
        }
    }
}

impl std::error::Error for LinkError {}

impl From<FrameError> for LinkError {
    fn from(e: FrameError) -> Self {
        LinkError::Frame(e)
    }
}

/// A bidirectional fieldbus link with a man-in-the-middle position.
///
/// Every transfer is a real encode → tamper → decode round trip through
/// the wire format, so the adversary operates exactly where a network
/// attacker would. The sequence counters emulate the polling cycle of a
/// legacy SCADA master.
#[derive(Debug)]
pub struct FieldbusLink {
    adversary: MitmAdversary,
    uplink_seq: u32,
    downlink_seq: u32,
    tap: Option<CaptureTap>,
}

impl FieldbusLink {
    /// Creates a link with the given man-in-the-middle adversary
    /// (use [`MitmAdversary::passive`] for attack-free runs).
    pub fn new(adversary: MitmAdversary) -> Self {
        FieldbusLink {
            adversary,
            uplink_seq: 0,
            downlink_seq: 0,
            tap: None,
        }
    }

    /// The adversary on this link.
    pub fn adversary(&self) -> &MitmAdversary {
        &self.adversary
    }

    /// Attaches a passive capture tap: from now on every frame crossing
    /// the link — both directions, both sides of the adversary — is
    /// recorded as raw wire bytes. Replaces any tape recorded so far.
    pub fn attach_tap(&mut self) {
        self.tap = Some(CaptureTap::new());
    }

    /// Detaches the capture tap, returning the recorded tape (or `None`
    /// if no tap was attached).
    pub fn take_tap(&mut self) -> Option<CaptureTap> {
        self.tap.take()
    }

    fn tap_record(&mut self, point: TapPoint, hour: f64, wire: &[u8]) {
        if let Some(tap) = &mut self.tap {
            tap.record(point, hour, wire);
        }
    }

    /// Whether an attack is active at `hour`.
    pub fn under_attack(&self, hour: f64) -> bool {
        self.adversary.is_attacking(hour)
    }

    /// Carries a sensor report (XMEAS) from the process to the controller,
    /// through the adversary. Returns what the controller receives.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::Frame`] if the tampered frame fails to decode.
    pub fn uplink(&mut self, hour: f64, xmeas: &[f64]) -> Result<Vec<f64>, LinkError> {
        let mut scratch = LinkScratch::new();
        let mut received = Vec::with_capacity(xmeas.len());
        self.uplink_into(hour, xmeas, &mut received, &mut scratch)?;
        Ok(received)
    }

    /// [`FieldbusLink::uplink`] without the per-call allocations: the
    /// received values land in `received` (cleared first) and every
    /// intermediate frame/wire buffer comes from `scratch`. Delivers the
    /// same values as `uplink` bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::Frame`] if the tampered frame fails to decode.
    pub fn uplink_into(
        &mut self,
        hour: f64,
        xmeas: &[f64],
        received: &mut Vec<f64>,
        scratch: &mut LinkScratch,
    ) -> Result<(), LinkError> {
        let LinkScratch {
            outbound,
            intercepted,
            wire,
            forged_wire,
        } = scratch;
        outbound.kind = FrameKind::SensorReport;
        outbound.seq = self.uplink_seq;
        outbound.hour = hour;
        outbound.values.clear();
        outbound.values.extend_from_slice(xmeas);
        self.uplink_seq = self.uplink_seq.wrapping_add(1);
        outbound.encode_into(wire)?;
        self.tap_record(TapPoint::UplinkSent, hour, wire);
        // Man-in-the-middle position: parse, rewrite, re-encode.
        Frame::decode_into(wire, intercepted)?;
        self.adversary.tamper_sensors(hour, &mut intercepted.values);
        intercepted.encode_into(forged_wire)?;
        self.tap_record(TapPoint::UplinkDelivered, hour, forged_wire);
        Frame::decode_into(forged_wire, intercepted)?;
        received.clear();
        received.extend_from_slice(&intercepted.values);
        Ok(())
    }

    /// Carries an actuator command (XMV) from the controller to the
    /// process, through the adversary. Returns what the actuators receive.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::Frame`] if the tampered frame fails to decode.
    pub fn downlink(&mut self, hour: f64, xmv: &[f64]) -> Result<Vec<f64>, LinkError> {
        let mut scratch = LinkScratch::new();
        let mut delivered = Vec::with_capacity(xmv.len());
        self.downlink_into(hour, xmv, &mut delivered, &mut scratch)?;
        Ok(delivered)
    }

    /// [`FieldbusLink::downlink`] without the per-call allocations: the
    /// delivered values land in `delivered` (cleared first) and every
    /// intermediate frame/wire buffer comes from `scratch`. Delivers the
    /// same values as `downlink` bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::Frame`] if the tampered frame fails to decode.
    pub fn downlink_into(
        &mut self,
        hour: f64,
        xmv: &[f64],
        delivered: &mut Vec<f64>,
        scratch: &mut LinkScratch,
    ) -> Result<(), LinkError> {
        let LinkScratch {
            outbound,
            intercepted,
            wire,
            forged_wire,
        } = scratch;
        outbound.kind = FrameKind::ActuatorCommand;
        outbound.seq = self.downlink_seq;
        outbound.hour = hour;
        outbound.values.clear();
        outbound.values.extend_from_slice(xmv);
        self.downlink_seq = self.downlink_seq.wrapping_add(1);
        outbound.encode_into(wire)?;
        self.tap_record(TapPoint::DownlinkSent, hour, wire);
        Frame::decode_into(wire, intercepted)?;
        self.adversary
            .tamper_actuators(hour, &mut intercepted.values);
        intercepted.encode_into(forged_wire)?;
        self.tap_record(TapPoint::DownlinkDelivered, hour, forged_wire);
        Frame::decode_into(forged_wire, intercepted)?;
        delivered.clear();
        delivered.extend_from_slice(&intercepted.values);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{Attack, AttackKind, AttackTarget};

    #[test]
    fn passive_link_is_transparent() {
        let mut link = FieldbusLink::new(MitmAdversary::passive());
        let xmeas: Vec<f64> = (0..41).map(|i| i as f64 * 0.5).collect();
        let received = link.uplink(1.0, &xmeas).unwrap();
        assert_eq!(received, xmeas);
        let xmv = vec![50.0; 12];
        let delivered = link.downlink(1.0, &xmv).unwrap();
        assert_eq!(delivered, xmv);
    }

    #[test]
    fn uplink_attack_changes_controller_view_only() {
        let mut link = FieldbusLink::new(MitmAdversary::new(vec![Attack::new(
            AttackTarget::Sensor(1),
            AttackKind::IntegrityConstant(0.0),
            0.0..f64::INFINITY,
        )]));
        let xmeas = vec![3.9; 41];
        let received = link.uplink(1.0, &xmeas).unwrap();
        assert_eq!(received[0], 0.0);
        assert_eq!(received[1], 3.9);
        assert_eq!(xmeas[0], 3.9); // process-side truth untouched
    }

    #[test]
    fn downlink_attack_changes_process_view_only() {
        let mut link = FieldbusLink::new(MitmAdversary::new(vec![Attack::new(
            AttackTarget::Actuator(3),
            AttackKind::IntegrityConstant(0.0),
            0.0..f64::INFINITY,
        )]));
        let xmv = vec![61.9; 12];
        let delivered = link.downlink(1.0, &xmv).unwrap();
        assert_eq!(delivered[2], 0.0);
        assert_eq!(delivered[0], 61.9);
        assert_eq!(xmv[2], 61.9); // the controller still believes 61.9
    }

    #[test]
    fn oversized_payload_is_a_link_error_not_a_wrapped_frame() {
        use crate::frame::MAX_VALUES;
        let mut link = FieldbusLink::new(MitmAdversary::passive());
        let huge = vec![0.0; MAX_VALUES + 1];
        assert_eq!(
            link.uplink(0.0, &huge),
            Err(LinkError::Frame(FrameError::TooManyValues {
                count: MAX_VALUES + 1,
            }))
        );
    }

    #[test]
    fn tap_records_four_points_per_step() {
        use crate::capture::TapPoint;
        let mut link = FieldbusLink::new(MitmAdversary::passive());
        link.attach_tap();
        link.uplink(1.0, &[3.9; 41]).unwrap();
        link.downlink(1.0, &[50.0; 12]).unwrap();
        let tape = link.take_tap().unwrap().into_records();
        let points: Vec<TapPoint> = tape.iter().map(|r| r.point).collect();
        assert_eq!(points, TapPoint::STEP_ORDER);
        assert!(tape.iter().all(|r| r.hour == 1.0));
        // Untapped link records nothing.
        assert!(link.take_tap().is_none());
    }

    #[test]
    fn under_attack_reflects_window() {
        let link = FieldbusLink::new(MitmAdversary::new(vec![Attack::new(
            AttackTarget::Sensor(1),
            AttackKind::DenialOfService,
            10.0..20.0,
        )]));
        assert!(!link.under_attack(5.0));
        assert!(link.under_attack(15.0));
        assert!(!link.under_attack(25.0));
    }
}
