//! Network-level traffic statistics — the data source the paper's §VII
//! proposes to add to the MSPC model.
//!
//! A passive tap near the process end of the fieldbus aggregates, per
//! monitoring window: frame and byte rates in both directions, and — the
//! decisive feature for the paper's DoS scenario — the per-channel
//! *update fraction*: how often each sensor/actuator value actually
//! changed between consecutive frames. A DoS that freezes a channel (the
//! receiver keeps consuming a stale value) drives that channel's update
//! fraction from ≈1 to 0 within one window, which is immediate and
//! trivially attributable — precisely the paper's prediction that network
//! variables "will also shorten the ARL required to detect anomalies".

use serde::{Deserialize, Serialize};

/// Aggregated traffic features of one monitoring window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficFeatures {
    /// End hour of the window.
    pub hour: f64,
    /// Uplink frames per hour.
    pub up_frame_rate: f64,
    /// Downlink frames per hour.
    pub down_frame_rate: f64,
    /// Uplink bytes per hour.
    pub up_byte_rate: f64,
    /// Downlink bytes per hour.
    pub down_byte_rate: f64,
    /// Per-sensor fraction of frames in which the value changed (len 41).
    pub up_change_fraction: Vec<f64>,
    /// Per-actuator fraction of frames in which the value changed (len 12).
    pub down_change_fraction: Vec<f64>,
}

impl TrafficFeatures {
    /// Flattens to a monitoring vector:
    /// `[up_frame_rate, down_frame_rate, up_byte_rate, down_byte_rate,
    /// up_change_fraction x41, down_change_fraction x12]` (57 entries).
    pub fn to_vector(&self) -> Vec<f64> {
        let mut v =
            Vec::with_capacity(4 + self.up_change_fraction.len() + self.down_change_fraction.len());
        v.push(self.up_frame_rate);
        v.push(self.down_frame_rate);
        v.push(self.up_byte_rate);
        v.push(self.down_byte_rate);
        v.extend_from_slice(&self.up_change_fraction);
        v.extend_from_slice(&self.down_change_fraction);
        v
    }

    /// Number of features produced for `n_sensors` + `n_actuators`
    /// channels.
    pub fn vector_len(n_sensors: usize, n_actuators: usize) -> usize {
        4 + n_sensors + n_actuators
    }

    /// Name of feature `index` in the flattened vector.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for this feature vector.
    pub fn feature_name(&self, index: usize) -> String {
        let ns = self.up_change_fraction.len();
        let na = self.down_change_fraction.len();
        match index {
            0 => "up_frame_rate".into(),
            1 => "down_frame_rate".into(),
            2 => "up_byte_rate".into(),
            3 => "down_byte_rate".into(),
            i if i < 4 + ns => format!("up_change[XMEAS({})]", i - 4 + 1),
            i if i < 4 + ns + na => format!("down_change[XMV({})]", i - 4 - ns + 1),
            _ => panic!("feature index out of range"),
        }
    }
}

/// A passive per-window traffic aggregator.
///
/// Feed every frame the tap sees with [`TrafficMonitor::observe_uplink`] /
/// [`TrafficMonitor::observe_downlink`]; when a window completes, the
/// call returns its [`TrafficFeatures`].
#[derive(Debug, Clone)]
pub struct TrafficMonitor {
    window_hours: f64,
    window_start: Option<f64>,
    up_frames: u64,
    down_frames: u64,
    up_bytes: u64,
    down_bytes: u64,
    last_up: Option<Vec<f64>>,
    last_down: Option<Vec<f64>>,
    up_changes: Vec<u64>,
    down_changes: Vec<u64>,
    up_comparisons: u64,
    down_comparisons: u64,
}

/// Change threshold: values closer than this are "unchanged" (guards
/// against float dust; real SCADA deadbands are far coarser).
const CHANGE_EPS: f64 = 1e-12;

impl TrafficMonitor {
    /// Creates a monitor aggregating over `window_hours` windows for the
    /// given channel counts.
    ///
    /// # Panics
    ///
    /// Panics if `window_hours` is not positive.
    pub fn new(window_hours: f64, n_sensors: usize, n_actuators: usize) -> Self {
        assert!(window_hours > 0.0, "window must be positive");
        TrafficMonitor {
            window_hours,
            window_start: None,
            up_frames: 0,
            down_frames: 0,
            up_bytes: 0,
            down_bytes: 0,
            last_up: None,
            last_down: None,
            up_changes: vec![0; n_sensors],
            down_changes: vec![0; n_actuators],
            up_comparisons: 0,
            down_comparisons: 0,
        }
    }

    /// The monitoring window length, hours.
    pub fn window_hours(&self) -> f64 {
        self.window_hours
    }

    /// Observes one uplink (sensor report) frame of `wire_bytes` length
    /// carrying `values`. Returns the completed window's features when the
    /// window rolls over.
    pub fn observe_uplink(
        &mut self,
        hour: f64,
        wire_bytes: usize,
        values: &[f64],
    ) -> Option<TrafficFeatures> {
        let out = self.roll_window(hour);
        self.up_frames += 1;
        self.up_bytes += wire_bytes as u64;
        if let Some(prev) = &self.last_up {
            self.up_comparisons += 1;
            for (i, (a, b)) in prev.iter().zip(values).enumerate() {
                if i < self.up_changes.len() && (a - b).abs() > CHANGE_EPS {
                    self.up_changes[i] += 1;
                }
            }
        }
        self.last_up = Some(values.to_vec());
        out
    }

    /// Observes one downlink (actuator command) frame; see
    /// [`TrafficMonitor::observe_uplink`].
    pub fn observe_downlink(
        &mut self,
        hour: f64,
        wire_bytes: usize,
        values: &[f64],
    ) -> Option<TrafficFeatures> {
        let out = self.roll_window(hour);
        self.down_frames += 1;
        self.down_bytes += wire_bytes as u64;
        if let Some(prev) = &self.last_down {
            self.down_comparisons += 1;
            for (i, (a, b)) in prev.iter().zip(values).enumerate() {
                if i < self.down_changes.len() && (a - b).abs() > CHANGE_EPS {
                    self.down_changes[i] += 1;
                }
            }
        }
        self.last_down = Some(values.to_vec());
        out
    }

    fn roll_window(&mut self, hour: f64) -> Option<TrafficFeatures> {
        let start = *self.window_start.get_or_insert(hour);
        if hour - start < self.window_hours {
            return None;
        }
        let features = self.snapshot(hour);
        self.window_start = Some(hour);
        self.up_frames = 0;
        self.down_frames = 0;
        self.up_bytes = 0;
        self.down_bytes = 0;
        self.up_changes.iter_mut().for_each(|c| *c = 0);
        self.down_changes.iter_mut().for_each(|c| *c = 0);
        self.up_comparisons = 0;
        self.down_comparisons = 0;
        Some(features)
    }

    fn snapshot(&self, hour: f64) -> TrafficFeatures {
        let dt = self.window_hours;
        let frac = |changes: &[u64], comparisons: u64| -> Vec<f64> {
            changes
                .iter()
                .map(|&c| c as f64 / comparisons.max(1) as f64)
                .collect()
        };
        TrafficFeatures {
            hour,
            up_frame_rate: self.up_frames as f64 / dt,
            down_frame_rate: self.down_frames as f64 / dt,
            up_byte_rate: self.up_bytes as f64 / dt,
            down_byte_rate: self.down_bytes as f64 / dt,
            up_change_fraction: frac(&self.up_changes, self.up_comparisons),
            down_change_fraction: frac(&self.down_changes, self.down_comparisons),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(
        monitor: &mut TrafficMonitor,
        hours: f64,
        freeze_channel: Option<usize>,
    ) -> Vec<TrafficFeatures> {
        let mut out = Vec::new();
        let dt = 0.0005;
        // Round, don't truncate: 0.3 / 0.0005 is 599.999… in binary, and
        // `as usize` would drop the final step (and with it the last
        // window roll).
        let steps = (hours / dt).round() as usize;
        for k in 0..steps {
            let hour = k as f64 * dt;
            // Sensors: all values jitter each frame.
            let up: Vec<f64> = (0..41)
                .map(|i| i as f64 + (k as f64 * 0.1).sin() * 0.01 + k as f64 * 1e-6)
                .collect();
            // Actuators: jitter, except an optionally frozen channel.
            let down: Vec<f64> = (0..12)
                .map(|i| {
                    if Some(i) == freeze_channel {
                        42.0
                    } else {
                        i as f64 + k as f64 * 1e-6
                    }
                })
                .collect();
            if let Some(f) = monitor.observe_uplink(hour, 346, &up) {
                out.push(f);
            }
            if let Some(f) = monitor.observe_downlink(hour, 114, &down) {
                out.push(f);
            }
        }
        out
    }

    #[test]
    fn window_rolls_and_rates_are_plausible() {
        let mut m = TrafficMonitor::new(0.05, 41, 12);
        let windows = drive(&mut m, 0.2, None);
        // 400 steps of 0.0005 h roll the 0.05 h window at hours 0.05,
        // 0.10 and 0.15 — exactly three completed windows.
        assert_eq!(windows.len(), 3, "windows = {}", windows.len());
        let f = &windows[1];
        // 2000 frames/hour each direction.
        assert!(
            (f.up_frame_rate - 2000.0).abs() < 100.0,
            "{}",
            f.up_frame_rate
        );
        assert!((f.down_frame_rate - 2000.0).abs() < 100.0);
        assert!(f.up_byte_rate > 0.0 && f.down_byte_rate > 0.0);
    }

    #[test]
    fn live_channels_have_full_change_fraction() {
        let mut m = TrafficMonitor::new(0.05, 41, 12);
        let windows = drive(&mut m, 0.2, None);
        let f = windows.last().unwrap();
        assert!(f.up_change_fraction.iter().all(|&c| c > 0.95));
        assert!(f.down_change_fraction.iter().all(|&c| c > 0.95));
    }

    #[test]
    fn frozen_channel_has_zero_change_fraction() {
        let mut m = TrafficMonitor::new(0.05, 41, 12);
        let windows = drive(&mut m, 0.2, Some(2)); // XMV(3) frozen
        let f = windows.last().unwrap();
        assert!(
            f.down_change_fraction[2] < 0.01,
            "{}",
            f.down_change_fraction[2]
        );
        assert!(f.down_change_fraction[3] > 0.95);
    }

    #[test]
    fn vector_layout_and_names() {
        let mut m = TrafficMonitor::new(0.05, 41, 12);
        let windows = drive(&mut m, 0.11, None);
        let f = &windows[0];
        let v = f.to_vector();
        assert_eq!(v.len(), TrafficFeatures::vector_len(41, 12));
        assert_eq!(f.feature_name(0), "up_frame_rate");
        assert_eq!(f.feature_name(4), "up_change[XMEAS(1)]");
        assert_eq!(f.feature_name(4 + 41 + 2), "down_change[XMV(3)]");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        TrafficMonitor::new(0.0, 41, 12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_feature_index_panics() {
        let mut m = TrafficMonitor::new(0.05, 2, 1);
        let w = drive(&mut m, 0.11, None);
        let _ = w[0].feature_name(99);
    }
}
