//! Property-based tests of the fieldbus wire format and attack algebra.

use proptest::prelude::*;
use temspc_fieldbus::{Attack, AttackKind, AttackTarget, Frame, FrameKind, MitmAdversary};

fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        prop::bool::ANY,
        any::<u32>(),
        -1e6..1e6f64,
        prop::collection::vec(-1e9..1e9f64, 0..64),
    )
        .prop_map(|(sensor, seq, hour, values)| {
            Frame::new(
                if sensor {
                    FrameKind::SensorReport
                } else {
                    FrameKind::ActuatorCommand
                },
                seq,
                hour,
                values,
            )
        })
}

proptest! {
    #[test]
    fn frame_roundtrips(frame in frame_strategy()) {
        let decoded = Frame::decode(&frame.encode().unwrap()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn truncated_frames_never_decode(frame in frame_strategy(), cut in 0usize..400) {
        let wire = frame.encode().unwrap();
        let cut = cut.min(wire.len());
        if cut < wire.len() {
            // Any strict prefix fails cleanly: the advertised payload is
            // no longer exactly present.
            prop_assert!(Frame::decode(&wire[..cut]).is_err());
        }
    }

    #[test]
    fn corrupted_bytes_never_panic(frame in frame_strategy(), pos in 0usize..100, byte in any::<u8>()) {
        let mut wire = frame.encode().unwrap().to_vec();
        if !wire.is_empty() {
            let p = pos % wire.len();
            wire[p] = byte;
            let _ = Frame::decode(&wire);
        }
    }

    #[test]
    fn arbitrary_bytes_decode_cleanly_or_reencode_identically(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        // The decoder must never panic on arbitrary input, and the strict
        // length/reserved checks make decode injective: whatever decodes
        // successfully re-encodes to the exact same bytes. A structured
        // rejection is the only other legal outcome.
        if let Ok(frame) = Frame::decode(&bytes) {
            let reencoded = frame.encode().unwrap();
            prop_assert_eq!(reencoded.as_ref(), bytes.as_slice());
        }
    }

    #[test]
    fn trailing_bytes_always_rejected(frame in frame_strategy(), extra in prop::collection::vec(any::<u8>(), 1..24)) {
        let mut wire = frame.encode().unwrap().to_vec();
        wire.extend_from_slice(&extra);
        prop_assert!(matches!(
            Frame::decode(&wire),
            Err(temspc_fieldbus::FrameError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn integrity_constant_forces_exact_value(target in 1usize..42, value in -1e3..1e3f64, hour in 0.0..100.0f64) {
        let mut adv = MitmAdversary::new(vec![Attack::new(
            AttackTarget::Sensor(target),
            AttackKind::IntegrityConstant(value),
            0.0..f64::INFINITY,
        )]);
        let mut v: Vec<f64> = (0..41).map(|i| i as f64).collect();
        adv.tamper_sensors(hour, &mut v);
        prop_assert_eq!(v[target - 1], value);
        // All other channels untouched.
        for (i, &x) in v.iter().enumerate() {
            if i != target - 1 {
                prop_assert_eq!(x, i as f64);
            }
        }
    }

    #[test]
    fn attacks_outside_window_are_identity(start in 1.0..50.0f64, len in 0.1..10.0f64, hour in 0.0..100.0f64) {
        let end = start + len;
        let mut adv = MitmAdversary::new(vec![Attack::new(
            AttackTarget::Sensor(1),
            AttackKind::IntegrityScale(0.0),
            start..end,
        )]);
        let mut v: Vec<f64> = (0..41).map(|i| 1.0 + i as f64).collect();
        let original = v.clone();
        adv.tamper_sensors(hour, &mut v);
        if hour < start || hour >= end {
            prop_assert_eq!(v, original);
        } else {
            prop_assert_eq!(v[0], 0.0);
        }
    }

    #[test]
    fn bias_then_inverse_bias_is_identity(bias in -100.0..100.0f64, hour in 0.0..10.0f64) {
        // Two adversaries in series with opposite biases cancel — the
        // attack algebra is compositional.
        let mut a1 = MitmAdversary::new(vec![Attack::new(
            AttackTarget::Sensor(5),
            AttackKind::IntegrityBias(bias),
            0.0..f64::INFINITY,
        )]);
        let mut a2 = MitmAdversary::new(vec![Attack::new(
            AttackTarget::Sensor(5),
            AttackKind::IntegrityBias(-bias),
            0.0..f64::INFINITY,
        )]);
        let mut v: Vec<f64> = (0..41).map(|i| i as f64 * 0.5).collect();
        let original = v.clone();
        a1.tamper_sensors(hour, &mut v);
        a2.tamper_sensors(hour, &mut v);
        for (x, y) in v.iter().zip(&original) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn dos_holds_exactly_the_last_pre_attack_value(pre in prop::collection::vec(-10.0..10.0f64, 2..20), during in prop::collection::vec(-10.0..10.0f64, 1..20)) {
        let onset = pre.len() as f64;
        let mut adv = MitmAdversary::new(vec![Attack::new(
            AttackTarget::Actuator(1),
            AttackKind::DenialOfService,
            onset..f64::INFINITY,
        )]);
        let mut last_clean = 0.0;
        for (k, &x) in pre.iter().enumerate() {
            let mut v = vec![0.0; 12];
            v[0] = x;
            adv.tamper_actuators(k as f64, &mut v);
            last_clean = x;
        }
        for (k, &x) in during.iter().enumerate() {
            let mut v = vec![0.0; 12];
            v[0] = x;
            adv.tamper_actuators(onset + k as f64, &mut v);
            prop_assert_eq!(v[0], last_clean);
        }
    }
}
