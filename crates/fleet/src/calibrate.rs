//! Pooled calibration: the same campaign as
//! [`temspc::collect_calibration_data`], fanned out over the worker
//! pool.
//!
//! Run `k` is a pure function of the configuration
//! ([`temspc::calibration_scenario`]) and results are stacked in run
//! order, so the stacked matrices — and therefore the fitted models —
//! are byte-identical to the sequential path for any thread count.

use temspc::{
    run_calibration_scenario, stack_calibration_runs, CalibrationConfig, DualMspc, MonitorConfig,
    RunError,
};
use temspc_linalg::Matrix;
use temspc_mspc::MspcError;

use crate::pool::WorkerPool;

/// Why a pooled calibration campaign failed.
///
/// Earlier versions collapsed every failed run into
/// `MspcError::Numeric(LinalgError::Empty)`, destroying the actual
/// cause; this variant pair keeps the underlying error intact so an
/// operator sees *which* stage failed and why.
#[derive(Debug)]
pub enum CalibrateError {
    /// A calibration run's closed loop failed; carries the original
    /// [`RunError`] (fieldbus or model failure) unchanged.
    Run(RunError),
    /// The runs succeeded but fitting the dual-level model on the
    /// stacked data failed.
    Fit(MspcError),
}

impl std::fmt::Display for CalibrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrateError::Run(e) => write!(f, "calibration run failed: {e}"),
            CalibrateError::Fit(e) => write!(f, "calibration fit failed: {e}"),
        }
    }
}

impl std::error::Error for CalibrateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CalibrateError::Run(e) => Some(e),
            CalibrateError::Fit(e) => Some(e),
        }
    }
}

impl From<RunError> for CalibrateError {
    fn from(e: RunError) -> Self {
        CalibrateError::Run(e)
    }
}

impl From<MspcError> for CalibrateError {
    fn from(e: MspcError) -> Self {
        CalibrateError::Fit(e)
    }
}

/// Worker count for a calibration campaign: the config's `threads`, or
/// — when 0 — one per run, capped at the machine's core count (and 16)
/// exactly like `WorkerPool::new(0)`. The old behaviour clamped only at
/// 16, launching 16 workers on a 4-core box and oversubscribing every
/// campaign that left `threads` at the default.
fn campaign_threads(config: &CalibrationConfig) -> usize {
    if config.threads == 0 {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        config.runs.clamp(1, cores.min(16))
    } else {
        config.threads
    }
}

/// Runs the calibration campaign over the pool and returns the stacked
/// `(controller_view, process_view)` matrices, identical to the
/// sequential [`temspc::collect_calibration_data`].
///
/// # Errors
///
/// Propagates the first [`RunError`] (by run index) of any failed run.
pub fn collect_calibration_data_pooled(
    config: &CalibrationConfig,
) -> Result<(Matrix, Matrix), RunError> {
    let pool = WorkerPool::new(campaign_threads(config));
    collect_calibration_data_pooled_on(&pool, config)
}

/// [`collect_calibration_data_pooled`], but dispatched onto an existing
/// persistent pool — repeated campaigns (per-cohort store calibration,
/// repeated fleet runs) reuse the resident workers and their warmed
/// per-thread scoring scratches instead of spawning a cold pool each
/// time. The stacked matrices are identical regardless of which pool (or
/// thread count) runs the campaign.
///
/// # Errors
///
/// Propagates the first [`RunError`] (by run index) of any failed run.
pub fn collect_calibration_data_pooled_on(
    pool: &WorkerPool,
    config: &CalibrationConfig,
) -> Result<(Matrix, Matrix), RunError> {
    let runs: Vec<Result<(Matrix, Matrix), RunError>> =
        pool.map(config.runs, |k| run_calibration_scenario(config, k));
    let runs: Vec<(Matrix, Matrix)> = runs.into_iter().collect::<Result<_, _>>()?;
    Ok(stack_calibration_runs(runs))
}

/// Calibrates a dual-level monitor using the pooled campaign; the result
/// equals [`DualMspc::calibrate_with`] bit for bit.
///
/// # Errors
///
/// Returns [`CalibrateError::Run`] carrying the first failed run's
/// [`RunError`] unchanged, or [`CalibrateError::Fit`] if the fit on the
/// stacked data is degenerate.
pub fn calibrate(
    calibration: &CalibrationConfig,
    config: MonitorConfig,
) -> Result<DualMspc, CalibrateError> {
    let (controller, process) = collect_calibration_data_pooled(calibration)?;
    DualMspc::from_data(&controller, &process, config).map_err(CalibrateError::Fit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use temspc::collect_calibration_data;

    #[test]
    fn pooled_matches_sequential_exactly() {
        let cfg = CalibrationConfig {
            runs: 4,
            duration_hours: 0.2,
            record_every: 10,
            base_seed: 55,
            threads: 4,
        };
        let sequential = collect_calibration_data(&cfg).unwrap();
        let pooled = collect_calibration_data_pooled(&cfg).unwrap();
        assert_eq!(sequential, pooled);
    }

    #[test]
    fn pooled_monitor_equals_sequential_monitor() {
        let cfg = CalibrationConfig {
            runs: 3,
            duration_hours: 0.3,
            record_every: 10,
            base_seed: 77,
            threads: 3,
        };
        let sequential = DualMspc::calibrate(&cfg).unwrap();
        let pooled = calibrate(&cfg, MonitorConfig::default()).unwrap();
        assert_eq!(
            sequential.controller_model().limits().t2_99,
            pooled.controller_model().limits().t2_99
        );
        assert_eq!(
            sequential.controller_model().limits().spe_99,
            pooled.controller_model().limits().spe_99
        );
        let obs: Vec<f64> = (0..53).map(|i| i as f64 * 0.2).collect();
        assert_eq!(
            sequential.controller_model().score(&obs).unwrap(),
            pooled.controller_model().score(&obs).unwrap()
        );
    }

    #[test]
    fn run_error_text_survives_the_calibrate_error_chain() {
        // A failed run used to be flattened into
        // `MspcError::Numeric(LinalgError::Empty)`, erasing the cause.
        // The wrapped error must keep the original message visible both
        // in `Display` and through the `source()` chain.
        let underlying = RunError::Model(MspcError::Numeric(
            temspc_linalg::LinalgError::NoConvergence {
                algorithm: "nipals",
                iterations: 500,
            },
        ));
        let original = underlying.to_string();
        assert!(original.contains("nipals did not converge after 500 iterations"));
        let wrapped: CalibrateError = underlying.into();
        assert!(
            wrapped.to_string().contains(&original),
            "calibrate error '{wrapped}' lost the run error text '{original}'"
        );
        let source = std::error::Error::source(&wrapped).expect("source preserved");
        assert_eq!(source.to_string(), original);
    }

    #[test]
    fn degenerate_fit_reports_the_fit_stage() {
        // Zero-length runs stack into empty matrices; the failure must
        // surface as a `Fit` error carrying the numeric cause, not a
        // generic placeholder.
        let cfg = CalibrationConfig {
            runs: 1,
            duration_hours: 0.0,
            record_every: 10,
            base_seed: 1,
            threads: 1,
        };
        let err = calibrate(&cfg, MonitorConfig::default()).unwrap_err();
        assert!(matches!(err, CalibrateError::Fit(_)));
        assert!(err.to_string().starts_with("calibration fit failed:"));
    }

    #[test]
    fn thread_count_does_not_change_the_data() {
        let base = CalibrationConfig {
            runs: 3,
            duration_hours: 0.1,
            record_every: 10,
            base_seed: 21,
            threads: 1,
        };
        let one = collect_calibration_data_pooled(&base).unwrap();
        let eight = collect_calibration_data_pooled(&CalibrationConfig {
            threads: 8,
            ..base.clone()
        })
        .unwrap();
        assert_eq!(one, eight);
    }
}
