//! Fleet checkpointing: periodic snapshots of completed plant records,
//! so an interrupted campaign resumes instead of recomputing.
//!
//! Snapshots use the TPB format of [`temspc_persist`] behind a magic
//! header, and are written atomically (temp file + rename) so a crash
//! mid-write never leaves a torn checkpoint behind.

use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};
use temspc_persist::PersistError;

use crate::engine::FleetConfig;
use crate::report::PlantRecord;

/// File magic + checkpoint format version.
const MAGIC: &[u8; 8] = b"TEFLEET\x01";

/// A snapshot of a (possibly partial) fleet campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetCheckpoint {
    /// The configuration the campaign was started with. Resume refuses a
    /// checkpoint whose configuration differs — per-plant scenarios are
    /// derived from it, so mixing configurations would corrupt the
    /// aggregate report.
    pub config: FleetConfig,
    /// Records of the plants finished so far.
    pub records: Vec<PlantRecord>,
}

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(io::Error),
    /// Encoding/decoding failure.
    Format(PersistError),
    /// The file is not a fleet checkpoint (bad magic/version).
    BadHeader,
    /// The checkpoint was produced by a different fleet configuration.
    ConfigMismatch,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o failure: {e}"),
            CheckpointError::Format(e) => write!(f, "checkpoint format failure: {e}"),
            CheckpointError::BadHeader => write!(f, "not a fleet checkpoint (bad header)"),
            CheckpointError::ConfigMismatch => {
                write!(f, "checkpoint belongs to a different fleet configuration")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<PersistError> for CheckpointError {
    fn from(e: PersistError) -> Self {
        CheckpointError::Format(e)
    }
}

/// Saves a checkpoint atomically.
///
/// # Errors
///
/// Returns [`CheckpointError`] on I/O or encoding failure.
pub fn save(checkpoint: &FleetCheckpoint, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    let mut bytes = Vec::with_capacity(1024);
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&temspc_persist::to_bytes(checkpoint)?);
    // The shared helper picks a unique sibling temp name (pid + counter),
    // so two checkpoints sharing a file stem — or two concurrent
    // campaigns in one directory — never clobber each other mid-save the
    // way the old fixed `.tmp` extension did.
    temspc_persist::write_atomic(path, &bytes)?;
    Ok(())
}

/// Loads a checkpoint saved with [`save`].
///
/// # Errors
///
/// Returns [`CheckpointError`] on I/O, header or decoding failure.
pub fn load(path: impl AsRef<Path>) -> Result<FleetCheckpoint, CheckpointError> {
    let bytes = std::fs::read(path.as_ref())?;
    let payload = bytes
        .strip_prefix(MAGIC.as_slice())
        .ok_or(CheckpointError::BadHeader)?;
    Ok(temspc_persist::from_bytes(payload)?)
}

/// Loads a checkpoint if `path` exists, validating it against `config`.
///
/// Returns an empty record set when there is no checkpoint yet (the
/// common first-run case).
///
/// # Errors
///
/// Returns [`CheckpointError::ConfigMismatch`] when the file belongs to
/// a differently configured campaign, or the underlying I/O/decoding
/// error.
pub fn resume(
    path: impl AsRef<Path>,
    config: &FleetConfig,
) -> Result<Vec<PlantRecord>, CheckpointError> {
    let path = path.as_ref();
    if !path.exists() {
        return Ok(Vec::new());
    }
    let checkpoint = load(path)?;
    if checkpoint.config != *config {
        return Err(CheckpointError::ConfigMismatch);
    }
    Ok(checkpoint.records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use temspc::ScenarioKind;

    /// Per-test directory: tests run in parallel, so cleanup of a shared
    /// directory would race with a sibling's save/load.
    fn tmp(test: &str, name: &str) -> std::path::PathBuf {
        std::env::temp_dir()
            .join(format!("temspc_fleet_ckpt_{test}"))
            .join(name)
    }

    fn sample() -> FleetCheckpoint {
        FleetCheckpoint {
            config: FleetConfig {
                plants: 4,
                ..FleetConfig::default()
            },
            records: vec![PlantRecord {
                plant: 1,
                kind: ScenarioKind::Idv6,
                seed: 99,
                completed: true,
                restarts: 1,
                fault: Some("transient".into()),
                detection_latency_hours: Some(0.07),
                false_alarms: 0,
                verdict: Some(temspc::Verdict::Disturbance),
                shutdown_hour: None,
                model_generation: 1,
            }],
        }
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip", "ck.tpb");
        let ck = sample();
        save(&ck, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.config, ck.config);
        assert_eq!(loaded.records, ck.records);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn resume_filters_and_validates() {
        let path = tmp("resume", "ck.tpb");
        let ck = sample();
        save(&ck, &path).unwrap();
        let records = resume(&path, &ck.config).unwrap();
        assert_eq!(records.len(), 1);
        let other = FleetConfig {
            plants: 8,
            ..FleetConfig::default()
        };
        assert!(matches!(
            resume(&path, &other),
            Err(CheckpointError::ConfigMismatch)
        ));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn missing_checkpoint_resumes_empty() {
        let records = resume(tmp("missing", "none.tpb"), &FleetConfig::default()).unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn bad_header_is_rejected() {
        let path = tmp("badheader", "garbage.tpb");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"NOTAFLEETCKPT").unwrap();
        assert!(matches!(load(&path), Err(CheckpointError::BadHeader)));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
