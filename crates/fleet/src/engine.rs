//! The fleet engine: N independent plant+controller+fieldbus+MSPC
//! closed loops scheduled over the worker pool, streaming outcomes into
//! an aggregate report.
//!
//! Plants resolve their monitor either from one shared calibrated
//! [`DualMspc`] ([`FleetEngine::new`]) or per-cohort from a sharded
//! [`ModelStore`] ([`FleetEngine::with_store`]) — a single-cohort store
//! reproduces the shared-monitor fleet bit-for-bit.
//!
//! Every per-plant scenario is a pure function of the fleet
//! configuration (`plant_scenario`), so the verdict set is identical for
//! any thread count — the pool only changes *when* a plant runs, never
//! *what* it computes.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use temspc::diagnosis::{diagnose, VerdictThresholds};
use temspc::{DualMspc, Scenario, ScenarioKind, ScenarioOutcome};

use crate::checkpoint::{self, CheckpointError, FleetCheckpoint};
use crate::metrics::{Counter, Histogram, MetricsRegistry};
use crate::pool::WorkerPool;
use crate::report::{FleetReport, PlantRecord};
use crate::store::{ModelStore, PlantKey, ResolvedModel};
use crate::supervisor::{supervise, SupervisionPolicy};

/// Where each plant's traffic comes from.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlantSource {
    /// Simulate each plant's closed loop live (the default).
    #[default]
    Live,
    /// Replay recorded wire captures from this directory: plant `i`
    /// scores `<dir>/plant_i.cap` (as written by
    /// [`record_fleet_captures`]) instead of re-simulating. The stored
    /// path is a `String` so the config stays serializable with the
    /// vendored serde.
    Replay(String),
    /// Live wire ingestion: plants stream length-prefixed fieldbus
    /// frames over TCP to this listen address and are scored at wire
    /// rate. The socket front half lives in the `temspc-ingest` crate
    /// (`temspc ingest serve`), which fans reassembled per-plant batches
    /// into this engine's [`WorkerPool`] intake path; the pull-model
    /// [`FleetEngine::run`] cannot drive it and reports plants under
    /// this source as failed with a pointer to the server.
    Socket(String),
}

/// Configuration of a fleet campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of plants to monitor.
    pub plants: usize,
    /// Worker threads (0 → one per CPU core, capped at 16).
    pub threads: usize,
    /// Simulated hours per plant.
    pub hours: f64,
    /// Hour at which each anomalous plant's anomaly starts.
    pub onset_hour: f64,
    /// Fraction of plants under attack (the rest split between IDV(6)
    /// disturbances and normal operation).
    pub attack_fraction: f64,
    /// Seed of the whole fleet; per-plant seeds are derived from it.
    pub fleet_seed: u64,
    /// Restart policy for panicking plant jobs.
    pub supervision: SupervisionPolicy,
    /// Save a checkpoint every this many completed plants
    /// (0 → only at the end).
    pub checkpoint_every: usize,
    /// Chaos hook: plant indices whose *first* attempt panics
    /// deliberately (exercises the supervisor; empty in production).
    pub inject_panic_plants: Vec<u32>,
    /// Traffic source: live simulation or recorded capture replay.
    pub source: PlantSource,
    /// Calibration cohorts when monitoring through a [`ModelStore`]:
    /// plant `i` resolves the model of cohort `i % cohorts`. With 1 (the
    /// default) every plant shares one cohort, matching the
    /// shared-monitor engine; ignored by [`FleetEngine::new`].
    pub cohorts: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            plants: 4,
            threads: 0,
            hours: 2.0,
            onset_hour: 0.5,
            attack_fraction: 0.25,
            fleet_seed: 2016,
            supervision: SupervisionPolicy::default(),
            checkpoint_every: 8,
            inject_panic_plants: Vec::new(),
            source: PlantSource::Live,
            cohorts: 1,
        }
    }
}

/// One SplitMix64 step — the same mixer the RNG seeding uses, reused
/// here to derive decorrelated per-plant seeds from the fleet seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives plant `i`'s RNG seed from the fleet seed.
pub fn plant_seed(fleet_seed: u64, plant: usize) -> u64 {
    let mut state = fleet_seed ^ (plant as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    let _ = splitmix64(&mut state);
    splitmix64(&mut state)
}

const ATTACKS: [ScenarioKind; 3] = [
    ScenarioKind::IntegrityXmv3,
    ScenarioKind::IntegrityXmeas1,
    ScenarioKind::DosXmv3,
];

/// The scenario plant `i` runs: a pure function of the configuration.
///
/// `round(attack_fraction × plants)` plants are attacked, spread evenly
/// over the index range (Bresenham), cycling through the three attack
/// kinds; the remaining plants alternate between the IDV(6) disturbance
/// and plain normal operation. Normal plants get an infinite onset so
/// every alarm they raise counts as a false alarm.
pub fn plant_scenario(config: &FleetConfig, plant: usize) -> Scenario {
    let n = config.plants.max(1);
    let attacked = ((config.attack_fraction * n as f64).round() as usize).min(n);
    // Bresenham spread: plant i is attacked iff the running total of
    // `attacked / n` crosses an integer at i.
    let is_attacked = |i: usize| (i + 1) * attacked / n > i * attacked / n;
    let kind = if is_attacked(plant) {
        let attack_rank = (0..plant).filter(|j| is_attacked(*j)).count();
        ATTACKS[attack_rank % ATTACKS.len()]
    } else {
        let clean_rank = (0..plant).filter(|j| !is_attacked(*j)).count();
        if clean_rank % 2 == 0 {
            ScenarioKind::Idv6
        } else {
            ScenarioKind::Normal
        }
    };
    let onset = if kind == ScenarioKind::Normal {
        f64::INFINITY
    } else {
        config.onset_hour
    };
    Scenario::short(
        kind,
        config.hours,
        onset,
        plant_seed(config.fleet_seed, plant),
    )
}

/// The capture file plant `i` reads (replay) or writes (recording).
fn capture_path(dir: &str, plant: usize) -> PathBuf {
    Path::new(dir).join(format!("plant_{plant}.cap"))
}

/// The store key plant `i` resolves its model under: cohort
/// `i % cohorts`. A pure function of the configuration, so the same
/// plant always scores against the same calibration lineage.
pub fn plant_key(config: &FleetConfig, plant: usize) -> PlantKey {
    PlantKey::cohort(plant % config.cohorts.max(1))
}

/// Rejects a capture recorded under a different scenario than the one
/// this configuration derives for the plant — replaying someone else's
/// tape would silently produce a report about the wrong fleet.
fn validate_capture(plant: usize, recorded: &Scenario, expected: &Scenario) -> Result<(), String> {
    let matches = recorded.kind == expected.kind
        && recorded.seed == expected.seed
        && recorded.duration_hours == expected.duration_hours
        && recorded.onset_hour == expected.onset_hour;
    if matches {
        Ok(())
    } else {
        Err(format!(
            "plant {plant}: capture was recorded for {:?} (seed {}, {} h, onset {}), \
             but this fleet derives {:?} (seed {}, {} h, onset {})",
            recorded.kind,
            recorded.seed,
            recorded.duration_hours,
            recorded.onset_hour,
            expected.kind,
            expected.seed,
            expected.duration_hours,
            expected.onset_hour,
        ))
    }
}

/// Records every plant's fieldbus traffic into `<dir>/plant_i.cap`, so a
/// later campaign with [`PlantSource::Replay`] pointed at `dir` scores
/// the exact same traffic without re-simulating the fleet.
///
/// The scenarios recorded are derived from `config` exactly as
/// [`FleetEngine::run`] derives them (via [`plant_scenario`]), so the
/// replayed report matches a live run of the same configuration
/// bit-for-bit.
///
/// # Errors
///
/// Returns [`FleetError::Capture`] if a run or a file write fails.
pub fn record_fleet_captures(
    config: &FleetConfig,
    dir: impl AsRef<Path>,
) -> Result<(), FleetError> {
    let dir = dir.as_ref();
    for plant in 0..config.plants {
        let scenario = plant_scenario(config, plant);
        let capture = temspc::capture_scenario(&scenario)
            .map_err(|e| FleetError::Capture(format!("plant {plant}: {e}")))?;
        let path = dir.join(format!("plant_{plant}.cap"));
        temspc::persistence::save_capture(&capture, &path)
            .map_err(|e| FleetError::Capture(format!("{}: {e}", path.display())))?;
    }
    Ok(())
}

/// Errors from a fleet campaign.
#[derive(Debug)]
pub enum FleetError {
    /// Checkpoint I/O or validation failure.
    Checkpoint(CheckpointError),
    /// Recording or loading a capture failed.
    Capture(String),
    /// The campaign was interrupted by a cancellation signal
    /// ([`FleetEngine::with_cancel`]): in-flight plants drained, pending
    /// ones were skipped, and the checkpoint (if configured) holds every
    /// completed record — resume with the same configuration to finish.
    Interrupted {
        /// Plant records completed (and checkpointed) before the stop.
        completed: usize,
        /// Total plants the campaign was asked for.
        total: usize,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Checkpoint(e) => write!(f, "{e}"),
            FleetError::Capture(msg) => write!(f, "capture failure: {msg}"),
            FleetError::Interrupted { completed, total } => write!(
                f,
                "campaign interrupted after {completed}/{total} plants \
                 (in-flight work drained; resume from the checkpoint to finish)"
            ),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Checkpoint(e) => Some(e),
            FleetError::Capture(_) | FleetError::Interrupted { .. } => None,
        }
    }
}

impl From<CheckpointError> for FleetError {
    fn from(e: CheckpointError) -> Self {
        FleetError::Checkpoint(e)
    }
}

/// Handles into the engine's metric family, shared by all workers.
struct FleetMetrics {
    scheduled: Counter,
    completed: Counter,
    failed: Counter,
    restarts: Counter,
    shutdowns: Counter,
    false_alarms: Counter,
    verdict_disturbance: Counter,
    verdict_intrusion: Counter,
    verdict_inconclusive: Counter,
    undetected: Counter,
    latency: Histogram,
}

impl FleetMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        FleetMetrics {
            scheduled: registry.counter(
                "fleet_plants_scheduled_total",
                "plants scheduled this campaign",
            ),
            completed: registry.counter("fleet_plants_completed_total", "plant jobs completed"),
            failed: registry.counter(
                "fleet_plants_failed_total",
                "plant jobs that exhausted their restart budget",
            ),
            restarts: registry.counter(
                "fleet_worker_restarts_total",
                "supervised restarts after worker panics",
            ),
            shutdowns: registry.counter(
                "fleet_interlock_shutdowns_total",
                "plants tripped into safe shutdown by an interlock",
            ),
            false_alarms: registry.counter(
                "fleet_false_alarms_total",
                "alarms raised before anomaly onset",
            ),
            verdict_disturbance: registry.counter(
                "fleet_verdict_disturbance_total",
                "plants diagnosed as disturbances",
            ),
            verdict_intrusion: registry.counter(
                "fleet_verdict_intrusion_total",
                "plants diagnosed as intrusions",
            ),
            verdict_inconclusive: registry.counter(
                "fleet_verdict_inconclusive_total",
                "plants with inconclusive diagnoses",
            ),
            undetected: registry.counter(
                "fleet_undetected_total",
                "completed plants with no detection",
            ),
            latency: registry.histogram(
                "fleet_detection_latency_hours",
                "hours from anomaly onset to first detection",
                &[0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0],
            ),
        }
    }

    fn record(&self, record: &PlantRecord) {
        self.completed.inc();
        self.restarts.add(u64::from(record.restarts));
        self.false_alarms.add(u64::from(record.false_alarms));
        if !record.completed {
            self.failed.inc();
            return;
        }
        if record.shutdown_hour.is_some() {
            self.shutdowns.inc();
        }
        match record.verdict {
            Some(temspc::Verdict::Disturbance) => self.verdict_disturbance.inc(),
            Some(temspc::Verdict::Intrusion) => self.verdict_intrusion.inc(),
            Some(temspc::Verdict::Inconclusive) => self.verdict_inconclusive.inc(),
            None => self.undetected.inc(),
        }
        if let Some(latency) = record.detection_latency_hours {
            self.latency.observe(latency);
        }
    }
}

/// Where plant monitors come from.
enum Models<'a> {
    /// One calibrated monitor shared by every plant.
    Shared(&'a DualMspc),
    /// Per-cohort monitors resolved through the sharded store.
    Store(&'a ModelStore),
}

/// A plant's resolved monitor plus the generation that identifies it in
/// checkpoints (0 = the shared monitor, which has no store lineage).
enum ResolvedMonitor<'a> {
    Shared(&'a DualMspc),
    Stored(ResolvedModel),
}

impl ResolvedMonitor<'_> {
    fn monitor(&self) -> &DualMspc {
        match self {
            ResolvedMonitor::Shared(m) => m,
            ResolvedMonitor::Stored(r) => &r.model,
        }
    }

    fn generation(&self) -> u64 {
        match self {
            ResolvedMonitor::Shared(_) => 0,
            ResolvedMonitor::Stored(r) => r.generation,
        }
    }
}

/// The concurrent multi-plant monitoring engine.
///
/// Resolves each plant's calibrated monitor (shared or per-cohort from a
/// [`ModelStore`]) and fans plant scenarios out over a [`WorkerPool`];
/// results stream back into an aggregate [`FleetReport`] and the
/// engine's [`MetricsRegistry`].
pub struct FleetEngine<'a> {
    models: Models<'a>,
    config: FleetConfig,
    registry: MetricsRegistry,
    checkpoint_path: Option<PathBuf>,
    /// Persistent workers, spawned once per engine (or shared via
    /// [`FleetEngine::with_pool`]); every [`FleetEngine::run`] call
    /// reuses them, so per-thread scoring scratches stay warm across
    /// campaigns.
    pool: WorkerPool,
    /// Cooperative cancellation flag ([`FleetEngine::with_cancel`]):
    /// once set, plants not yet started are skipped, in-flight plants
    /// drain normally, and [`FleetEngine::run`] checkpoints what it has
    /// before returning [`FleetError::Interrupted`].
    cancel: Option<&'a std::sync::atomic::AtomicBool>,
}

impl<'a> FleetEngine<'a> {
    /// An engine over one shared calibrated monitor.
    pub fn new(monitor: &'a DualMspc, config: FleetConfig) -> Self {
        let pool = WorkerPool::new(config.threads);
        FleetEngine {
            models: Models::Shared(monitor),
            config,
            registry: MetricsRegistry::new(),
            checkpoint_path: None,
            pool,
            cancel: None,
        }
    }

    /// An engine resolving per-plant monitors through a sharded
    /// [`ModelStore`]: plant `i` scores against cohort
    /// `i % config.cohorts` (lazily calibrated on first use). With
    /// `cohorts = 1` and a store whose calibration matches the shared
    /// monitor's, the report reproduces [`FleetEngine::new`]
    /// bit-for-bit.
    pub fn with_store(store: &'a ModelStore, config: FleetConfig) -> Self {
        let pool = WorkerPool::new(config.threads);
        FleetEngine {
            models: Models::Store(store),
            config,
            registry: MetricsRegistry::new(),
            checkpoint_path: None,
            pool,
            cancel: None,
        }
    }

    /// Dispatches this engine's campaigns onto `pool` instead of its own
    /// workers — several engines (or calibration campaigns) can share one
    /// set of resident threads and their warmed per-thread caches. The
    /// pool's thread count takes precedence over `config.threads`.
    #[must_use]
    pub fn with_pool(mut self, pool: WorkerPool) -> Self {
        self.pool = pool;
        self
    }

    /// The persistent worker pool this engine dispatches onto; clone it
    /// to drive other work (e.g. pooled calibration) on the same
    /// resident threads.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Enables periodic checkpointing to `path`; if the file already
    /// holds a checkpoint of this configuration, its plants are skipped
    /// on [`FleetEngine::run`] and their records merged into the report.
    #[must_use]
    pub fn with_checkpoint(mut self, path: impl AsRef<Path>) -> Self {
        self.checkpoint_path = Some(path.as_ref().to_path_buf());
        self
    }

    /// Installs a cooperative cancellation flag (typically set from a
    /// SIGINT/SIGTERM handler). Once the flag reads `true`, plants not
    /// yet started are skipped, in-flight plants drain normally, and
    /// [`FleetEngine::run`] flushes a checkpoint of every completed
    /// record before returning [`FleetError::Interrupted`].
    #[must_use]
    pub fn with_cancel(mut self, flag: &'a std::sync::atomic::AtomicBool) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The engine's metrics (counters, gauges, latency histogram).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Resolves the monitor plant `plant` scores against.
    fn resolve_monitor(&self, plant: usize) -> Result<ResolvedMonitor<'a>, String> {
        match &self.models {
            Models::Shared(monitor) => Ok(ResolvedMonitor::Shared(monitor)),
            Models::Store(store) => {
                let key = plant_key(&self.config, plant);
                store
                    .get(&key)
                    .map(ResolvedMonitor::Stored)
                    .map_err(|e| format!("model store key '{key}': {e}"))
            }
        }
    }

    /// Produces one plant's outcome from the configured source: a live
    /// closed-loop run, or a recorded capture scored offline. Both paths
    /// end in the same scoring code, so for a faithful capture the
    /// outcome is bit-identical either way.
    fn execute_plant(
        &self,
        monitor: &DualMspc,
        plant: usize,
        scenario: &Scenario,
    ) -> Result<ScenarioOutcome, String> {
        match &self.config.source {
            PlantSource::Live => monitor.run_scenario(scenario).map_err(|e| e.to_string()),
            PlantSource::Replay(dir) => {
                let path = capture_path(dir, plant);
                let capture = temspc::persistence::load_capture(&path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                validate_capture(plant, &capture.scenario, scenario)?;
                monitor
                    .score_capture(&capture)
                    .map_err(|e| format!("{}: {e}", path.display()))
            }
            PlantSource::Socket(addr) => Err(format!(
                "plant {plant} is sourced from live socket ingestion at {addr}; \
                 run the push-model front half (`temspc ingest serve --addr {addr}`) \
                 instead of the pull-model fleet engine"
            )),
        }
    }

    /// Runs one supervised plant job to a finished record.
    fn run_plant(&self, plant: usize) -> PlantRecord {
        let scenario = plant_scenario(&self.config, plant);
        let inject = self
            .config
            .inject_panic_plants
            .contains(&(plant as u32))
            .then(|| std::sync::atomic::AtomicBool::new(true));
        let supervised = supervise(self.config.supervision, || {
            if let Some(armed) = &inject {
                if armed.swap(false, std::sync::atomic::Ordering::Relaxed) {
                    panic!("chaos: injected panic for plant {plant}");
                }
            }
            let resolved = self.resolve_monitor(plant)?;
            let outcome = self.execute_plant(resolved.monitor(), plant, &scenario)?;
            let verdict = diagnose(resolved.monitor(), &outcome, VerdictThresholds::default())
                .map(|d| d.verdict);
            Ok::<_, String>((outcome, verdict, resolved.generation()))
        });
        let restarts = supervised.restarts;
        let fault = supervised.panics.last().cloned();
        match supervised.result {
            Some(Ok((outcome, verdict, model_generation))) => PlantRecord {
                plant: plant as u32,
                kind: scenario.kind,
                seed: scenario.seed,
                completed: true,
                restarts,
                fault,
                detection_latency_hours: outcome.detection.run_length(scenario.onset_hour),
                false_alarms: outcome.false_alarms as u32,
                verdict,
                shutdown_hour: outcome.run.shutdown.map(|(_, hour)| hour),
                model_generation,
            },
            Some(Err(message)) => PlantRecord {
                plant: plant as u32,
                kind: scenario.kind,
                seed: scenario.seed,
                completed: false,
                restarts,
                fault: Some(message),
                detection_latency_hours: None,
                false_alarms: 0,
                verdict: None,
                shutdown_hour: None,
                model_generation: 0,
            },
            None => PlantRecord {
                plant: plant as u32,
                kind: scenario.kind,
                seed: scenario.seed,
                completed: false,
                restarts,
                fault,
                detection_latency_hours: None,
                false_alarms: 0,
                verdict: None,
                shutdown_hour: None,
                model_generation: 0,
            },
        }
    }

    /// Runs the campaign: schedules every plant not already covered by
    /// the checkpoint, streams records into the report (checkpointing
    /// periodically), and returns the aggregate.
    ///
    /// The report is identical for any thread count: each record is a
    /// pure function of `(config, plant index)` and records are sorted
    /// by plant index.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError`] on checkpoint I/O or validation failure.
    pub fn run(&self) -> Result<FleetReport, FleetError> {
        let mut records: Vec<PlantRecord> = match &self.checkpoint_path {
            Some(path) => checkpoint::resume(path, &self.config)?,
            None => Vec::new(),
        };
        records.retain(|r| (r.plant as usize) < self.config.plants);
        if let Models::Store(store) = &self.models {
            // Resume consistency: only keep records scored by the model
            // generation the store currently serves for their cohort.
            // Records from an older generation (the key was re-calibrated
            // since the checkpoint) and failed records (generation 0)
            // re-run against the current model instead of mixing
            // calibrations inside one report.
            records.retain(|r| {
                let key = plant_key(&self.config, r.plant as usize);
                matches!(
                    store.generation_on_disk(&key),
                    Ok(Some(gen)) if gen == r.model_generation
                )
            });
        }
        let done: std::collections::BTreeSet<u32> = records.iter().map(|r| r.plant).collect();
        let pending: Vec<usize> = (0..self.config.plants)
            .filter(|i| !done.contains(&(*i as u32)))
            .collect();

        let metrics = FleetMetrics::register(&self.registry);
        metrics.scheduled.add(pending.len() as u64);
        let progress = self
            .registry
            .gauge("fleet_progress_ratio", "completed plants / total plants");
        progress.set(done.len() as f64 / self.config.plants.max(1) as f64);

        let mut since_checkpoint = 0usize;
        let mut checkpoint_failure: Option<CheckpointError> = None;
        let cancelled =
            || matches!(self.cancel, Some(flag) if flag.load(std::sync::atomic::Ordering::SeqCst));
        self.pool.run(
            pending.len(),
            |j| {
                if cancelled() {
                    None
                } else {
                    Some(self.run_plant(pending[j]))
                }
            },
            |_, record| {
                let Some(record) = record else { return };
                metrics.record(&record);
                records.push(record);
                progress.set(records.len() as f64 / self.config.plants.max(1) as f64);
                since_checkpoint += 1;
                if checkpoint_failure.is_none()
                    && self.config.checkpoint_every > 0
                    && since_checkpoint >= self.config.checkpoint_every
                {
                    since_checkpoint = 0;
                    if let Err(e) = self.save_checkpoint(&records) {
                        checkpoint_failure = Some(e);
                    }
                }
            },
        );
        if let Some(e) = checkpoint_failure {
            return Err(e.into());
        }
        if cancelled() && records.len() < self.config.plants {
            records.sort_by_key(|r| r.plant);
            self.save_checkpoint(&records)?;
            return Err(FleetError::Interrupted {
                completed: records.len(),
                total: self.config.plants,
            });
        }
        let report = FleetReport::new(records);
        if self.checkpoint_path.is_some() {
            self.save_checkpoint(&report.records)?;
        }
        Ok(report)
    }

    fn save_checkpoint(&self, records: &[PlantRecord]) -> Result<(), CheckpointError> {
        let Some(path) = &self.checkpoint_path else {
            return Ok(());
        };
        let mut snapshot = FleetCheckpoint {
            config: self.config.clone(),
            records: records.to_vec(),
        };
        snapshot.records.sort_by_key(|r| r.plant);
        checkpoint::save(&snapshot, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temspc::CalibrationConfig;

    fn quick_monitor() -> DualMspc {
        DualMspc::calibrate(&CalibrationConfig {
            runs: 3,
            duration_hours: 1.0,
            record_every: 10,
            base_seed: 100,
            threads: 0,
        })
        .unwrap()
    }

    fn quick_config(plants: usize, threads: usize) -> FleetConfig {
        FleetConfig {
            plants,
            threads,
            hours: 1.0,
            onset_hour: 0.3,
            attack_fraction: 0.5,
            fleet_seed: 7,
            checkpoint_every: 0,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn scenario_assignment_is_deterministic_and_spread() {
        let config = quick_config(8, 1);
        let kinds: Vec<ScenarioKind> = (0..8).map(|i| plant_scenario(&config, i).kind).collect();
        // Same config → same assignment.
        let again: Vec<ScenarioKind> = (0..8).map(|i| plant_scenario(&config, i).kind).collect();
        assert_eq!(kinds, again);
        // Half the plants are attacked (attack_fraction 0.5).
        let attacked = kinds.iter().filter(|k| k.is_attack()).count();
        assert_eq!(attacked, 4);
        // All three attack kinds appear.
        assert!(kinds.contains(&ScenarioKind::IntegrityXmv3));
        assert!(kinds.contains(&ScenarioKind::IntegrityXmeas1));
        assert!(kinds.contains(&ScenarioKind::DosXmv3));
        // Seeds are pairwise distinct.
        let mut seeds: Vec<u64> = (0..8).map(|i| plant_scenario(&config, i).seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8);
    }

    #[test]
    fn zero_attack_fraction_has_no_attacks() {
        let config = FleetConfig {
            attack_fraction: 0.0,
            ..quick_config(6, 1)
        };
        assert!((0..6).all(|i| !plant_scenario(&config, i).kind.is_attack()));
    }

    #[test]
    fn full_attack_fraction_attacks_everything() {
        let config = FleetConfig {
            attack_fraction: 1.0,
            ..quick_config(6, 1)
        };
        assert!((0..6).all(|i| plant_scenario(&config, i).kind.is_attack()));
    }

    #[test]
    fn normal_plants_have_infinite_onset() {
        let config = FleetConfig {
            attack_fraction: 0.0,
            ..quick_config(4, 1)
        };
        let normals: Vec<Scenario> = (0..4)
            .map(|i| plant_scenario(&config, i))
            .filter(|s| s.kind == ScenarioKind::Normal)
            .collect();
        assert!(!normals.is_empty());
        assert!(normals.iter().all(|s| s.onset_hour.is_infinite()));
    }

    #[test]
    fn replayed_fleet_matches_live_fleet() {
        let monitor = quick_monitor();
        let dir = std::env::temp_dir().join("temspc_fleet_replay_test");
        let _ = std::fs::remove_dir_all(&dir);
        let config = quick_config(3, 2);
        record_fleet_captures(&config, &dir).unwrap();

        let live = FleetEngine::new(&monitor, config.clone()).run().unwrap();
        let replay_config = FleetConfig {
            source: PlantSource::Replay(dir.to_string_lossy().into_owned()),
            ..config
        };
        let replayed = FleetEngine::new(&monitor, replay_config).run().unwrap();
        assert_eq!(live.records.len(), replayed.records.len());
        for (a, b) in live.records.iter().zip(&replayed.records) {
            assert_eq!(a.plant, b.plant);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.verdict, b.verdict);
            assert_eq!(a.false_alarms, b.false_alarms);
            assert_eq!(
                a.detection_latency_hours.map(f64::to_bits),
                b.detection_latency_hours.map(f64::to_bits)
            );
            assert_eq!(
                a.shutdown_hour.map(f64::to_bits),
                b.shutdown_hour.map(f64::to_bits)
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_with_missing_captures_fails_the_plants_not_the_fleet() {
        let monitor = quick_monitor();
        let config = FleetConfig {
            source: PlantSource::Replay("/nonexistent/temspc/captures".into()),
            ..quick_config(2, 1)
        };
        let report = FleetEngine::new(&monitor, config).run().unwrap();
        assert_eq!(report.failed_plants().len(), 2);
        assert!(report.records.iter().all(|r| !r.completed));
        assert!(report.records[0]
            .fault
            .as_deref()
            .is_some_and(|f| f.contains("plant_0.cap")));
    }

    #[test]
    fn replaying_the_wrong_tape_is_rejected() {
        let monitor = quick_monitor();
        let dir = std::env::temp_dir().join("temspc_fleet_wrong_tape_test");
        let _ = std::fs::remove_dir_all(&dir);
        let config = quick_config(1, 1);
        record_fleet_captures(&config, &dir).unwrap();
        // Same capture files, different fleet seed → scenario mismatch.
        let wrong = FleetConfig {
            fleet_seed: config.fleet_seed + 1,
            source: PlantSource::Replay(dir.to_string_lossy().into_owned()),
            ..config
        };
        let report = FleetEngine::new(&monitor, wrong).run().unwrap();
        assert!(!report.records[0].completed);
        assert!(report.records[0]
            .fault
            .as_deref()
            .is_some_and(|f| f.contains("recorded for")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pre_set_cancel_flag_interrupts_and_checkpoints_completed_work() {
        let monitor = quick_monitor();
        let path = std::env::temp_dir().join("temspc_fleet_cancel_test.tpb");
        let _ = std::fs::remove_file(&path);
        let config = quick_config(3, 1);
        let flag = std::sync::atomic::AtomicBool::new(true);
        let engine = FleetEngine::new(&monitor, config.clone())
            .with_checkpoint(&path)
            .with_cancel(&flag);
        match engine.run() {
            Err(FleetError::Interrupted { completed, total }) => {
                assert_eq!(completed, 0);
                assert_eq!(total, 3);
            }
            other => panic!("expected Interrupted, got {other:?}"),
        }
        // Clearing the flag resumes from the checkpoint to a full report.
        flag.store(false, std::sync::atomic::Ordering::SeqCst);
        let report = engine.run().unwrap();
        assert_eq!(report.records.len(), 3);
        assert!(report.failed_plants().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn socket_source_plants_fail_with_a_pointer_to_the_server() {
        let monitor = quick_monitor();
        let config = FleetConfig {
            source: PlantSource::Socket("127.0.0.1:7450".into()),
            ..quick_config(1, 1)
        };
        let report = FleetEngine::new(&monitor, config).run().unwrap();
        assert!(!report.records[0].completed);
        assert!(report.records[0]
            .fault
            .as_deref()
            .is_some_and(|f| f.contains("temspc ingest serve")));
    }

    #[test]
    fn small_fleet_produces_full_report_and_metrics() {
        let monitor = quick_monitor();
        let engine = FleetEngine::new(&monitor, quick_config(4, 2));
        let report = engine.run().unwrap();
        assert_eq!(report.records.len(), 4);
        assert!(report.failed_plants().is_empty());
        let text = engine.metrics().expose();
        assert!(text.contains("fleet_plants_completed_total 4"));
        assert!(text.contains("fleet_progress_ratio 1"));
    }
}
