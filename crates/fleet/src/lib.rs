//! # temspc-fleet — concurrent multi-plant monitoring
//!
//! The paper evaluates one plant at a time; an operator of a real
//! control network watches many. This crate scales the dual-level MSPC
//! monitor to a *fleet*: N independent plant+controller+fieldbus closed
//! loops run concurrently over a worker pool, share one calibrated
//! [`temspc::DualMspc`], and stream their outcomes into an aggregate
//! report — a confusion matrix of disturbance-vs-intrusion verdicts plus
//! detection-latency statistics.
//!
//! Modules:
//!
//! * [`pool`] — a reusable scoped-thread worker pool with bounded result
//!   channels (backpressure) and index-keyed jobs (deterministic
//!   reassembly for any thread count);
//! * [`engine`] — the fleet scheduler: derives each plant's scenario
//!   deterministically from the fleet seed, fans jobs out, aggregates;
//! * [`metrics`] — an atomics-based metrics registry (counters, gauges,
//!   latency histograms) with Prometheus-style text exposition;
//! * [`supervisor`] — panic capture per worker, bounded restart from the
//!   plant's own seed, graceful degradation on interlock trips;
//! * [`checkpoint`] — periodic fleet snapshots in the TPB format and
//!   resume;
//! * [`report`] — per-plant records and the aggregate fleet report;
//! * [`calibrate`] — the pooled calibration campaign, byte-identical to
//!   the sequential one in `temspc`;
//! * [`store`] — the sharded per-plant calibration store: keyed TPB
//!   persistence, bounded LRU residency, hot reload, and deterministic
//!   calibrate-on-miss.
//!
//! ```no_run
//! use temspc::{CalibrationConfig, DualMspc};
//! use temspc_fleet::{FleetConfig, FleetEngine};
//!
//! let monitor = DualMspc::calibrate(&CalibrationConfig::quick()).unwrap();
//! let config = FleetConfig {
//!     plants: 8,
//!     attack_fraction: 0.25,
//!     ..FleetConfig::default()
//! };
//! let report = FleetEngine::new(&monitor, config).run().unwrap();
//! println!("{report}");
//! ```

#![warn(missing_docs)]

pub mod calibrate;
pub mod checkpoint;
pub mod engine;
pub mod metrics;
pub mod pool;
pub mod report;
pub mod store;
pub mod supervisor;

pub use calibrate::{
    calibrate, collect_calibration_data_pooled, collect_calibration_data_pooled_on, CalibrateError,
};
pub use checkpoint::{CheckpointError, FleetCheckpoint};
pub use engine::{
    plant_key, plant_scenario, plant_seed, record_fleet_captures, FleetConfig, FleetEngine,
    FleetError, PlantSource,
};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use pool::WorkerPool;
pub use report::{FleetReport, Outcome, PlantRecord, Truth};
pub use store::{ModelStore, PlantKey, ResolvedModel, StoreConfig, StoreError};
pub use supervisor::{supervise, Supervised, SupervisionPolicy};

/// Compile-time assertion that `T` can be shared across the pool's
/// worker threads.
pub const fn assert_send_sync<T: Send + Sync>() {}

// The types the fleet moves between threads must stay thread-safe; a
// `Rc`/`RefCell` slipping into one of them should fail the build here,
// not in a distant generic bound.
const _: () = {
    assert_send_sync::<temspc::DualMspc>();
    assert_send_sync::<temspc::Scenario>();
    assert_send_sync::<temspc::ScenarioKind>();
    assert_send_sync::<temspc::Verdict>();
    assert_send_sync::<temspc::CalibrationConfig>();
    assert_send_sync::<temspc::MonitorConfig>();
    assert_send_sync::<temspc_linalg::Matrix>();
    assert_send_sync::<FleetConfig>();
    assert_send_sync::<PlantRecord>();
    assert_send_sync::<FleetReport>();
    assert_send_sync::<FleetCheckpoint>();
    assert_send_sync::<MetricsRegistry>();
    assert_send_sync::<WorkerPool>();
    assert_send_sync::<ModelStore>();
    assert_send_sync::<PlantKey>();
};
