//! An atomics-based metrics registry with Prometheus-style text
//! exposition.
//!
//! Workers update counters, gauges and histograms lock-free from any
//! thread; the registry serializes a consistent snapshot in the
//! [Prometheus text format] (`# HELP` / `# TYPE` headers, cumulative
//! histogram buckets with an `le` label and a `+Inf` catch-all).
//!
//! [Prometheus text format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (stored as `f64` bits).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (which may be negative) atomically — the
    /// lost-update-free way for concurrent workers to maintain a shared
    /// level gauge such as a current-connection count.
    pub fn add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Subtracts 1.
    pub fn dec(&self) {
        self.add(-1.0);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries; the
    /// last is the overflow/+Inf bucket).
    counts: Vec<AtomicU64>,
    /// Sum of observations, as `f64` bits CAS-accumulated.
    sum_bits: AtomicU64,
    /// Total number of observations.
    count: AtomicU64,
}

/// A histogram with fixed bucket bounds, e.g. detection latencies.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn with_bounds(bounds: &[f64]) -> Self {
        let mut b = bounds.to_vec();
        b.sort_by(f64::total_cmp);
        b.dedup();
        let counts = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: b,
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let inner = &self.0;
        let idx = inner
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(inner.bounds.len());
        inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut current = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation, or `None` before the first one.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() / n as f64)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    metric: Metric,
}

/// A registry of named metrics.
///
/// Registration takes a short lock; the returned handles update their
/// metric lock-free and can be cloned freely across worker threads.
/// Registering a name twice returns a handle to the *same* underlying
/// metric (and panics if the kinds disagree — that is a programming
/// error, not an operational condition).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, help: &str, fresh: Metric) -> Metric {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        if let Some(existing) = entries.iter().find(|e| e.name == name) {
            let compatible = matches!(
                (&existing.metric, &fresh),
                (Metric::Counter(_), Metric::Counter(_))
                    | (Metric::Gauge(_), Metric::Gauge(_))
                    | (Metric::Histogram(_), Metric::Histogram(_))
            );
            assert!(
                compatible,
                "metric '{name}' re-registered as a different kind"
            );
            return existing.metric.clone();
        }
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            metric: fresh.clone(),
        });
        fresh
    }

    /// Registers (or retrieves) a counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match self.register(name, help, Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.register(name, help, Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or retrieves) a histogram with the given finite bucket
    /// upper bounds (a `+Inf` bucket is always appended).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        match self.register(
            name,
            help,
            Metric::Histogram(Histogram::with_bounds(bounds)),
        ) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Serializes every metric in the Prometheus text exposition format,
    /// in registration order.
    pub fn expose(&self) -> String {
        use std::fmt::Write as _;
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for e in entries.iter() {
            if !e.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
            }
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {} counter", e.name);
                    let _ = writeln!(out, "{} {}", e.name, c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {} gauge", e.name);
                    let _ = writeln!(out, "{} {}", e.name, g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {} histogram", e.name);
                    let inner = &h.0;
                    let mut cumulative = 0u64;
                    for (bound, count) in inner.bounds.iter().zip(&inner.counts) {
                        cumulative += count.load(Ordering::Relaxed);
                        let _ = writeln!(out, "{}_bucket{{le=\"{bound}\"}} {cumulative}", e.name);
                    }
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", e.name, h.count());
                    let _ = writeln!(out, "{}_sum {}", e.name, h.sum());
                    let _ = writeln!(out, "{}_count {}", e.name, h.count());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("fleet_plants_total", "plants scheduled");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same metric.
        assert_eq!(reg.counter("fleet_plants_total", "").get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("fleet_progress_ratio", "completed / scheduled");
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
        g.set(0.25);
        assert_eq!(g.get(), 0.25);
        g.add(1.5);
        assert_eq!(g.get(), 1.75);
        g.add(-0.75);
        assert_eq!(g.get(), 1.0);
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 2.0);
    }

    #[test]
    fn concurrent_gauge_deltas_are_lossless() {
        // Connection-count pattern: many threads inc on open, dec on
        // close; the CAS loop must not lose updates the way racing
        // get-then-set would.
        let reg = MetricsRegistry::new();
        let g = reg.gauge("ingest_connections_current", "");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let g = g.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        g.inc();
                        g.add(2.0);
                        g.dec();
                        g.add(-2.0);
                    }
                    g.inc();
                });
            }
        });
        assert_eq!(g.get(), 4.0);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("latency_hours", "detection latency", &[0.1, 1.0, 10.0]);
        for v in [0.05, 0.5, 0.5, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 56.05).abs() < 1e-9);
        assert!((h.mean().unwrap() - 11.21).abs() < 1e-9);
        let text = reg.expose();
        assert!(text.contains("latency_hours_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("latency_hours_bucket{le=\"1\"} 3"));
        assert!(text.contains("latency_hours_bucket{le=\"10\"} 4"));
        assert!(text.contains("latency_hours_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("latency_hours_count 5"));
    }

    #[test]
    fn exposition_has_headers() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", "things").inc();
        reg.gauge("b_ratio", "stuff").set(1.5);
        let text = reg.expose();
        assert!(text.contains("# HELP a_total things"));
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("a_total 1"));
        assert!(text.contains("# TYPE b_ratio gauge"));
        assert!(text.contains("b_ratio 1.5"));
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hits_total", "");
        let h = reg.histogram("obs", "", &[10.0]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(f64::from(i % 20));
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x", "");
        reg.gauge("x", "");
    }
}
