//! A persistent worker pool with bounded result channels.
//!
//! Workers are spawned **once**, when the pool is constructed, and live
//! until the last handle to the pool is dropped. Each [`WorkerPool::run`]
//! call dispatches one *batch* to the resident workers: jobs are indexed
//! `0..n` and pulled through an atomic cursor (cheap work stealing: a
//! worker that finishes early takes the next undone index). Results
//! stream back to the *caller's* thread through a bounded channel, so a
//! slow consumer exerts backpressure on the workers instead of letting
//! results pile up unboundedly.
//!
//! Keeping the threads alive across batches is what makes per-thread
//! caches pay off: the `thread_local!` scoring scratches in `temspc-mspc`
//! (and the closed-loop `RunScratch` in `temspc`) warm up on the first
//! fleet run or calibration campaign and stay warm for every subsequent
//! one, instead of going cold with each scoped spawn.
//!
//! The pool is deliberately tiny and generic: it knows nothing about
//! plants or MSPC. `temspc_fleet::calibrate` and the fleet engine both
//! fan out over it, and because jobs are keyed by index, callers can
//! reassemble results in deterministic job order regardless of thread
//! count.
//!
//! # Dispatch protocol
//!
//! `run` packages the whole per-worker loop (pull an index, run the job,
//! send the result) into one closure, erases its lifetime, and publishes
//! a pointer to it under the dispatch mutex together with a bumped epoch.
//! Every resident worker observes each epoch exactly once, calls the
//! closure, and counts down a completion latch when it returns. `run`
//! does not return — not even by unwinding — until the latch reaches
//! zero, which is what makes the lifetime erasure sound: the closure and
//! everything it borrows outlive every worker's use of them. Batches are
//! serialized by a dispatch lock, so clones of one pool can be driven
//! from several threads safely.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Poison-tolerant lock: every mutex in this module guards state that is
/// left consistent on all unwind paths (panic payloads are *propagated*
/// through `run`, which unwinds past held guards), so a poisoned flag
/// carries no information here.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Type-erased pointer to the batch body the workers run. Only ever
/// dereferenced between the epoch publication and the completion latch
/// release, while the `run` frame that owns the closure is pinned.
struct BatchPtr(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (shared by all workers by design) and the
// dispatch protocol guarantees it outlives every dereference.
unsafe impl Send for BatchPtr {}

/// Dispatcher state shared with the resident workers.
struct DispatchState {
    /// Bumped once per batch; workers run each epoch exactly once.
    epoch: u64,
    /// The current batch body, present while its epoch is live.
    batch: Option<BatchPtr>,
    /// Set on drop of the last pool handle; workers exit.
    shutdown: bool,
}

struct Shared {
    state: Mutex<DispatchState>,
    job_ready: Condvar,
}

/// Counts workers still inside the current batch body.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut remaining = lock(&self.remaining);
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = lock(&self.remaining);
        while *remaining > 0 {
            remaining = self
                .done
                .wait(remaining)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The owning core: drops signal shutdown and join every worker.
struct PoolCore {
    shared: Arc<Shared>,
    /// Serializes batches across clones of the pool.
    dispatch_lock: Mutex<()>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for PoolCore {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        for handle in lock(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut seen = 0u64;
    loop {
        let batch = {
            let mut state = lock(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen {
                    seen = state.epoch;
                    let ptr = state
                        .batch
                        .as_ref()
                        .expect("batch pointer published with its epoch")
                        .0;
                    break BatchPtr(ptr);
                }
                state = shared
                    .job_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // SAFETY: the dispatcher pins the `run` frame (and thus the
        // closure and its borrows) until every worker has returned from
        // this call and counted the completion latch down.
        let body = unsafe { &*batch.0 };
        body();
    }
}

/// Result-channel message: job results interleaved with per-worker
/// completion markers, so the caller knows when the batch has drained
/// without relying on sender-drop semantics (the workers only borrow the
/// sender).
enum Msg<T> {
    Result(usize, T),
    WorkerDone,
}

/// A fixed-size pool of persistent worker threads.
///
/// Threads are spawned once, in [`WorkerPool::new`], and shared by every
/// clone of the pool; per-thread state (`thread_local!` scratches) stays
/// warm across [`WorkerPool::run`] calls. A pool of one thread spawns
/// nothing and runs every batch inline on the caller.
pub struct WorkerPool {
    threads: usize,
    queue_depth: usize,
    core: Arc<PoolCore>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("queue_depth", &self.queue_depth)
            .finish_non_exhaustive()
    }
}

impl Clone for WorkerPool {
    /// Clones share the same resident workers (and their warmed
    /// per-thread state); only the queue-depth setting is per-handle.
    fn clone(&self) -> Self {
        WorkerPool {
            threads: self.threads,
            queue_depth: self.queue_depth,
            core: Arc::clone(&self.core),
        }
    }
}

impl WorkerPool {
    /// A pool with `threads` persistent workers (0 → one per available
    /// CPU core, capped at 16).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(16)
        } else {
            threads
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(DispatchState {
                epoch: 0,
                batch: None,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
        });
        let mut handles = Vec::new();
        if threads > 1 {
            for i in 0..threads {
                let shared = Arc::clone(&shared);
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("temspc-pool-{i}"))
                        .spawn(move || worker_loop(shared))
                        .expect("spawn pool worker"),
                );
            }
        }
        WorkerPool {
            threads,
            queue_depth: 2 * threads,
            core: Arc::new(PoolCore {
                shared,
                dispatch_lock: Mutex::new(()),
                handles: Mutex::new(handles),
            }),
        }
    }

    /// Caps the in-flight result queue at `depth` (default
    /// `2 × threads`). Workers block on delivery once the consumer lags
    /// this far behind.
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// The number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs jobs `0..n_jobs` through `work`, delivering every
    /// `(index, result)` pair to `sink` on the calling thread as it
    /// arrives (arrival order is nondeterministic; indices are not).
    ///
    /// Worker panics propagate to the caller after the batch has fully
    /// drained; the pool itself survives and stays usable.
    pub fn run<T, W, S>(&self, n_jobs: usize, work: W, mut sink: S)
    where
        T: Send,
        W: Fn(usize) -> T + Sync,
        S: FnMut(usize, T),
    {
        if n_jobs == 0 {
            return;
        }
        if self.threads.min(n_jobs) <= 1 {
            // Degenerate pool: run inline, preserving delivery semantics.
            for index in 0..n_jobs {
                sink(index, work(index));
            }
            return;
        }

        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::sync_channel::<Msg<T>>(self.queue_depth);
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let latch = Latch::new(self.threads);
        let body = || {
            let outcome = catch_unwind(AssertUnwindSafe(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= n_jobs {
                    break;
                }
                // A send failure means the receiver is gone, which only
                // happens when the caller is unwinding already.
                if tx.send(Msg::Result(index, work(index))).is_err() {
                    break;
                }
            }));
            if let Err(payload) = outcome {
                let mut slot = lock(&panic_slot);
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let _ = tx.send(Msg::WorkerDone);
            latch.count_down();
        };

        // One batch at a time, even across clones of this pool.
        let _dispatch = lock(&self.core.dispatch_lock);

        let body_ref: &(dyn Fn() + Sync) = &body;
        // SAFETY: `CompletionGuard` below pins this frame until every
        // worker has left `body`, even if `sink` panics mid-drain.
        let erased = unsafe {
            std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(body_ref)
        };
        {
            let mut state = lock(&self.core.shared.state);
            state.epoch += 1;
            state.batch = Some(BatchPtr(erased as *const _));
        }
        self.core.shared.job_ready.notify_all();

        /// Waits out the batch on every exit path (return or unwind) and
        /// retires the published pointer.
        struct CompletionGuard<'a> {
            latch: &'a Latch,
            shared: &'a Shared,
        }
        impl Drop for CompletionGuard<'_> {
            fn drop(&mut self) {
                self.latch.wait();
                lock(&self.shared.state).batch = None;
            }
        }
        let guard = CompletionGuard {
            latch: &latch,
            shared: &self.core.shared,
        };

        let mut workers_done = 0;
        while workers_done < self.threads {
            match rx.recv() {
                Ok(Msg::Result(index, result)) => sink(index, result),
                Ok(Msg::WorkerDone) => workers_done += 1,
                // Unreachable: this frame owns a live sender. Kept as a
                // loop exit rather than a panic for robustness.
                Err(_) => break,
            }
        }
        drop(guard);
        let payload = lock(&panic_slot).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Runs jobs `0..n_jobs` and collects the results *in job order*,
    /// independent of the thread count.
    pub fn map<T, W>(&self, n_jobs: usize, work: W) -> Vec<T>
    where
        T: Send,
        W: Fn(usize) -> T + Sync,
    {
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n_jobs);
        slots.resize_with(n_jobs, || None);
        self.run(n_jobs, work, |index, result| slots[index] = Some(result));
        slots
            .into_iter()
            .map(|s| s.expect("every job index delivered exactly once"))
            .collect()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_job_order() {
        let pool = WorkerPool::new(4);
        let out = pool.map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let pool = WorkerPool::new(3);
        pool.run(
            57,
            |_| {
                ran.fetch_add(1, Ordering::Relaxed);
            },
            |_, ()| {},
        );
        assert_eq!(ran.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn single_thread_runs_inline_in_order() {
        let pool = WorkerPool::new(1);
        let mut seen = Vec::new();
        pool.run(10, |i| i, |index, v| seen.push((index, v)));
        assert_eq!(seen, (0..10).map(|i| (i, i)).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_is_a_noop() {
        let pool = WorkerPool::new(4);
        let out: Vec<usize> = pool.map(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn results_match_across_thread_counts() {
        let expect: Vec<u64> = (0..40u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.map(40, |i| (i as u64).wrapping_mul(0x9E37)), expect);
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(|| {
            pool.run(
                8,
                |i| {
                    if i == 5 {
                        panic!("job 5 exploded");
                    }
                    i
                },
                |_, _| {},
            );
        });
        assert!(result.is_err());
    }

    #[test]
    fn pool_survives_a_panicking_batch() {
        // The workers catch job panics; the *same* pool must keep
        // delivering complete batches afterwards.
        let pool = WorkerPool::new(2);
        let poisoned = std::panic::catch_unwind(|| {
            pool.run(
                4,
                |i| {
                    if i == 1 {
                        panic!("boom");
                    }
                    i
                },
                |_, _| {},
            );
        });
        assert!(poisoned.is_err());
        assert_eq!(pool.map(20, |i| i + 1), (1..=20).collect::<Vec<_>>());
    }

    #[test]
    fn consecutive_runs_on_one_pool_deliver_every_index_exactly_once() {
        // Persistent-pool regression: two back-to-back batches on the
        // same workers must each deliver the full index set once — no
        // leakage of cursor or epoch state between batches.
        let pool = WorkerPool::new(4);
        for batch in 0..2 {
            let mut deliveries = vec![0usize; 33];
            pool.run(
                33,
                |i| i * 2 + batch,
                |index, v| {
                    assert_eq!(v, index * 2 + batch);
                    deliveries[index] += 1;
                },
            );
            assert!(deliveries.iter().all(|&n| n == 1), "batch {batch}");
        }
    }

    #[test]
    fn clones_share_the_same_workers() {
        let pool = WorkerPool::new(3);
        let clone = pool.clone();
        let tid_a = pool.map(8, |_| std::thread::current().id());
        let tid_b = clone.map(8, |_| std::thread::current().id());
        let all: std::collections::HashSet<_> = tid_a.iter().chain(&tid_b).collect();
        // Both handles dispatched onto the same 3 resident threads.
        assert!(all.len() <= 3, "saw {} distinct worker threads", all.len());
    }

    #[test]
    fn thread_local_state_survives_across_runs() {
        thread_local! {
            static HITS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
        }
        let pool = WorkerPool::new(2);
        let bump = |_| {
            HITS.with(|h| {
                h.set(h.get() + 1);
                h.get()
            })
        };
        let first: usize = pool.map(16, bump).into_iter().max().unwrap();
        let second: usize = pool.map(16, bump).into_iter().max().unwrap();
        // Were the threads respawned per run, the second batch would
        // restart its counters near 1 instead of continuing past the
        // first batch's totals.
        assert!(second > first, "first {first}, second {second}");
    }

    #[test]
    fn jobs_can_borrow_caller_state() {
        let shared = [10usize, 20, 30, 40];
        let pool = WorkerPool::new(2);
        let out = pool.map(4, |i| shared[i] + 1);
        assert_eq!(out, vec![11, 21, 31, 41]);
    }
}
