//! A reusable worker pool on scoped threads with bounded result
//! channels.
//!
//! Jobs are indexed `0..n` and pulled by workers through an atomic
//! cursor (cheap work stealing: a worker that finishes early takes the
//! next undone index). Results stream back to the *caller's* thread
//! through a bounded channel, so a slow consumer exerts backpressure on
//! the workers instead of letting results pile up unboundedly.
//!
//! The pool is deliberately tiny and generic: it knows nothing about
//! plants or MSPC. `temspc_fleet::calibrate` and the fleet engine both
//! fan out over it, and because jobs are keyed by index, callers can
//! reassemble results in deterministic job order regardless of thread
//! count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A fixed-size worker pool.
///
/// Construction is free of OS resources: threads are spawned per
/// [`WorkerPool::run`] call inside a [`std::thread::scope`], which lets
/// jobs borrow from the caller's stack (the fleet shares one calibrated
/// monitor across all workers by reference).
#[derive(Debug, Clone)]
pub struct WorkerPool {
    threads: usize,
    queue_depth: usize,
}

impl WorkerPool {
    /// A pool with `threads` workers (0 → one per available CPU core,
    /// capped at 16).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(16)
        } else {
            threads
        };
        WorkerPool {
            threads,
            queue_depth: 2 * threads,
        }
    }

    /// Caps the in-flight result queue at `depth` (default
    /// `2 × threads`). Workers block on delivery once the consumer lags
    /// this far behind.
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// The number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs jobs `0..n_jobs` through `work`, delivering every
    /// `(index, result)` pair to `sink` on the calling thread as it
    /// arrives (arrival order is nondeterministic; indices are not).
    ///
    /// Worker panics propagate to the caller when the scope joins, after
    /// all other workers have drained.
    pub fn run<T, W, S>(&self, n_jobs: usize, work: W, mut sink: S)
    where
        T: Send,
        W: Fn(usize) -> T + Sync,
        S: FnMut(usize, T),
    {
        if n_jobs == 0 {
            return;
        }
        let threads = self.threads.min(n_jobs);
        if threads <= 1 {
            // Degenerate pool: run inline, preserving delivery semantics.
            for index in 0..n_jobs {
                sink(index, work(index));
            }
            return;
        }
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::sync_channel::<(usize, T)>(self.queue_depth);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let cursor = &cursor;
                let work = &work;
                scope.spawn(move || loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= n_jobs {
                        break;
                    }
                    // A send failure means the receiver is gone, which
                    // only happens when the scope is unwinding already.
                    if tx.send((index, work(index))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (index, result) in rx {
                sink(index, result);
            }
        });
    }

    /// Runs jobs `0..n_jobs` and collects the results *in job order*,
    /// independent of the thread count.
    pub fn map<T, W>(&self, n_jobs: usize, work: W) -> Vec<T>
    where
        T: Send,
        W: Fn(usize) -> T + Sync,
    {
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n_jobs);
        slots.resize_with(n_jobs, || None);
        self.run(n_jobs, work, |index, result| slots[index] = Some(result));
        slots
            .into_iter()
            .map(|s| s.expect("every job index delivered exactly once"))
            .collect()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_job_order() {
        let pool = WorkerPool::new(4);
        let out = pool.map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let pool = WorkerPool::new(3);
        pool.run(
            57,
            |_| {
                ran.fetch_add(1, Ordering::Relaxed);
            },
            |_, ()| {},
        );
        assert_eq!(ran.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn single_thread_runs_inline_in_order() {
        let pool = WorkerPool::new(1);
        let mut seen = Vec::new();
        pool.run(10, |i| i, |index, v| seen.push((index, v)));
        assert_eq!(seen, (0..10).map(|i| (i, i)).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_is_a_noop() {
        let pool = WorkerPool::new(4);
        let out: Vec<usize> = pool.map(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn results_match_across_thread_counts() {
        let expect: Vec<u64> = (0..40u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.map(40, |i| (i as u64).wrapping_mul(0x9E37)), expect);
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(|| {
            pool.run(
                8,
                |i| {
                    if i == 5 {
                        panic!("job 5 exploded");
                    }
                    i
                },
                |_, _| {},
            );
        });
        assert!(result.is_err());
    }

    #[test]
    fn jobs_can_borrow_caller_state() {
        let shared = [10usize, 20, 30, 40];
        let pool = WorkerPool::new(2);
        let out = pool.map(4, |i| shared[i] + 1);
        assert_eq!(out, vec![11, 21, 31, 41]);
    }
}
