//! Aggregate fleet reporting: per-plant records, the
//! disturbance-vs-intrusion confusion matrix and latency statistics.

use serde::{Deserialize, Serialize};
use temspc::{ScenarioKind, Verdict};

/// Everything the fleet learned about one plant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantRecord {
    /// Plant index within the fleet.
    pub plant: u32,
    /// The scenario this plant ran (ground truth).
    pub kind: ScenarioKind,
    /// The plant's derived RNG seed.
    pub seed: u64,
    /// Whether any supervised attempt completed (false → gave up after
    /// the restart budget, or the closed loop returned an error).
    pub completed: bool,
    /// Restarts the supervisor performed for this plant.
    pub restarts: u32,
    /// Last panic or run-error message, if the plant ever faulted.
    pub fault: Option<String>,
    /// Hours from anomaly onset to first detection (either level).
    pub detection_latency_hours: Option<f64>,
    /// Alarms raised before the anomaly onset.
    pub false_alarms: u32,
    /// The dual-level oMEDA verdict, if an anomalous window was
    /// collected.
    pub verdict: Option<Verdict>,
    /// Hour at which a safety interlock shut the plant down, if one did.
    pub shutdown_hour: Option<f64>,
    /// Generation of the model-store entry that scored this plant
    /// (0 = the engine's shared monitor, which has no store lineage).
    /// Checkpoint resume compares this against the store's current
    /// generation so one report never mixes calibrations.
    pub model_generation: u64,
}

impl PlantRecord {
    /// Ground-truth class of this plant's scenario.
    pub fn truth(&self) -> Truth {
        match self.kind {
            ScenarioKind::Normal => Truth::Normal,
            k if k.is_attack() => Truth::Intrusion,
            _ => Truth::Disturbance,
        }
    }

    /// Whether the verdict matches the ground truth (only meaningful for
    /// anomalous plants).
    pub fn verdict_correct(&self) -> Option<bool> {
        let v = self.verdict?;
        match self.truth() {
            Truth::Normal => None,
            Truth::Disturbance => Some(v == Verdict::Disturbance),
            Truth::Intrusion => Some(v == Verdict::Intrusion),
        }
    }
}

/// Ground-truth class of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Truth {
    /// No anomaly scheduled.
    Normal,
    /// A natural process disturbance.
    Disturbance,
    /// A fieldbus attack.
    Intrusion,
}

impl Truth {
    fn label(self) -> &'static str {
        match self {
            Truth::Normal => "normal",
            Truth::Disturbance => "disturbance",
            Truth::Intrusion => "intrusion",
        }
    }
}

/// How the fleet classified one plant, collapsing the per-plant outcome
/// into one column of the confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Diagnosed as a disturbance.
    Disturbance,
    /// Diagnosed as an intrusion.
    Intrusion,
    /// Detected but the diagnosis was inconclusive.
    Inconclusive,
    /// Nothing detected for the whole run.
    Undetected,
    /// The plant job never completed (restart budget exhausted).
    Failed,
}

const OUTCOMES: [Outcome; 5] = [
    Outcome::Disturbance,
    Outcome::Intrusion,
    Outcome::Inconclusive,
    Outcome::Undetected,
    Outcome::Failed,
];

impl Outcome {
    fn label(self) -> &'static str {
        match self {
            Outcome::Disturbance => "disturbance",
            Outcome::Intrusion => "intrusion",
            Outcome::Inconclusive => "inconclusive",
            Outcome::Undetected => "undetected",
            Outcome::Failed => "failed",
        }
    }

    fn of(record: &PlantRecord) -> Outcome {
        if !record.completed {
            return Outcome::Failed;
        }
        match record.verdict {
            Some(Verdict::Disturbance) => Outcome::Disturbance,
            Some(Verdict::Intrusion) => Outcome::Intrusion,
            Some(Verdict::Inconclusive) => Outcome::Inconclusive,
            None => Outcome::Undetected,
        }
    }
}

/// The aggregate report over a whole fleet.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FleetReport {
    /// Per-plant records, sorted by plant index.
    pub records: Vec<PlantRecord>,
}

impl FleetReport {
    /// Builds a report from records (sorts them by plant index so the
    /// report is identical regardless of worker completion order).
    pub fn new(mut records: Vec<PlantRecord>) -> Self {
        records.sort_by_key(|r| r.plant);
        FleetReport { records }
    }

    /// Count of `(truth, outcome)` pairs.
    pub fn confusion(&self, truth: Truth, outcome: Outcome) -> usize {
        self.records
            .iter()
            .filter(|r| r.truth() == truth && Outcome::of(r) == outcome)
            .count()
    }

    /// Verdict accuracy over anomalous plants that produced a verdict.
    pub fn verdict_accuracy(&self) -> Option<f64> {
        let judged: Vec<bool> = self
            .records
            .iter()
            .filter_map(PlantRecord::verdict_correct)
            .collect();
        (!judged.is_empty())
            .then(|| judged.iter().filter(|c| **c).count() as f64 / judged.len() as f64)
    }

    /// Mean detection latency in hours over detected anomalous plants.
    pub fn mean_latency_hours(&self) -> Option<f64> {
        let lat: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.truth() != Truth::Normal)
            .filter_map(|r| r.detection_latency_hours)
            .collect();
        (!lat.is_empty()).then(|| lat.iter().sum::<f64>() / lat.len() as f64)
    }

    /// Plants that exhausted their restart budget.
    pub fn failed_plants(&self) -> Vec<u32> {
        self.records
            .iter()
            .filter(|r| !r.completed)
            .map(|r| r.plant)
            .collect()
    }

    /// Total restarts performed across the fleet.
    pub fn total_restarts(&self) -> u32 {
        self.records.iter().map(|r| r.restarts).sum()
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "fleet report: {} plants", self.records.len())?;
        writeln!(f)?;
        write!(f, "{:<14}", "truth \\ said")?;
        for o in OUTCOMES {
            write!(f, "{:>14}", o.label())?;
        }
        writeln!(f)?;
        for truth in [Truth::Normal, Truth::Disturbance, Truth::Intrusion] {
            write!(f, "{:<14}", truth.label())?;
            for o in OUTCOMES {
                write!(f, "{:>14}", self.confusion(truth, o))?;
            }
            writeln!(f)?;
        }
        writeln!(f)?;
        if let Some(acc) = self.verdict_accuracy() {
            writeln!(f, "verdict accuracy : {:.1} %", 100.0 * acc)?;
        }
        if let Some(lat) = self.mean_latency_hours() {
            writeln!(f, "mean latency     : {:.1} s after onset", lat * 3600.0)?;
        }
        let shutdowns = self
            .records
            .iter()
            .filter(|r| r.shutdown_hour.is_some())
            .count();
        writeln!(f, "interlock trips  : {shutdowns}")?;
        writeln!(f, "restarts         : {}", self.total_restarts())?;
        let failed = self.failed_plants();
        if !failed.is_empty() {
            writeln!(f, "FAILED plants    : {failed:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(plant: u32, kind: ScenarioKind, verdict: Option<Verdict>) -> PlantRecord {
        PlantRecord {
            plant,
            kind,
            seed: 1,
            completed: true,
            restarts: 0,
            fault: None,
            detection_latency_hours: verdict.is_some().then_some(0.05),
            false_alarms: 0,
            verdict,
            shutdown_hour: None,
            model_generation: 0,
        }
    }

    #[test]
    fn report_orders_records_by_plant() {
        let report = FleetReport::new(vec![
            record(2, ScenarioKind::Normal, None),
            record(0, ScenarioKind::Idv6, Some(Verdict::Disturbance)),
            record(1, ScenarioKind::DosXmv3, Some(Verdict::Intrusion)),
        ]);
        let ids: Vec<u32> = report.records.iter().map(|r| r.plant).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn confusion_and_accuracy() {
        let report = FleetReport::new(vec![
            record(0, ScenarioKind::Idv6, Some(Verdict::Disturbance)),
            record(1, ScenarioKind::Idv6, Some(Verdict::Intrusion)),
            record(2, ScenarioKind::IntegrityXmv3, Some(Verdict::Intrusion)),
            record(3, ScenarioKind::Normal, None),
        ]);
        assert_eq!(
            report.confusion(Truth::Disturbance, Outcome::Disturbance),
            1
        );
        assert_eq!(report.confusion(Truth::Disturbance, Outcome::Intrusion), 1);
        assert_eq!(report.confusion(Truth::Intrusion, Outcome::Intrusion), 1);
        assert_eq!(report.confusion(Truth::Normal, Outcome::Undetected), 1);
        // 2 of 3 judged verdicts are correct.
        assert!((report.verdict_accuracy().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn failed_plants_show_up() {
        let mut bad = record(5, ScenarioKind::Idv6, None);
        bad.completed = false;
        bad.restarts = 2;
        let report = FleetReport::new(vec![bad, record(1, ScenarioKind::Normal, None)]);
        assert_eq!(report.failed_plants(), vec![5]);
        assert_eq!(report.total_restarts(), 2);
        assert_eq!(report.confusion(Truth::Disturbance, Outcome::Failed), 1);
        let text = report.to_string();
        assert!(text.contains("FAILED plants"));
    }

    #[test]
    fn display_contains_matrix_rows() {
        let report = FleetReport::new(vec![record(0, ScenarioKind::Normal, None)]);
        let text = report.to_string();
        assert!(text.contains("normal"));
        assert!(text.contains("disturbance"));
        assert!(text.contains("intrusion"));
        assert!(text.contains("undetected"));
    }
}
