//! The sharded calibration store: per-plant (or per-cohort) monitors
//! behind a keyed, concurrency-safe cache with TPB persistence, bounded
//! LRU residency and hot reload.
//!
//! The paper's discrimination power comes from PCA models calibrated on
//! each plant's *own* normal operation; a fleet borrowing one monitor
//! fleet-wide washes per-unit behaviour out of the calibration and
//! inflates false alarms at scale. [`ModelStore`] maps a [`PlantKey`] to
//! a calibrated [`DualMspc`]:
//!
//! * **Persistence** — one `<key>.tpb` file per key under the store
//!   directory, written through the shared atomic helper
//!   ([`temspc_persist::write_atomic`]) behind the store's own magic
//!   (`TESTORE`). The fixed 16-byte header carries a **generation**
//!   counter so freshness checks read 16 bytes, not the whole model.
//! * **Bounded residency** — at most `capacity` models stay in memory;
//!   the least-recently-used entry is evicted (its file remains). Hits,
//!   misses, evictions and reloads feed the existing
//!   [`MetricsRegistry`] machinery, with per-key counters.
//! * **Hot reload** — every `get` compares the cached generation with
//!   the on-disk header; a re-calibrated model dropped into the store
//!   directory (generation bumped) is picked up without restarting the
//!   engine.
//! * **Calibrate-on-miss** — a key with no file self-populates through
//!   the pooled [`crate::calibrate::calibrate`] path using a seed
//!   derived deterministically from the key, so a cold store always
//!   produces the same models as a pre-seeded one.
//!
//! The store's mutex covers lookups *and* lazy calibrations: two workers
//! missing on the same key never calibrate twice — the second blocks and
//! then hits the freshly inserted model.

use std::collections::HashMap;
use std::io::{self, Read as _};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};
use temspc::{CalibrationConfig, DualMspc, MonitorConfig};
use temspc_persist::PersistError;

use crate::calibrate::{self, CalibrateError};
use crate::metrics::{Counter, Gauge, MetricsRegistry};

/// File magic + format version for store entries. Distinct from the
/// monitor (`TEMSPC`), capture (`TECAP`) and checkpoint (`TEFLEET`)
/// magics, so a store file can never be mistaken for any of them.
const MAGIC: &[u8; 8] = b"TESTORE\x01";

/// Fixed header: magic (8 bytes) + big-endian generation (8 bytes).
const HEADER_LEN: usize = 16;

/// A key identifying one calibration in the store: a plant id or a
/// cohort of plants sharing normal-operation statistics.
///
/// Keys are restricted to `[A-Za-z0-9_-]` (max 64 bytes) because the key
/// *is* the file stem under the store directory — the restriction rules
/// out path traversal and cross-platform name surprises.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PlantKey(String);

impl PlantKey {
    /// A validated key.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::BadKey`] for an empty, over-long, or
    /// non-`[A-Za-z0-9_-]` name.
    pub fn new(name: impl Into<String>) -> Result<Self, StoreError> {
        let name = name.into();
        let valid = !name.is_empty()
            && name.len() <= 64
            && name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-');
        if valid {
            Ok(PlantKey(name))
        } else {
            Err(StoreError::BadKey(name))
        }
    }

    /// The key of calibration cohort `index` (`cohort_<index>`).
    pub fn cohort(index: usize) -> Self {
        PlantKey(format!("cohort_{index}"))
    }

    /// The key as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The file name this key persists under.
    fn file_name(&self) -> String {
        format!("{}.tpb", self.0)
    }

    /// Deterministic seed offset of this key: cohort keys use their
    /// index directly (so `cohort_0` reproduces the un-sharded base
    /// seed), any other key hashes stably (FNV-1a).
    fn seed_offset(&self) -> u64 {
        if let Some(n) = self
            .0
            .strip_prefix("cohort_")
            .and_then(|s| s.parse::<u64>().ok())
        {
            return n;
        }
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in self.0.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }
}

impl std::fmt::Display for PlantKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Errors from the model store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// Encoding/decoding failure of a store entry payload.
    Format(PersistError),
    /// The file is not a store entry (bad magic/version) or is torn
    /// short of the fixed header.
    BadHeader,
    /// The key is not a valid store key (`[A-Za-z0-9_-]`, ≤ 64 bytes).
    BadKey(String),
    /// A store file's embedded key disagrees with its file name — the
    /// file was renamed or copied over another key.
    KeyMismatch {
        /// The key the file name implies.
        expected: String,
        /// The key recorded inside the file.
        found: String,
    },
    /// Lazily calibrating a missing key failed.
    Calibrate(CalibrateError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "model store i/o failure: {e}"),
            StoreError::Format(e) => write!(f, "model store format failure: {e}"),
            StoreError::BadHeader => write!(f, "not a model store entry (bad header)"),
            StoreError::BadKey(k) => write!(
                f,
                "'{k}' is not a valid store key (want 1-64 chars of [A-Za-z0-9_-])"
            ),
            StoreError::KeyMismatch { expected, found } => write!(
                f,
                "store file for key '{expected}' actually holds key '{found}'"
            ),
            StoreError::Calibrate(e) => write!(f, "calibrate-on-miss failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Format(e) => Some(e),
            StoreError::Calibrate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<PersistError> for StoreError {
    fn from(e: PersistError) -> Self {
        StoreError::Format(e)
    }
}

impl From<CalibrateError> for StoreError {
    fn from(e: CalibrateError) -> Self {
        StoreError::Calibrate(e)
    }
}

/// Configuration of a model store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding one `<key>.tpb` per persisted calibration.
    pub dir: PathBuf,
    /// Maximum models resident in memory at once (≥ 1; the LRU entry is
    /// evicted beyond this — its file stays on disk).
    pub capacity: usize,
    /// Base calibration campaign for calibrate-on-miss; per-key
    /// campaigns derive their seed from it (see
    /// [`StoreConfig::calibration_for`]).
    pub calibration: CalibrationConfig,
    /// Monitor configuration for calibrate-on-miss fits.
    pub monitor: MonitorConfig,
    /// Seed distance between keys: key `k` calibrates with
    /// `base_seed + seed_stride × offset(k)`. Stride 0 gives every key
    /// the base seed — i.e. a single shared calibration, reproducing
    /// the un-sharded engine bit-for-bit.
    pub seed_stride: u64,
}

impl StoreConfig {
    /// A store under `dir` with the given calibrate-on-miss campaign
    /// and defaults for the rest (capacity 4, seed stride 10 000).
    pub fn new(dir: impl Into<PathBuf>, calibration: CalibrationConfig) -> Self {
        StoreConfig {
            dir: dir.into(),
            capacity: 4,
            calibration,
            monitor: MonitorConfig::default(),
            seed_stride: 10_000,
        }
    }

    /// The calibration campaign for `key`: the base campaign with the
    /// key's deterministic seed offset applied. Cohort 0 (offset 0)
    /// always equals the base campaign, so a single-key store
    /// reproduces the shared-monitor fleet exactly.
    pub fn calibration_for(&self, key: &PlantKey) -> CalibrationConfig {
        let mut cfg = self.calibration.clone();
        cfg.base_seed = cfg
            .base_seed
            .wrapping_add(self.seed_stride.wrapping_mul(key.seed_offset()));
        cfg
    }
}

/// A model resolved from the store, with the generation that scored it.
#[derive(Debug, Clone)]
pub struct ResolvedModel {
    /// The calibrated monitor (shared, cheap to clone).
    pub model: Arc<DualMspc>,
    /// Generation of the persisted entry this model came from (1 for a
    /// freshly calibrated key, bumped by every re-insert).
    pub generation: u64,
}

/// On-disk payload behind the fixed header. Owned on both sides because
/// the vendored serde derive does not support generic types; the clone
/// at save time is negligible next to the calibration that produced it.
#[derive(Serialize, Deserialize)]
struct StoredModel {
    key: String,
    monitor: DualMspc,
}

/// One resident cache entry.
struct CacheEntry {
    model: Arc<DualMspc>,
    generation: u64,
    /// LRU clock value of the last access.
    tick: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<PlantKey, CacheEntry>,
    tick: u64,
}

/// Store-level metric handles (per-key counters register lazily).
struct StoreMetrics {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    reloads: Counter,
    calibrations: Counter,
    resident: Gauge,
}

impl StoreMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        StoreMetrics {
            hits: registry.counter("model_store_hits_total", "store lookups served from memory"),
            misses: registry.counter(
                "model_store_misses_total",
                "store lookups that had to load or calibrate",
            ),
            evictions: registry.counter(
                "model_store_evictions_total",
                "models evicted from memory by the LRU bound",
            ),
            reloads: registry.counter(
                "model_store_reloads_total",
                "hot reloads after an on-disk generation bump",
            ),
            calibrations: registry.counter(
                "model_store_calibrations_total",
                "lazy calibrations of keys with no persisted model",
            ),
            resident: registry.gauge("model_store_resident_models", "models currently in memory"),
        }
    }
}

/// The keyed, concurrency-safe calibration store.
///
/// See the module docs for the design; the short version: `get` a
/// [`PlantKey`] and you receive the freshest calibrated monitor for it,
/// whether it was cached, persisted, or never existed before.
pub struct ModelStore {
    config: StoreConfig,
    inner: Mutex<Inner>,
    registry: MetricsRegistry,
    metrics: StoreMetrics,
}

impl ModelStore {
    /// A store over `config.dir` (created lazily on first save).
    pub fn new(config: StoreConfig) -> Self {
        let registry = MetricsRegistry::new();
        let metrics = StoreMetrics::register(&registry);
        ModelStore {
            config,
            inner: Mutex::new(Inner::default()),
            registry,
            metrics,
        }
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The store's metrics (hit/miss/eviction/reload counters and the
    /// resident gauge, plus per-key counters), using the same registry
    /// machinery as the fleet engine.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Number of models currently resident in memory.
    pub fn resident(&self) -> usize {
        self.inner
            .lock()
            .expect("model store poisoned")
            .entries
            .len()
    }

    fn path_of(&self, key: &PlantKey) -> PathBuf {
        self.config.dir.join(key.file_name())
    }

    fn per_key(&self, family: &str, key: &PlantKey) -> Counter {
        // Prometheus metric names reject '-', the one key character
        // outside its alphabet.
        let suffix = key.as_str().replace('-', "_");
        self.registry
            .counter(&format!("model_store_key_{family}_total_{suffix}"), "")
    }

    /// The generation recorded in `key`'s on-disk header, or `None` when
    /// no file exists. Reads 16 bytes — cheap enough to call per plant.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::BadHeader`] for a torn or foreign file,
    /// [`StoreError::Io`] for filesystem failures.
    pub fn generation_on_disk(&self, key: &PlantKey) -> Result<Option<u64>, StoreError> {
        let path = self.path_of(key);
        let mut file = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut header = [0u8; HEADER_LEN];
        match file.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(StoreError::BadHeader)
            }
            Err(e) => return Err(e.into()),
        }
        if &header[..8] != MAGIC {
            return Err(StoreError::BadHeader);
        }
        Ok(Some(u64::from_be_bytes(
            header[8..].try_into().expect("header is 16 bytes"),
        )))
    }

    /// Loads `key`'s persisted model, or `None` when no file exists.
    fn load_from_disk(&self, key: &PlantKey) -> Result<Option<(DualMspc, u64)>, StoreError> {
        let path = self.path_of(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC {
            return Err(StoreError::BadHeader);
        }
        let generation =
            u64::from_be_bytes(bytes[8..HEADER_LEN].try_into().expect("header is 16 bytes"));
        let stored: StoredModel = temspc_persist::from_bytes(&bytes[HEADER_LEN..])?;
        if stored.key != key.as_str() {
            return Err(StoreError::KeyMismatch {
                expected: key.as_str().to_string(),
                found: stored.key,
            });
        }
        Ok(Some((stored.monitor, generation)))
    }

    /// Persists `model` for `key` at `generation`, atomically.
    fn save_to_disk(
        &self,
        key: &PlantKey,
        model: &DualMspc,
        generation: u64,
    ) -> Result<(), StoreError> {
        let payload = temspc_persist::to_bytes(&StoredModel {
            key: key.as_str().to_string(),
            monitor: model.clone(),
        })?;
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&generation.to_be_bytes());
        bytes.extend_from_slice(&payload);
        temspc_persist::write_atomic(self.path_of(key), &bytes)?;
        Ok(())
    }

    /// Caches `(model, generation)` under `key`, evicting the LRU entry
    /// beyond capacity. Caller holds the lock.
    fn cache(&self, inner: &mut Inner, key: &PlantKey, model: Arc<DualMspc>, generation: u64) {
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(
            key.clone(),
            CacheEntry {
                model,
                generation,
                tick,
            },
        );
        let capacity = self.config.capacity.max(1);
        while inner.entries.len() > capacity {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
                .expect("non-empty beyond capacity");
            inner.entries.remove(&victim);
            self.metrics.evictions.inc();
            self.per_key("evictions", &victim).inc();
        }
        self.metrics.resident.set(inner.entries.len() as f64);
    }

    /// Resolves `key` to its freshest calibrated model.
    ///
    /// Resolution order: memory (after a 16-byte freshness check against
    /// the on-disk generation — a bumped file hot-reloads), then disk,
    /// then a deterministic pooled calibration persisted at
    /// generation 1. If the file vanished underneath a cached entry the
    /// cached model keeps serving.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O failures, torn/foreign files, or a
    /// failed calibrate-on-miss. Torn files are *not* silently
    /// recalibrated over — fix them explicitly (`temspc store calibrate`
    /// or delete the file).
    pub fn get(&self, key: &PlantKey) -> Result<ResolvedModel, StoreError> {
        let mut inner = self.inner.lock().expect("model store poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.entries.get_mut(key) {
            let disk = self.generation_on_disk(key)?;
            match disk {
                Some(gen) if gen != entry.generation => {
                    // Hot reload: someone bumped the file's generation.
                    let (model, generation) =
                        self.load_from_disk(key)?.expect("header peek saw the file");
                    self.metrics.reloads.inc();
                    let model = Arc::new(model);
                    self.cache(&mut inner, key, Arc::clone(&model), generation);
                    return Ok(ResolvedModel { model, generation });
                }
                _ => {
                    entry.tick = tick;
                    self.metrics.hits.inc();
                    self.per_key("hits", key).inc();
                    return Ok(ResolvedModel {
                        model: Arc::clone(&entry.model),
                        generation: entry.generation,
                    });
                }
            }
        }
        self.metrics.misses.inc();
        self.per_key("misses", key).inc();
        let (model, generation) = match self.load_from_disk(key)? {
            Some(found) => found,
            None => {
                // Calibrate-on-miss: deterministic per-key campaign, so
                // a cold store self-populates identically every time.
                let cfg = self.config.calibration_for(key);
                let model = calibrate::calibrate(&cfg, self.config.monitor)?;
                self.metrics.calibrations.inc();
                self.save_to_disk(key, &model, 1)?;
                (model, 1)
            }
        };
        let model = Arc::new(model);
        self.cache(&mut inner, key, Arc::clone(&model), generation);
        Ok(ResolvedModel { model, generation })
    }

    /// Inserts an externally calibrated `model` for `key`, persisting it
    /// at the next generation (on-disk generation + 1, or 1) and caching
    /// it. Other store handles over the same directory pick the new
    /// generation up on their next `get` (hot reload).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O or encoding failure.
    pub fn insert(&self, key: &PlantKey, model: DualMspc) -> Result<ResolvedModel, StoreError> {
        let mut inner = self.inner.lock().expect("model store poisoned");
        let generation = match self.generation_on_disk(key) {
            Ok(Some(gen)) => gen + 1,
            Ok(None) => 1,
            // A torn file is replaced rather than trusted for its
            // generation; start a fresh lineage above it.
            Err(StoreError::BadHeader) => 1,
            Err(e) => return Err(e),
        };
        self.save_to_disk(key, &model, generation)?;
        let model = Arc::new(model);
        self.cache(&mut inner, key, Arc::clone(&model), generation);
        Ok(ResolvedModel { model, generation })
    }

    /// Re-runs `key`'s deterministic calibration campaign and persists
    /// the result at a bumped generation — the hot-reload producer side.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Calibrate`] if the campaign fails, or the
    /// underlying persistence error.
    pub fn recalibrate(&self, key: &PlantKey) -> Result<ResolvedModel, StoreError> {
        let cfg = self.config.calibration_for(key);
        let model = calibrate::calibrate(&cfg, self.config.monitor)?;
        self.metrics.calibrations.inc();
        self.insert(key, model)
    }

    /// Drops `key` from memory (its file stays). Returns whether it was
    /// resident.
    pub fn evict(&self, key: &PlantKey) -> bool {
        let mut inner = self.inner.lock().expect("model store poisoned");
        let was = inner.entries.remove(key).is_some();
        if was {
            self.metrics.evictions.inc();
            self.per_key("evictions", key).inc();
            self.metrics.resident.set(inner.entries.len() as f64);
        }
        was
    }

    /// Removes `key` from memory *and* disk. Returns whether a file
    /// existed.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn remove(&self, key: &PlantKey) -> Result<bool, StoreError> {
        let mut inner = self.inner.lock().expect("model store poisoned");
        inner.entries.remove(key);
        self.metrics.resident.set(inner.entries.len() as f64);
        match std::fs::remove_file(self.path_of(key)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// The keys persisted in the store directory with their generations,
    /// sorted by key. Files that are not valid store entries are
    /// reported with generation `None` instead of failing the listing.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directory cannot be read (a
    /// missing directory lists as empty).
    pub fn keys_on_disk(&self) -> Result<Vec<(PlantKey, Option<u64>)>, StoreError> {
        let entries = match std::fs::read_dir(&self.config.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut keys = Vec::new();
        for entry in entries {
            let name = entry?.file_name();
            let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".tpb")) else {
                continue;
            };
            let Ok(key) = PlantKey::new(stem) else {
                continue;
            };
            let generation = self.generation_on_disk(&key).ok().flatten();
            keys.push((key, generation));
        }
        keys.sort();
        Ok(keys)
    }
}

impl std::fmt::Debug for ModelStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelStore")
            .field("dir", &self.config.dir)
            .field("capacity", &self.config.capacity)
            .field("resident", &self.resident())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(test: &str) -> PathBuf {
        std::env::temp_dir().join(format!("temspc_store_unit_{test}"))
    }

    fn quick_calibration() -> CalibrationConfig {
        CalibrationConfig {
            runs: 2,
            duration_hours: 0.2,
            record_every: 10,
            base_seed: 300,
            threads: 0,
        }
    }

    #[test]
    fn keys_validate_and_derive_offsets() {
        assert!(PlantKey::new("cohort_3").is_ok());
        assert!(PlantKey::new("line-A_7").is_ok());
        assert!(PlantKey::new("").is_err());
        assert!(PlantKey::new("../escape").is_err());
        assert!(PlantKey::new("a b").is_err());
        assert_eq!(PlantKey::cohort(0).seed_offset(), 0);
        assert_eq!(PlantKey::cohort(5).seed_offset(), 5);
        // Non-cohort keys hash stably and differ from each other.
        let a = PlantKey::new("line-A").unwrap().seed_offset();
        let b = PlantKey::new("line-B").unwrap().seed_offset();
        assert_ne!(a, b);
        assert_eq!(a, PlantKey::new("line-A").unwrap().seed_offset());
    }

    #[test]
    fn cohort_zero_calibration_equals_base() {
        let config = StoreConfig::new(tmp("seed"), quick_calibration());
        assert_eq!(
            config.calibration_for(&PlantKey::cohort(0)),
            quick_calibration()
        );
        let c1 = config.calibration_for(&PlantKey::cohort(1));
        assert_eq!(c1.base_seed, quick_calibration().base_seed + 10_000);
    }

    #[test]
    fn missing_key_calibrates_persists_and_hits_after() {
        let dir = tmp("miss");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ModelStore::new(StoreConfig::new(&dir, quick_calibration()));
        let key = PlantKey::cohort(0);
        let first = store.get(&key).unwrap();
        assert_eq!(first.generation, 1);
        let second = store.get(&key).unwrap();
        assert!(Arc::ptr_eq(&first.model, &second.model));
        let text = store.metrics().expose();
        assert!(text.contains("model_store_misses_total 1"));
        assert!(text.contains("model_store_hits_total 1"));
        assert!(text.contains("model_store_calibrations_total 1"));
        assert!(text.contains("model_store_key_hits_total_cohort_0 1"));
        // The model equals the pooled/sequential calibration bit-for-bit.
        let direct = DualMspc::calibrate(&quick_calibration()).unwrap();
        assert_eq!(
            direct.controller_model().limits().t2_99,
            first.model.controller_model().limits().t2_99
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_keeps_at_most_capacity_models() {
        let dir = tmp("lru");
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = StoreConfig::new(&dir, quick_calibration());
        config.capacity = 2;
        let store = ModelStore::new(config);
        let model = DualMspc::calibrate(&quick_calibration()).unwrap();
        for i in 0..3 {
            store.insert(&PlantKey::cohort(i), model.clone()).unwrap();
        }
        assert_eq!(store.resident(), 2);
        // cohort_0 was the least recently used.
        let resident = store.inner.lock().unwrap();
        assert!(!resident.entries.contains_key(&PlantKey::cohort(0)));
        drop(resident);
        let text = store.metrics().expose();
        assert!(text.contains("model_store_evictions_total 1"));
        assert!(text.contains("model_store_key_evictions_total_cohort_0 1"));
        assert!(text.contains("model_store_resident_models 2"));
        // The evicted key's file is still there; getting it is a miss,
        // not a recalibration.
        assert!(store.get(&PlantKey::cohort(0)).is_ok());
        assert!(store
            .metrics()
            .expose()
            .contains("model_store_calibrations_total 0"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_bump_hot_reloads() {
        let dir = tmp("reload");
        let _ = std::fs::remove_dir_all(&dir);
        let reader = ModelStore::new(StoreConfig::new(&dir, quick_calibration()));
        let writer = ModelStore::new(StoreConfig::new(&dir, quick_calibration()));
        let key = PlantKey::cohort(0);
        assert_eq!(reader.get(&key).unwrap().generation, 1);
        // A second handle re-calibrates the key (simulating an offline
        // re-calibration dropped into the directory) ...
        assert_eq!(writer.recalibrate(&key).unwrap().generation, 2);
        // ... and the first handle picks it up without restarting.
        assert_eq!(reader.get(&key).unwrap().generation, 2);
        assert!(reader
            .metrics()
            .expose()
            .contains("model_store_reloads_total 1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_and_torn_files_error_cleanly() {
        let dir = tmp("torn");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = ModelStore::new(StoreConfig::new(&dir, quick_calibration()));
        let key = PlantKey::new("broken").unwrap();
        for bytes in [&b""[..], &b"TESTO"[..], &b"WRONGMAGICANDMORE"[..]] {
            std::fs::write(dir.join("broken.tpb"), bytes).unwrap();
            assert!(matches!(store.get(&key), Err(StoreError::BadHeader)));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn renamed_file_is_a_key_mismatch() {
        let dir = tmp("mismatch");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ModelStore::new(StoreConfig::new(&dir, quick_calibration()));
        let model = DualMspc::calibrate(&quick_calibration()).unwrap();
        store.insert(&PlantKey::cohort(0), model).unwrap();
        std::fs::rename(dir.join("cohort_0.tpb"), dir.join("cohort_9.tpb")).unwrap();
        assert!(matches!(
            store.get(&PlantKey::cohort(9)),
            Err(StoreError::KeyMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn listing_reports_keys_and_generations() {
        let dir = tmp("list");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ModelStore::new(StoreConfig::new(&dir, quick_calibration()));
        assert!(store.keys_on_disk().unwrap().is_empty());
        let model = DualMspc::calibrate(&quick_calibration()).unwrap();
        store.insert(&PlantKey::cohort(1), model.clone()).unwrap();
        store.insert(&PlantKey::cohort(0), model.clone()).unwrap();
        store.insert(&PlantKey::cohort(0), model).unwrap();
        std::fs::write(dir.join("torn.tpb"), b"XX").unwrap();
        let keys = store.keys_on_disk().unwrap();
        assert_eq!(
            keys,
            vec![
                (PlantKey::cohort(0), Some(2)),
                (PlantKey::cohort(1), Some(1)),
                (PlantKey::new("torn").unwrap(), None),
            ]
        );
        assert!(store.remove(&PlantKey::cohort(1)).unwrap());
        assert!(!store.remove(&PlantKey::cohort(1)).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
