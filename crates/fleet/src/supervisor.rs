//! Per-worker supervision: panic capture, bounded restarts, graceful
//! degradation.
//!
//! Each plant job runs under [`supervise`], which converts panics into
//! data instead of letting them tear down the pool: a panicking attempt
//! is retried from the plant's own seed (the closed loop is a pure
//! function of its scenario, so a restart replays the identical
//! trajectory) up to a bounded number of restarts, after which the plant
//! is reported as failed. Safety-interlock shutdowns are *not* failures:
//! the plant tripped itself into a safe state, which the fleet records
//! as a degraded-but-orderly outcome.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Supervision policy for one plant job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SupervisionPolicy {
    /// Restart attempts after the first panic (0 → fail immediately).
    pub max_restarts: u32,
}

impl Default for SupervisionPolicy {
    fn default() -> Self {
        SupervisionPolicy { max_restarts: 2 }
    }
}

/// What supervision observed while running one job.
#[derive(Debug, Clone)]
pub struct Supervised<T> {
    /// The job's result, if any attempt completed.
    pub result: Option<T>,
    /// Number of restarts performed (0 = first attempt succeeded).
    pub restarts: u32,
    /// Captured panic messages, oldest first.
    pub panics: Vec<String>,
}

impl<T> Supervised<T> {
    /// Whether every attempt panicked and the restart budget is spent.
    pub fn failed(&self) -> bool {
        self.result.is_none()
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `job` under the policy: panics are caught and the job is rerun
/// until it completes or `1 + max_restarts` attempts have panicked.
///
/// The job must be restartable from scratch — in the fleet every job is
/// a deterministic function of a `(scenario, seed)` pair, so reruns are
/// exact replays and cannot diverge across thread counts.
pub fn supervise<T>(policy: SupervisionPolicy, job: impl Fn() -> T) -> Supervised<T> {
    let mut panics = Vec::new();
    let attempts = 1 + policy.max_restarts;
    for attempt in 0..attempts {
        // The default panic hook would spam stderr once per attempt;
        // keep it — a supervised panic is still worth a trace — but the
        // capture itself must not poison shared state, which it cannot:
        // the job owns everything it touches except `Fn` state we
        // explicitly re-assert.
        match catch_unwind(AssertUnwindSafe(&job)) {
            Ok(result) => {
                return Supervised {
                    result: Some(result),
                    restarts: attempt,
                    panics,
                }
            }
            Err(payload) => panics.push(panic_message(payload)),
        }
    }
    Supervised {
        result: None,
        restarts: policy.max_restarts,
        panics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn quiet<T>(f: impl FnOnce() -> T) -> T {
        // Suppress the default panic hook's backtrace spam for tests that
        // panic on purpose.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn clean_job_runs_once() {
        let s = supervise(SupervisionPolicy::default(), || 42);
        assert_eq!(s.result, Some(42));
        assert_eq!(s.restarts, 0);
        assert!(s.panics.is_empty());
        assert!(!s.failed());
    }

    #[test]
    fn flaky_job_is_restarted() {
        quiet(|| {
            let calls = AtomicU32::new(0);
            let s = supervise(SupervisionPolicy { max_restarts: 3 }, || {
                if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                    panic!("transient fault");
                }
                7u32
            });
            assert_eq!(s.result, Some(7));
            assert_eq!(s.restarts, 2);
            assert_eq!(s.panics, vec!["transient fault", "transient fault"]);
        });
    }

    #[test]
    fn hopeless_job_fails_after_budget() {
        quiet(|| {
            let s: Supervised<()> = supervise(SupervisionPolicy { max_restarts: 1 }, || {
                panic!("hard fault {}", 13)
            });
            assert!(s.failed());
            assert_eq!(s.restarts, 1);
            assert_eq!(s.panics.len(), 2);
            assert!(s.panics[0].contains("hard fault 13"));
        });
    }

    #[test]
    fn zero_budget_fails_on_first_panic() {
        quiet(|| {
            let s: Supervised<()> =
                supervise(SupervisionPolicy { max_restarts: 0 }, || panic!("boom"));
            assert!(s.failed());
            assert_eq!(s.panics.len(), 1);
        });
    }
}
