//! Tape-replay load generator: `temspc ingest drive` replays recorded
//! `.cap` tapes over real sockets against a running ingestion server.
//!
//! Each connection gets its own blocking-socket thread that sends the
//! handshake and then the tape's frames, optionally paced to a target
//! frame rate and optionally torn into small write chunks — the chunking
//! deliberately splits messages at arbitrary byte boundaries so a drive
//! run exercises the server's reassembly path the way a congested
//! network would.

use std::io::{self, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use temspc::persistence::{load_capture, PersistenceError};
use temspc::ScenarioCapture;

use crate::stream::{encode_hello, encode_record};

/// Configuration of one drive run.
#[derive(Debug, Clone, PartialEq)]
pub struct DriveConfig {
    /// Server address to connect to.
    pub addr: String,
    /// Capture tapes to replay; connections cycle through them, so one
    /// tape can feed any number of connections.
    pub tapes: Vec<PathBuf>,
    /// Concurrent connections to open.
    pub connections: usize,
    /// Target frame rate per connection in frames/second (0 →
    /// unthrottled, send as fast as the server accepts).
    pub rate: f64,
    /// Bytes per socket write (0 → whole messages). Small values tear
    /// messages across writes to stress reassembly.
    pub chunk: usize,
}

impl Default for DriveConfig {
    fn default() -> Self {
        DriveConfig {
            addr: "127.0.0.1:0".into(),
            tapes: Vec::new(),
            connections: 1,
            rate: 0.0,
            chunk: 0,
        }
    }
}

/// Aggregate result of a drive run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriveReport {
    /// Connections that completed their tape.
    pub connections: usize,
    /// Total frames sent.
    pub frames: u64,
    /// Total bytes written (handshakes included).
    pub bytes: u64,
    /// Wall-clock seconds from first connect to last close.
    pub elapsed_secs: f64,
}

/// Errors raised by a drive run.
#[derive(Debug)]
pub enum DriveError {
    /// No tapes were given — nothing to replay.
    NoTapes,
    /// Loading a tape failed.
    Tape(PathBuf, PersistenceError),
    /// A connection's socket I/O failed.
    Io(io::Error),
}

impl std::fmt::Display for DriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriveError::NoTapes => write!(f, "no capture tapes to replay"),
            DriveError::Tape(path, e) => write!(f, "loading tape {}: {e}", path.display()),
            DriveError::Io(e) => write!(f, "socket I/O failed: {e}"),
        }
    }
}

impl std::error::Error for DriveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DriveError::NoTapes => None,
            DriveError::Tape(_, e) => Some(e),
            DriveError::Io(e) => Some(e),
        }
    }
}

impl From<io::Error> for DriveError {
    fn from(e: io::Error) -> Self {
        DriveError::Io(e)
    }
}

/// Replays the configured tapes against the server, one thread per
/// connection, and returns the aggregate throughput report.
///
/// Connection `i` replays tape `i % tapes.len()` and identifies itself
/// as plant `i`, so every served [`ConnectionReport`] maps back to the
/// tape that produced it.
///
/// [`ConnectionReport`]: crate::server::ConnectionReport
///
/// # Errors
///
/// Fails if no tapes are given, a tape fails to load, or any
/// connection's socket I/O fails.
pub fn drive(config: &DriveConfig) -> Result<DriveReport, DriveError> {
    if config.tapes.is_empty() {
        return Err(DriveError::NoTapes);
    }
    let mut captures: Vec<ScenarioCapture> = Vec::with_capacity(config.tapes.len());
    for path in &config.tapes {
        captures.push(load_capture(path).map_err(|e| DriveError::Tape(path.clone(), e))?);
    }
    let connections = config.connections.max(1);
    let started = Instant::now();
    let results: Vec<io::Result<(u64, u64)>> = std::thread::scope(|scope| {
        // Spawn every connection thread before joining any so the
        // replays actually run concurrently.
        let mut handles = Vec::with_capacity(connections);
        for i in 0..connections {
            let capture = &captures[i % captures.len()];
            let addr = config.addr.as_str();
            let (rate, chunk) = (config.rate, config.chunk);
            handles
                .push(scope.spawn(move || drive_connection(addr, i as u32, capture, rate, chunk)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("drive connection thread panicked"))
            .collect()
    });
    let mut frames = 0u64;
    let mut bytes = 0u64;
    for result in results {
        let (f, b) = result?;
        frames += f;
        bytes += b;
    }
    Ok(DriveReport {
        connections,
        frames,
        bytes,
        elapsed_secs: started.elapsed().as_secs_f64(),
    })
}

fn drive_connection(
    addr: &str,
    plant: u32,
    capture: &ScenarioCapture,
    rate: f64,
    chunk: usize,
) -> io::Result<(u64, u64)> {
    let mut stream = TcpStream::connect(addr)?;
    // Small paced writes should go out when written, not when Nagle says.
    let _ = stream.set_nodelay(true);
    let hello = encode_hello(plant, &capture.scenario);
    write_chunked(&mut stream, &hello, chunk)?;
    let mut bytes = hello.len() as u64;
    let mut frames = 0u64;
    let paced_from = Instant::now();
    let mut message = Vec::with_capacity(512);
    for record in &capture.records {
        if rate > 0.0 {
            let due = Duration::from_secs_f64(frames as f64 / rate);
            let elapsed = paced_from.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
        }
        message.clear();
        encode_record(record, &mut message);
        write_chunked(&mut stream, &message, chunk)?;
        bytes += message.len() as u64;
        frames += 1;
    }
    // Dropping the stream sends FIN; the server scores the tail and
    // finalizes the connection.
    Ok((frames, bytes))
}

fn write_chunked(stream: &mut TcpStream, bytes: &[u8], chunk: usize) -> io::Result<()> {
    if chunk == 0 {
        return stream.write_all(bytes);
    }
    for piece in bytes.chunks(chunk) {
        stream.write_all(piece)?;
        stream.flush()?;
    }
    Ok(())
}
