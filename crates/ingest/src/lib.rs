//! Async wire ingestion front half: a non-blocking socket server that
//! feeds the fleet engine live fieldbus traffic at wire rate.
//!
//! Everything below the scoring boundary in this workspace consumed
//! traffic from memory (`run_scenario`) or from recorded tapes
//! (`score_capture`, `temspc replay`). This crate adds the missing
//! front half: plants connect over TCP, speak a minimal length-prefixed
//! protocol around the existing strict [`temspc_fieldbus`] wire format,
//! and get their closed-loop steps scored by the same T²/SPE path the
//! offline tools use — detections served off the wire are bit-identical
//! to an offline replay of the same traffic, and [`detection_digest`]
//! makes that checkable from the command line.
//!
//! The pieces:
//!
//! * [`poller`] — level-triggered readiness polling (`epoll` on Linux,
//!   a degraded pure-`std` tick elsewhere) behind one tiny API.
//! * [`stream`] — the wire protocol: handshake framing, incremental
//!   torn-read-safe parsing, hostile-input hardening.
//! * [`server`] — the event loop + intake pipeline: bounded per-plant
//!   queues, park/unpark backpressure, batch scoring on the worker
//!   pool, per-connection reports.
//! * [`drive`] — the tape-replay load generator used by the smoke tests
//!   and the ingestion benchmark.
//! * [`shutdown`] — SIGINT/SIGTERM to a cooperative stop flag, so serve
//!   drains in flight work and flushes its report instead of dying.

#![warn(missing_docs)]

pub mod drive;
pub mod poller;
pub mod server;
pub mod shutdown;
pub mod stream;

pub use drive::{drive, DriveConfig, DriveError, DriveReport};
pub use poller::Polling;
pub use server::{
    detection_digest, load_report, save_report, ConnectionReport, IngestConfig, IngestReport,
    IngestServer, ModelSource,
};
pub use shutdown::{install_handlers, stop_flag};
pub use stream::{
    encode_hello, encode_record, Hello, StreamError, StreamEvent, StreamParser, HELLO_LEN,
    MAX_MESSAGE_LEN, PROTOCOL_VERSION,
};
