//! Readiness polling behind a tiny cross-platform abstraction.
//!
//! The ingestion server multiplexes thousands of non-blocking sockets on
//! one thread, which needs an OS readiness facility. The workspace's
//! dependency policy rules out `mio`/`libc`, so on Linux the [`Poller`]
//! declares the four `epoll` entry points directly against the C library
//! the standard library already links. Elsewhere a degraded pure-`std`
//! backend reports every read-interested socket as ready on a short
//! timer tick — correct (all I/O is non-blocking, so spurious readiness
//! only costs a `WouldBlock`) but busier, which is acceptable for the
//! non-production platforms it covers.
//!
//! The abstraction is deliberately minimal: level-triggered read
//! interest only, one `usize` token per registration, hangup surfaced as
//! a flag. Write interest never arises — the server only reads, and the
//! load generator uses plain blocking sockets.

use std::io;
use std::os::fd::RawFd;

/// One readiness event from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the file descriptor was registered under.
    pub token: usize,
    /// The descriptor is readable (data or EOF pending).
    pub readable: bool,
    /// The peer hung up or the descriptor errored; the next read will
    /// observe EOF or the error.
    pub closed: bool,
}

#[cfg(target_os = "linux")]
pub use linux::Poller;

#[cfg(not(target_os = "linux"))]
pub use fallback::Poller;

/// The readiness operations the event loop needs, abstracted so tests
/// can substitute a misbehaving poller (e.g. one whose re-arm fails) and
/// exercise the server's failure paths deterministically.
pub trait Polling {
    /// Registers `fd` under `token`, initially read-interested when
    /// `readable`.
    ///
    /// # Errors
    ///
    /// Propagates the backend's registration failure.
    fn register(&self, fd: RawFd, token: usize, readable: bool) -> io::Result<()>;

    /// Re-arms or parks read interest on a registered descriptor.
    ///
    /// # Errors
    ///
    /// Propagates the backend's re-arm failure.
    fn set_readable(&self, fd: RawFd, token: usize, readable: bool) -> io::Result<()>;

    /// Removes a registration.
    ///
    /// # Errors
    ///
    /// Propagates the backend's deregistration failure.
    fn deregister(&self, fd: RawFd) -> io::Result<()>;

    /// Waits up to `timeout_ms` for readiness, filling `out` (cleared
    /// first) and returning the event count.
    ///
    /// # Errors
    ///
    /// Propagates the backend's wait failure.
    fn wait(&self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<usize>;
}

impl Polling for Poller {
    fn register(&self, fd: RawFd, token: usize, readable: bool) -> io::Result<()> {
        Poller::register(self, fd, token, readable)
    }

    fn set_readable(&self, fd: RawFd, token: usize, readable: bool) -> io::Result<()> {
        Poller::set_readable(self, fd, token, readable)
    }

    fn deregister(&self, fd: RawFd) -> io::Result<()> {
        Poller::deregister(self, fd)
    }

    fn wait(&self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<usize> {
        Poller::wait(self, out, timeout_ms)
    }
}

#[cfg(target_os = "linux")]
mod linux {
    use super::{io, PollEvent, RawFd};

    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event`; packed on x86-64, where the kernel ABI
    /// defines it without padding between `events` and `data`.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    // The standard library already links the platform C library; these
    // declarations borrow the epoll entry points from it without pulling
    // in a bindings crate.
    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// Level-triggered epoll instance.
    #[derive(Debug)]
    pub struct Poller {
        epfd: i32,
    }

    impl Poller {
        /// A fresh poller.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_create1` failure.
        pub fn new() -> io::Result<Self> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: usize, readable: bool) -> io::Result<()> {
            let mut event = EpollEvent {
                events: if readable { EPOLLIN | EPOLLRDHUP } else { 0 },
                data: token as u64,
            };
            let event_ptr = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut event
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, event_ptr) }).map(|_| ())
        }

        /// Registers `fd` under `token`, initially read-interested when
        /// `readable`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failure.
        pub fn register(&self, fd: RawFd, token: usize, readable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, readable)
        }

        /// Re-arms or parks read interest on a registered descriptor —
        /// the backpressure lever: a parked connection stays open but the
        /// kernel stops reporting it readable, so its peer's TCP window
        /// eventually closes.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failure.
        pub fn set_readable(&self, fd: RawFd, token: usize, readable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, readable)
        }

        /// Removes a registration.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failure.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, false)
        }

        /// Waits up to `timeout_ms` for readiness, appending events to
        /// `out` (cleared first). Returns the number of events.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_wait` failure; `EINTR` is retried as an
        /// empty wake-up so signal arrival (SIGINT/SIGTERM) surfaces as
        /// a normal tick the caller's stop-flag check catches.
        pub fn wait(&self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<usize> {
            out.clear();
            let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
            let n = match cvt(unsafe {
                epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms)
            }) {
                Ok(n) => n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            for event in &raw[..n] {
                let events = event.events;
                let data = event.data;
                out.push(PollEvent {
                    token: data as usize,
                    readable: events & EPOLLIN != 0,
                    closed: events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod fallback {
    use super::{io, PollEvent, RawFd};
    use std::collections::BTreeMap;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Degraded pure-`std` backend: no OS readiness facility, so every
    /// read-interested registration is reported ready on each tick.
    /// Sound because all ingestion I/O is non-blocking (a spurious
    /// readable costs one `WouldBlock` read), but it polls rather than
    /// sleeps — fine for the non-Linux dev platforms it covers.
    #[derive(Debug, Default)]
    pub struct Poller {
        registered: Mutex<BTreeMap<RawFd, (usize, bool)>>,
    }

    impl Poller {
        /// A fresh poller.
        ///
        /// # Errors
        ///
        /// Infallible on this backend.
        pub fn new() -> io::Result<Self> {
            Ok(Poller::default())
        }

        /// Registers `fd` under `token`.
        ///
        /// # Errors
        ///
        /// Infallible on this backend.
        pub fn register(&self, fd: RawFd, token: usize, readable: bool) -> io::Result<()> {
            self.registered
                .lock()
                .expect("poller registry poisoned")
                .insert(fd, (token, readable));
            Ok(())
        }

        /// Re-arms or parks read interest.
        ///
        /// # Errors
        ///
        /// Fails with `NotFound` if `fd` was never registered.
        pub fn set_readable(&self, fd: RawFd, token: usize, readable: bool) -> io::Result<()> {
            match self
                .registered
                .lock()
                .expect("poller registry poisoned")
                .get_mut(&fd)
            {
                Some(entry) => {
                    *entry = (token, readable);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Removes a registration.
        ///
        /// # Errors
        ///
        /// Infallible on this backend.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered
                .lock()
                .expect("poller registry poisoned")
                .remove(&fd);
            Ok(())
        }

        /// Sleeps one short tick, then reports every read-interested
        /// registration as readable.
        ///
        /// # Errors
        ///
        /// Infallible on this backend.
        pub fn wait(&self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<usize> {
            out.clear();
            let tick = timeout_ms.clamp(1, 10) as u64;
            std::thread::sleep(Duration::from_millis(tick));
            for (&_fd, &(token, readable)) in self
                .registered
                .lock()
                .expect("poller registry poisoned")
                .iter()
            {
                if readable {
                    out.push(PollEvent {
                        token,
                        readable: true,
                        closed: false,
                    });
                }
            }
            Ok(out.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn reports_readable_data_and_respects_parking() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.register(server.as_raw_fd(), 7, true).unwrap();

        client.write_all(b"hello").unwrap();
        client.flush().unwrap();

        let mut events = Vec::new();
        let mut saw = false;
        for _ in 0..100 {
            poller.wait(&mut events, 50).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                saw = true;
                break;
            }
        }
        assert!(saw, "pending data never reported readable");

        // Parked: the pending data must stop being reported.
        poller.set_readable(server.as_raw_fd(), 7, false).unwrap();
        poller.wait(&mut events, 20).unwrap();
        assert!(
            events.iter().all(|e| e.token != 7),
            "parked fd still reported"
        );

        // Unparked: reported again (level-triggered).
        poller.set_readable(server.as_raw_fd(), 7, true).unwrap();
        let mut saw = false;
        for _ in 0..100 {
            poller.wait(&mut events, 50).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                saw = true;
                break;
            }
        }
        assert!(saw, "unparked fd never reported readable again");

        let mut server = server;
        let mut buf = [0u8; 8];
        let n = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");

        poller.deregister(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn wait_times_out_with_no_events() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let n = poller.wait(&mut events, 10).unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
    }
}
