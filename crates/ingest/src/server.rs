//! The ingestion server: one non-blocking event loop accepting many
//! concurrent plant connections, one intake thread fanning reassembled
//! step batches into the persistent [`WorkerPool`] for T²/SPE scoring.
//!
//! # Architecture
//!
//! ```text
//!            event-loop thread                intake thread
//!  epoll ──► read → StreamParser ──► per-conn ──► batch → WorkerPool
//!            (torn-read reassembly)  step queue    (StreamScorer per plant)
//!                 ▲                  (bounded)          │
//!                 └── park read interest when full ◄────┘ drain
//! ```
//!
//! * **Backpressure** is explicit: when a connection's step queue
//!   reaches `queue_depth`, the event loop parks its read interest; the
//!   kernel buffer then fills and the peer's TCP window closes. A
//!   periodic tick unparks connections whose queues have drained below
//!   half depth. Frames are therefore *never* dropped under load — the
//!   `ingest_dropped_steps_total` counter exists as a hard-cap backstop
//!   and staying at zero is asserted by the integration tests.
//! * **Bit-identical scoring**: each connection's steps go through a
//!   [`StreamScorer`] — the exact scoring path `score_capture` and
//!   `run_scenario` use — so a detection served off the wire equals the
//!   offline replay of the same tape, digest for digest.
//! * **Graceful shutdown**: when the stop flag is set, the loop stops
//!   accepting, marks every connection end-of-stream, drains all queued
//!   batches through the pool, and returns the final [`IngestReport`]
//!   (which `temspc ingest serve` flushes atomically to a TPB file).

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use temspc::diagnosis::{diagnose, VerdictThresholds};
use temspc::persistence::PersistenceError;
use temspc::{DualMspc, ScenarioKind, ScenarioOutcome, StreamScorer, Verdict};
use temspc_fieldbus::{CaptureRecord, ReplayLink, ReplayStep, TapPoint};
use temspc_fleet::{
    Counter, FleetReport, Gauge, Histogram, MetricsRegistry, PlantRecord, WorkerPool,
};

use crate::poller::Poller;
use crate::stream::{Hello, StreamEvent, StreamParser};

/// File magic + format version for ingestion reports.
const REPORT_MAGIC: &[u8; 8] = b"TEINGRP\x01";

/// Configuration of the ingestion server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestConfig {
    /// Listen address (`host:port`; port 0 picks a free one).
    pub addr: String,
    /// Concurrent connection cap; further accepts are refused.
    pub max_connections: usize,
    /// Per-connection step-queue bound: reaching it parks the
    /// connection's read interest until the intake thread drains the
    /// queue below half. (A queue may transiently exceed the bound by
    /// the steps decoded from one already-read chunk.)
    pub queue_depth: usize,
    /// Most steps scored per connection per intake batch.
    pub batch_steps: usize,
    /// Scoring worker threads (0 → one per CPU core, capped at 16).
    pub threads: usize,
    /// Stop serving once this many connections have been fully scored
    /// (`None` → serve until the stop flag is raised).
    pub expect: Option<usize>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 1024,
            queue_depth: 256,
            batch_steps: 512,
            threads: 0,
            expect: None,
        }
    }
}

/// Outcome of one plant connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectionReport {
    /// Plant id from the handshake (`u32::MAX` if none arrived).
    pub plant: u32,
    /// Scenario kind the handshake declared.
    pub kind: ScenarioKind,
    /// Scenario seed the handshake declared.
    pub seed: u64,
    /// Whether the stream was scored to a clean end.
    pub completed: bool,
    /// Closed-loop steps scored.
    pub steps: u64,
    /// Wire frames received.
    pub frames: u64,
    /// Alarms raised before the anomaly onset.
    pub false_alarms: u32,
    /// Hours from onset to first detection, if detected.
    pub detection_latency_hours: Option<f64>,
    /// Disturbance-vs-intrusion verdict, if diagnosable.
    pub verdict: Option<Verdict>,
    /// Detection digest ([`detection_digest`]) for bit-identity diffs
    /// against offline replay (0 when not scored).
    pub digest: u64,
    /// Failure description for incomplete streams.
    pub fault: Option<String>,
}

/// Aggregate outcome of one serving session.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IngestReport {
    /// Per-connection outcomes, sorted by plant id.
    pub connections: Vec<ConnectionReport>,
    /// Total wire frames received.
    pub frames: u64,
    /// Total closed-loop steps scored.
    pub steps: u64,
    /// Total bytes read off sockets.
    pub bytes: u64,
    /// Steps dropped at the hard queue cap (zero under the parking
    /// backpressure design; asserted zero by the smoke tests).
    pub drops: u64,
    /// Connections that died to a framing/reassembly/scoring error.
    pub reassembly_errors: u64,
}

impl IngestReport {
    /// The session reframed as a fleet report: one [`PlantRecord`] per
    /// connection, so the existing confusion-matrix and latency
    /// aggregation applies to served traffic unchanged.
    pub fn fleet_report(&self) -> FleetReport {
        let records = self
            .connections
            .iter()
            .map(|c| PlantRecord {
                plant: c.plant,
                kind: c.kind,
                seed: c.seed,
                completed: c.completed,
                restarts: 0,
                fault: c.fault.clone(),
                detection_latency_hours: c.detection_latency_hours,
                false_alarms: c.false_alarms,
                verdict: c.verdict,
                shutdown_hour: None,
                model_generation: 0,
            })
            .collect();
        FleetReport::new(records)
    }
}

/// Saves an ingestion report to `path` (TPB with magic header), via the
/// same atomic temp-file + rename discipline as every other persisted
/// artifact — a SIGTERM mid-flush leaves the previous report, never a
/// torn file.
///
/// # Errors
///
/// Returns [`PersistenceError`] on I/O or encoding failures.
pub fn save_report(report: &IngestReport, path: impl AsRef<Path>) -> Result<(), PersistenceError> {
    let mut bytes = Vec::with_capacity(1024);
    bytes.extend_from_slice(REPORT_MAGIC);
    bytes.extend_from_slice(&temspc_persist::to_bytes(report)?);
    temspc_persist::write_atomic(path.as_ref(), &bytes)?;
    Ok(())
}

/// Loads a report saved with [`save_report`].
///
/// # Errors
///
/// Returns [`PersistenceError`] on I/O, header or decoding failures.
pub fn load_report(path: impl AsRef<Path>) -> Result<IngestReport, PersistenceError> {
    let bytes = std::fs::read(path.as_ref())?;
    let payload = bytes
        .strip_prefix(REPORT_MAGIC.as_slice())
        .ok_or(PersistenceError::BadHeader)?;
    Ok(temspc_persist::from_bytes(payload)?)
}

/// A stable 64-bit digest over a scored outcome's detection-relevant
/// fields: both levels' detection and first-violation hours (bit
/// patterns, not rounded values) and the false-alarm count.
///
/// Two outcomes digest equal iff their detections are bit-identical, so
/// diffing the digest printed by `temspc ingest serve` against `temspc
/// replay --digest` of the same tape proves the served scoring path
/// equals the offline one without shipping whole outcomes around.
pub fn detection_digest(outcome: &ScenarioOutcome) -> u64 {
    // FNV-1a: dependency-free and deterministic across platforms.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut write = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for event in [&outcome.detection.controller, &outcome.detection.process] {
        match event {
            Some(e) => {
                write(&[1]);
                write(&e.detected_hour.to_bits().to_be_bytes());
                write(&e.first_violation_hour.to_bits().to_be_bytes());
            }
            None => write(&[0]),
        }
    }
    write(&(outcome.false_alarms as u64).to_be_bytes());
    hash
}

/// Poison-tolerant lock (same rationale as the worker pool: all guarded
/// state is consistent on every unwind path).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Handles into the server's metric family.
struct IngestMetrics {
    connections_current: Gauge,
    connections_total: Counter,
    refused_total: Counter,
    bytes_total: Counter,
    frames_total: Counter,
    steps_total: Counter,
    dropped_steps_total: Counter,
    reassembly_errors_total: Counter,
    parked_total: Counter,
    batch_latency: Histogram,
}

impl IngestMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        IngestMetrics {
            connections_current: registry.gauge(
                "ingest_connections_current",
                "plant connections currently open",
            ),
            connections_total: registry
                .counter("ingest_connections_total", "plant connections accepted"),
            refused_total: registry.counter(
                "ingest_connections_refused_total",
                "connections refused at the concurrency cap",
            ),
            bytes_total: registry.counter("ingest_bytes_total", "bytes read off sockets"),
            frames_total: registry.counter("ingest_frames_total", "wire frames received"),
            steps_total: registry.counter("ingest_steps_total", "closed-loop steps reassembled"),
            dropped_steps_total: registry.counter(
                "ingest_dropped_steps_total",
                "steps dropped at the hard queue cap (0 under parking backpressure)",
            ),
            reassembly_errors_total: registry.counter(
                "ingest_reassembly_errors_total",
                "connections killed by framing, reassembly or scoring errors",
            ),
            parked_total: registry.counter(
                "ingest_parked_total",
                "backpressure events: read interest parked on a full queue",
            ),
            batch_latency: registry.histogram(
                "ingest_batch_queue_latency_seconds",
                "time a batch's oldest step waited in its connection queue",
                &[0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0],
            ),
        }
    }
}

/// State one connection shares between the event loop and the intake
/// thread.
#[derive(Default)]
struct ConnState {
    hello: Option<Hello>,
    steps: VecDeque<ReplayStep>,
    /// Enqueue instant of the oldest undrained step (queue-latency
    /// observation point).
    oldest: Option<Instant>,
    frames: u64,
    /// No more steps will arrive (EOF, error, or server shutdown).
    eof: bool,
    fault: Option<String>,
}

#[derive(Default)]
struct ConnShared {
    state: Mutex<ConnState>,
}

/// Event-loop-side connection bookkeeping.
struct Conn {
    stream: TcpStream,
    parser: StreamParser,
    /// Records of the step currently being reassembled (0..4).
    pending_step: Vec<CaptureRecord>,
    shared: Arc<ConnShared>,
    parked: bool,
    /// Whether the intake thread has been told about this token.
    announced: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            parser: StreamParser::new(),
            pending_step: Vec::with_capacity(TapPoint::STEP_ORDER.len()),
            shared: Arc::new(ConnShared::default()),
            parked: false,
            announced: false,
        }
    }
}

/// Announcement channel from the event loop to the intake thread: each
/// token is announced once; the intake thread keeps polling announced
/// connections until it retires them.
#[derive(Default)]
struct IntakeQueue {
    ready: Mutex<VecDeque<(usize, Arc<ConnShared>)>>,
    wake: Condvar,
}

impl IntakeQueue {
    fn push(&self, token: usize, shared: &Arc<ConnShared>) {
        lock(&self.ready).push_back((token, Arc::clone(shared)));
        self.wake.notify_one();
    }

    fn drain_wait(&self, timeout: Duration) -> Vec<(usize, Arc<ConnShared>)> {
        let mut guard = lock(&self.ready);
        if guard.is_empty() {
            guard = self
                .wake
                .wait_timeout(guard, timeout)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        guard.drain(..).collect()
    }
}

/// The ingestion server. Bind once, then [`IngestServer::run`] the
/// serving session; metrics accumulate in [`IngestServer::metrics`].
pub struct IngestServer<'m> {
    monitor: &'m DualMspc,
    config: IngestConfig,
    listener: TcpListener,
    registry: MetricsRegistry,
    pool: WorkerPool,
}

impl<'m> IngestServer<'m> {
    /// Binds the listen socket and spawns the scoring pool.
    ///
    /// # Errors
    ///
    /// Propagates socket binding failure.
    pub fn bind(monitor: &'m DualMspc, config: IngestConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let pool = WorkerPool::new(config.threads);
        Ok(IngestServer {
            monitor,
            config,
            listener,
            registry: MetricsRegistry::new(),
            pool,
        })
    }

    /// The bound listen address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The server's configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// Serves until the stop flag is raised (or `expect` connections
    /// have been fully scored), then drains all in-flight batches and
    /// returns the session report.
    ///
    /// # Errors
    ///
    /// Propagates event-loop I/O failures (poller or listener); per-
    /// connection errors never fail the server, they fail the
    /// connection's report.
    pub fn run(&self, stop: &AtomicBool) -> io::Result<IngestReport> {
        let metrics = IngestMetrics::register(&self.registry);
        let intake = IntakeQueue::default();
        let reports: Mutex<Vec<ConnectionReport>> = Mutex::new(Vec::new());
        let drained = AtomicBool::new(false);
        let finished = AtomicUsize::new(0);

        let loop_result = std::thread::scope(|scope| {
            let intake_thread = scope.spawn(|| {
                intake_loop(
                    self.monitor,
                    &self.pool,
                    self.config.batch_steps,
                    &intake,
                    &drained,
                    &reports,
                    &metrics,
                    &finished,
                )
            });
            let result = self.event_loop(stop, &metrics, &intake, &finished);
            drained.store(true, Ordering::SeqCst);
            intake.wake.notify_one();
            intake_thread.join().expect("intake thread panicked");
            result
        });
        loop_result?;

        let mut connections = reports.into_inner().unwrap_or_else(PoisonError::into_inner);
        connections.sort_by_key(|c| c.plant);
        Ok(IngestReport {
            connections,
            frames: metrics.frames_total.get(),
            steps: metrics.steps_total.get(),
            bytes: metrics.bytes_total.get(),
            drops: metrics.dropped_steps_total.get(),
            reassembly_errors: metrics.reassembly_errors_total.get(),
        })
    }

    fn event_loop(
        &self,
        stop: &AtomicBool,
        metrics: &IngestMetrics,
        intake: &IntakeQueue,
        finished: &AtomicUsize,
    ) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.register(self.listener.as_raw_fd(), 0, true)?;

        let mut state = EventState {
            poller,
            conns: HashMap::new(),
            next_token: 1,
            max_connections: self.config.max_connections.max(1),
            queue_depth: self.config.queue_depth.max(1),
            read_buf: vec![0u8; 65536].into_boxed_slice(),
            metrics,
            intake,
        };
        let mut events = Vec::new();
        loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            if let Some(expected) = self.config.expect {
                if finished.load(Ordering::SeqCst) >= expected {
                    break;
                }
            }
            state.poller.wait(&mut events, 5)?;
            for &event in &events {
                if event.token == 0 {
                    state.accept_ready(&self.listener)?;
                } else if event.readable || event.closed {
                    state.conn_readable(event.token);
                }
            }
            state.unpark_tick();
        }
        state.shutdown_remaining();
        Ok(())
    }
}

/// The event loop's mutable world, factored out so connection handling
/// reads as methods instead of parameter soup.
struct EventState<'s> {
    poller: Poller,
    /// Live connections by token. Tokens are never reused — the intake
    /// thread keys its scorers by token, and a recycled token could
    /// collide with a connection it has not finalized yet.
    conns: HashMap<usize, Conn>,
    next_token: usize,
    max_connections: usize,
    queue_depth: usize,
    /// Reusable socket read buffer, shared across every connection's
    /// reads on this (single) event-loop thread.
    read_buf: Box<[u8]>,
    metrics: &'s IngestMetrics,
    intake: &'s IntakeQueue,
}

impl EventState<'_> {
    fn accept_ready(&mut self, listener: &TcpListener) -> io::Result<()> {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    self.metrics.connections_total.inc();
                    if self.conns.len() >= self.max_connections {
                        self.metrics.refused_total.inc();
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        self.metrics.refused_total.inc();
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, true)
                        .is_err()
                    {
                        self.metrics.refused_total.inc();
                        continue;
                    }
                    self.conns.insert(token, Conn::new(stream));
                    self.metrics.connections_current.inc();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failures (e.g. the peer aborted
                // between queueing and accept) are not server failures.
                Err(_) => break,
            }
        }
        Ok(())
    }

    fn conn_readable(&mut self, token: usize) {
        let outcome = {
            // Split the borrows: the connection lives in the slab, the
            // poller/metrics/intake are sibling fields.
            let EventState {
                poller,
                conns,
                queue_depth,
                read_buf,
                metrics,
                intake,
                ..
            } = self;
            let Some(conn) = conns.get_mut(&token) else {
                return; // already closed this tick
            };
            read_conn(conn, token, *queue_depth, read_buf, poller, metrics, intake)
        };
        match outcome {
            ReadOutcome::Continue => {}
            ReadOutcome::Eof => self.close_conn(token, None),
            ReadOutcome::Fault(fault) => {
                self.metrics.reassembly_errors_total.inc();
                self.close_conn(token, Some(fault));
            }
        }
    }

    /// Retires a connection: deregisters the socket, marks the shared
    /// state end-of-stream (diagnosing a tear if the wire died mid-
    /// message or mid-step) and announces the token so the intake thread
    /// finalizes it.
    fn close_conn(&mut self, token: usize, fault: Option<String>) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.metrics.connections_current.dec();
        let mut fault = fault;
        if fault.is_none() && (conn.parser.pending_bytes() > 0 || !conn.pending_step.is_empty()) {
            self.metrics.reassembly_errors_total.inc();
            fault = Some(format!(
                "connection closed mid-stream ({} bytes and {} frames of an \
                 unfinished step pending)",
                conn.parser.pending_bytes(),
                conn.pending_step.len()
            ));
        }
        {
            let mut state = lock(&conn.shared.state);
            state.eof = true;
            if state.fault.is_none() {
                state.fault = fault;
            }
        }
        // Announce each token at most once, ever: a second announcement
        // could arrive after the intake thread finalized the entry and
        // would resurrect it as a duplicate report.
        if conn.announced {
            self.intake.wake.notify_one();
        } else {
            self.intake.push(token, &conn.shared);
        }
    }

    /// Un-parks connections whose queues have drained below half depth —
    /// the periodic other half of the backpressure protocol (the intake
    /// thread never touches the poller).
    fn unpark_tick(&mut self) {
        for (&token, conn) in &mut self.conns {
            if !conn.parked {
                continue;
            }
            let depth = lock(&conn.shared.state).steps.len();
            if depth * 2 <= self.queue_depth
                && self
                    .poller
                    .set_readable(conn.stream.as_raw_fd(), token, true)
                    .is_ok()
            {
                conn.parked = false;
            }
        }
    }

    /// Shutdown path: every still-open connection is marked end-of-
    /// stream so the intake thread drains its queue and reports it as
    /// interrupted rather than silently vanishing.
    fn shutdown_remaining(&mut self) {
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(
                token,
                Some("server stopped while the stream was live".into()),
            );
        }
    }
}

enum ReadOutcome {
    Continue,
    Eof,
    Fault(String),
}

/// Pulls everything the socket has, feeding the parser and enqueuing
/// reassembled steps, until the read would block, the connection parks,
/// or the stream ends or faults.
fn read_conn(
    conn: &mut Conn,
    token: usize,
    queue_depth: usize,
    buf: &mut [u8],
    poller: &Poller,
    metrics: &IngestMetrics,
    intake: &IntakeQueue,
) -> ReadOutcome {
    while !conn.parked {
        match conn.stream.read(buf) {
            Ok(0) => return ReadOutcome::Eof,
            Ok(n) => {
                metrics.bytes_total.add(n as u64);
                conn.parser.feed(&buf[..n]);
                if let Err(fault) = drain_parser(conn, token, queue_depth, poller, metrics, intake)
                {
                    return ReadOutcome::Fault(fault);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return ReadOutcome::Fault(format!("socket read failed: {e}")),
        }
    }
    ReadOutcome::Continue
}

/// Drains every complete parser event, reassembling steps and enqueuing
/// them for the intake thread. Returns the fault message on the first
/// protocol/reassembly error.
fn drain_parser(
    conn: &mut Conn,
    token: usize,
    queue_depth: usize,
    poller: &Poller,
    metrics: &IngestMetrics,
    intake: &IntakeQueue,
) -> Result<(), String> {
    loop {
        match conn.parser.next_event() {
            Ok(None) => return Ok(()),
            Ok(Some(StreamEvent::Hello(hello))) => {
                lock(&conn.shared.state).hello = Some(hello);
            }
            Ok(Some(StreamEvent::Record(record))) => {
                metrics.frames_total.inc();
                conn.pending_step.push(record);
                if conn.pending_step.len() < TapPoint::STEP_ORDER.len() {
                    continue;
                }
                // Reuse the replay grammar for step reassembly: tap
                // order, frame-kind direction, hour/seq/width agreement
                // — the same strictness an offline tape replay gets.
                let step = match ReplayLink::new(&conn.pending_step).next() {
                    Some(Ok(step)) => step,
                    Some(Err(e)) => return Err(format!("step reassembly failed: {e}")),
                    None => unreachable!("four records always yield one result"),
                };
                conn.pending_step.clear();
                metrics.steps_total.inc();
                let depth = {
                    let mut state = lock(&conn.shared.state);
                    state.frames += 4;
                    if state.steps.len() >= queue_depth.saturating_mul(8).max(8) {
                        // Hard-cap backstop; unreachable under parking.
                        metrics.dropped_steps_total.inc();
                        state.steps.len()
                    } else {
                        if state.oldest.is_none() {
                            state.oldest = Some(Instant::now());
                        }
                        state.steps.push_back(step);
                        state.steps.len()
                    }
                };
                if !conn.announced {
                    conn.announced = true;
                    intake.push(token, &conn.shared);
                } else {
                    intake.wake.notify_one();
                }
                if depth >= queue_depth && !conn.parked {
                    // Backpressure: stop reading this connection; its
                    // kernel buffer and then the peer's send window
                    // absorb the flow until the queue drains.
                    metrics.parked_total.inc();
                    if poller
                        .set_readable(conn.stream.as_raw_fd(), token, false)
                        .is_ok()
                    {
                        conn.parked = true;
                    }
                }
            }
            Err(e) => return Err(format!("stream error: {e}")),
        }
    }
}

/// One connection's scoring job slot: the scorer plus its step batch,
/// taken (`Option`) by whichever pool worker claims the slot.
type BatchJob<'m> = Mutex<Option<(StreamScorer<'m>, Vec<ReplayStep>)>>;

#[allow(clippy::too_many_arguments)]
fn intake_loop<'m>(
    monitor: &'m DualMspc,
    pool: &WorkerPool,
    batch_steps: usize,
    intake: &IntakeQueue,
    drained: &AtomicBool,
    reports: &Mutex<Vec<ConnectionReport>>,
    metrics: &IngestMetrics,
    finished: &AtomicUsize,
) {
    struct Entry<'m> {
        shared: Arc<ConnShared>,
        scorer: Option<StreamScorer<'m>>,
        steps: u64,
        fault: Option<String>,
    }

    let batch_steps = batch_steps.max(1);
    let mut active: HashMap<usize, Entry<'m>> = HashMap::new();
    loop {
        for (token, shared) in intake.drain_wait(Duration::from_millis(5)) {
            active.entry(token).or_insert(Entry {
                shared,
                scorer: None,
                steps: 0,
                fault: None,
            });
        }

        // Assemble one bounded batch per connection with queued steps.
        let mut batch_tokens: Vec<usize> = Vec::new();
        let mut jobs: Vec<BatchJob<'m>> = Vec::new();
        for (&token, entry) in &mut active {
            let batch = {
                let mut state = lock(&entry.shared.state);
                if state.steps.is_empty() {
                    None
                } else {
                    let take = state.steps.len().min(batch_steps);
                    let batch: Vec<ReplayStep> = state.steps.drain(..take).collect();
                    if let Some(oldest) = state.oldest.take() {
                        metrics
                            .batch_latency
                            .observe(oldest.elapsed().as_secs_f64());
                    }
                    if !state.steps.is_empty() {
                        state.oldest = Some(Instant::now());
                    }
                    Some(batch)
                }
            };
            let Some(batch) = batch else { continue };
            if entry.fault.is_some() {
                continue; // scorer already condemned; drain and discard
            }
            if entry.scorer.is_none() {
                let onset = lock(&entry.shared.state)
                    .hello
                    .as_ref()
                    .map(|h| h.scenario.onset_hour);
                match onset {
                    Some(onset) => entry.scorer = Some(monitor.stream_scorer(onset)),
                    None => {
                        // Unreachable (the parser emits Hello first),
                        // kept as a fault rather than a panic.
                        entry.fault = Some("steps arrived before the handshake".into());
                        continue;
                    }
                }
            }
            let scorer = entry.scorer.take().expect("scorer just ensured");
            batch_tokens.push(token);
            jobs.push(Mutex::new(Some((scorer, batch))));
        }

        // Fan the batches over the pool: one job per connection, scorers
        // moved in and handed back through the sink.
        if !jobs.is_empty() {
            pool.run(
                jobs.len(),
                |j| {
                    let (mut scorer, batch) =
                        lock(&jobs[j]).take().expect("each job taken exactly once");
                    let mut fault = None;
                    for step in &batch {
                        if let Err(e) = scorer.push_step(step) {
                            fault = Some(format!("scoring rejected a step: {e}"));
                            break;
                        }
                    }
                    (scorer, batch.len() as u64, fault)
                },
                |j, (scorer, scored, fault)| {
                    let entry = active
                        .get_mut(&batch_tokens[j])
                        .expect("batch token is active");
                    entry.steps += scored;
                    match fault {
                        None => entry.scorer = Some(scorer),
                        Some(fault) => {
                            metrics.reassembly_errors_total.inc();
                            entry.fault = Some(fault);
                        }
                    }
                },
            );
        }

        // Finalize every connection that hit end-of-stream with an empty
        // queue: fold its scorer into an outcome and report.
        let finished_tokens: Vec<usize> = active
            .iter()
            .filter(|(_, entry)| {
                let state = lock(&entry.shared.state);
                state.eof && state.steps.is_empty()
            })
            .map(|(&token, _)| token)
            .collect();
        for token in finished_tokens {
            let mut entry = active.remove(&token).expect("token just listed");
            let (hello, fault, frames) = {
                let state = lock(&entry.shared.state);
                (state.hello.clone(), state.fault.clone(), state.frames)
            };
            let fault = entry.fault.take().or(fault);
            let report = match (hello, entry.scorer.take(), fault) {
                (Some(hello), Some(scorer), None) => {
                    let onset = hello.scenario.onset_hour;
                    let outcome = scorer.finish(hello.scenario.clone(), None);
                    let verdict = diagnose(monitor, &outcome, VerdictThresholds::default())
                        .map(|d| d.verdict);
                    ConnectionReport {
                        plant: hello.plant,
                        kind: hello.scenario.kind,
                        seed: hello.scenario.seed,
                        completed: true,
                        steps: entry.steps,
                        frames,
                        false_alarms: outcome.false_alarms as u32,
                        detection_latency_hours: outcome.detection.run_length(onset),
                        verdict,
                        digest: detection_digest(&outcome),
                        fault: None,
                    }
                }
                (hello, _, fault) => {
                    let (plant, kind, seed) = hello
                        .map(|h| (h.plant, h.scenario.kind, h.scenario.seed))
                        .unwrap_or((u32::MAX, ScenarioKind::Normal, 0));
                    ConnectionReport {
                        plant,
                        kind,
                        seed,
                        completed: false,
                        steps: entry.steps,
                        frames,
                        false_alarms: 0,
                        detection_latency_hours: None,
                        verdict: None,
                        digest: 0,
                        fault: fault
                            .or_else(|| Some("connection closed before any complete step".into())),
                    }
                }
            };
            lock(reports).push(report);
            finished.fetch_add(1, Ordering::SeqCst);
        }

        if drained.load(Ordering::SeqCst) && active.is_empty() && lock(&intake.ready).is_empty() {
            return;
        }
    }
}
