//! The ingestion server: one non-blocking event loop accepting many
//! concurrent plant connections, one intake thread fanning reassembled
//! step batches into the persistent [`WorkerPool`] for T²/SPE scoring.
//!
//! # Architecture
//!
//! ```text
//!            event-loop thread                intake thread
//!  epoll ──► read → StreamParser ──► per-conn ──► batch → WorkerPool
//!            (torn-read reassembly)  step queue    (StreamScorer per plant)
//!                 ▲                  (bounded)          │
//!                 └── park read interest when full ◄────┘ drain
//! ```
//!
//! * **Backpressure** is explicit: when a connection's step queue
//!   reaches `queue_depth`, the event loop parks its read interest; the
//!   kernel buffer then fills and the peer's TCP window closes. A
//!   periodic tick unparks connections whose queues have drained below
//!   half depth. Frames are therefore *never* dropped under load — the
//!   `ingest_dropped_steps_total` counter exists as a hard-cap backstop
//!   and staying at zero is asserted by the integration tests.
//! * **Bit-identical scoring**: each connection's steps go through a
//!   [`StreamScorer`] — the exact scoring path `score_capture` and
//!   `run_scenario` use — so a detection served off the wire equals the
//!   offline replay of the same tape, digest for digest.
//! * **Per-plant models**: with a store-backed [`ModelSource`], each
//!   connection resolves its cohort's monitor through the sharded
//!   [`ModelStore`] on handshake (LRU residency, calibrate-on-miss, hot
//!   reload on generation bump), so no plant is scored against another
//!   regime's control limits. The generation used is pinned for the
//!   connection's lifetime and recorded in its report.
//! * **Live incidents**: an optional sink streams line-framed
//!   `key=value` events (detections as their block flushes, the final
//!   verdict, faults) the moment they fire, instead of only a report at
//!   drain.
//! * **Graceful shutdown**: when the stop flag is set, the loop stops
//!   accepting, marks every connection end-of-stream, drains all queued
//!   batches through the pool, and returns the final [`IngestReport`]
//!   (which `temspc ingest serve` flushes atomically to a TPB file).

use std::collections::{HashMap, HashSet, VecDeque};
use std::fs::File;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use temspc::diagnosis::{diagnose, VerdictThresholds};
use temspc::persistence::PersistenceError;
use temspc::{AnomalousEvent, DualMspc, ScenarioKind, ScenarioOutcome, StreamScorer, Verdict};
use temspc_fieldbus::{CaptureRecord, ReplayLink, ReplayStep, TapPoint};
use temspc_fleet::{
    Counter, FleetReport, Gauge, Histogram, MetricsRegistry, ModelStore, PlantKey, PlantRecord,
    WorkerPool,
};

use crate::poller::{Poller, Polling};
use crate::stream::{Hello, StreamEvent, StreamParser};

/// File magic + format version for ingestion reports. Version 2 added
/// the per-connection `model_generation` field.
const REPORT_MAGIC: &[u8; 8] = b"TEINGRP\x02";

/// Configuration of the ingestion server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestConfig {
    /// Listen address (`host:port`; port 0 picks a free one).
    pub addr: String,
    /// Concurrent connection cap; further accepts are refused.
    pub max_connections: usize,
    /// Per-connection step-queue bound: reaching it parks the
    /// connection's read interest until the intake thread drains the
    /// queue below half. (A queue may transiently exceed the bound by
    /// the steps decoded from one already-read chunk.)
    pub queue_depth: usize,
    /// Most steps scored per connection per intake batch.
    pub batch_steps: usize,
    /// Scoring worker threads (0 → one per CPU core, capped at 16).
    pub threads: usize,
    /// Stop serving once this many connections have been fully scored
    /// (`None` → serve until the stop flag is raised).
    pub expect: Option<usize>,
    /// Live incident sink: a path (plain file, or e.g. `/dev/stdout`)
    /// that receives line-framed `key=value` events — detections as
    /// their scoring block flushes, final verdicts, faults — flushed
    /// per line so it can be tailed. `None` disables the stream.
    pub incidents: Option<String>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 1024,
            queue_depth: 256,
            batch_steps: 512,
            threads: 0,
            expect: None,
            incidents: None,
        }
    }
}

/// Outcome of one plant connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectionReport {
    /// Plant id from the handshake (`u32::MAX` if none arrived).
    pub plant: u32,
    /// Scenario kind the handshake declared.
    pub kind: ScenarioKind,
    /// Scenario seed the handshake declared.
    pub seed: u64,
    /// Whether the stream was scored to a clean end.
    pub completed: bool,
    /// Closed-loop steps scored.
    pub steps: u64,
    /// Wire frames received.
    pub frames: u64,
    /// Alarms raised before the anomaly onset.
    pub false_alarms: u32,
    /// Hours from onset to first detection, if detected.
    pub detection_latency_hours: Option<f64>,
    /// Disturbance-vs-intrusion verdict, if diagnosable.
    pub verdict: Option<Verdict>,
    /// Detection digest ([`detection_digest`]) for bit-identity diffs
    /// against offline replay (0 when not scored).
    pub digest: u64,
    /// Generation of the store entry whose model scored this connection
    /// (0 on the shared-monitor path, or when never scored). Pinned at
    /// handshake resolution, so a hot reload mid-stream does not change
    /// the model under a live scorer.
    pub model_generation: u64,
    /// Failure description for incomplete streams.
    pub fault: Option<String>,
}

/// Aggregate outcome of one serving session.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IngestReport {
    /// Per-connection outcomes, sorted by plant id.
    pub connections: Vec<ConnectionReport>,
    /// Total wire frames received.
    pub frames: u64,
    /// Total closed-loop steps scored.
    pub steps: u64,
    /// Total bytes read off sockets.
    pub bytes: u64,
    /// Steps dropped at the hard queue cap (zero under the parking
    /// backpressure design; asserted zero by the smoke tests).
    pub drops: u64,
    /// Connections that died to a framing/reassembly/scoring error.
    pub reassembly_errors: u64,
}

impl IngestReport {
    /// The session reframed as a fleet report: one [`PlantRecord`] per
    /// connection, so the existing confusion-matrix and latency
    /// aggregation applies to served traffic unchanged.
    pub fn fleet_report(&self) -> FleetReport {
        let records = self
            .connections
            .iter()
            .map(|c| PlantRecord {
                plant: c.plant,
                kind: c.kind,
                seed: c.seed,
                completed: c.completed,
                restarts: 0,
                fault: c.fault.clone(),
                detection_latency_hours: c.detection_latency_hours,
                false_alarms: c.false_alarms,
                verdict: c.verdict,
                shutdown_hour: None,
                model_generation: c.model_generation,
            })
            .collect();
        FleetReport::new(records)
    }
}

/// Saves an ingestion report to `path` (TPB with magic header), via the
/// same atomic temp-file + rename discipline as every other persisted
/// artifact — a SIGTERM mid-flush leaves the previous report, never a
/// torn file.
///
/// # Errors
///
/// Returns [`PersistenceError`] on I/O or encoding failures.
pub fn save_report(report: &IngestReport, path: impl AsRef<Path>) -> Result<(), PersistenceError> {
    let mut bytes = Vec::with_capacity(1024);
    bytes.extend_from_slice(REPORT_MAGIC);
    bytes.extend_from_slice(&temspc_persist::to_bytes(report)?);
    temspc_persist::write_atomic(path.as_ref(), &bytes)?;
    Ok(())
}

/// Loads a report saved with [`save_report`].
///
/// # Errors
///
/// Returns [`PersistenceError`] on I/O, header or decoding failures.
pub fn load_report(path: impl AsRef<Path>) -> Result<IngestReport, PersistenceError> {
    let bytes = std::fs::read(path.as_ref())?;
    let payload = bytes
        .strip_prefix(REPORT_MAGIC.as_slice())
        .ok_or(PersistenceError::BadHeader)?;
    Ok(temspc_persist::from_bytes(payload)?)
}

/// A stable 64-bit digest over a scored outcome's detection-relevant
/// fields: both levels' detection and first-violation hours (bit
/// patterns, not rounded values) and the false-alarm count.
///
/// Two outcomes digest equal iff their detections are bit-identical, so
/// diffing the digest printed by `temspc ingest serve` against `temspc
/// replay --digest` of the same tape proves the served scoring path
/// equals the offline one without shipping whole outcomes around.
pub fn detection_digest(outcome: &ScenarioOutcome) -> u64 {
    // FNV-1a: dependency-free and deterministic across platforms.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut write = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for event in [&outcome.detection.controller, &outcome.detection.process] {
        match event {
            Some(e) => {
                write(&[1]);
                write(&e.detected_hour.to_bits().to_be_bytes());
                write(&e.first_violation_hour.to_bits().to_be_bytes());
            }
            None => write(&[0]),
        }
    }
    write(&(outcome.false_alarms as u64).to_be_bytes());
    hash
}

/// Poison-tolerant lock (same rationale as the worker pool: all guarded
/// state is consistent on every unwind path).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Handles into the server's metric family.
struct IngestMetrics {
    connections_current: Gauge,
    connections_total: Counter,
    refused_total: Counter,
    bytes_total: Counter,
    frames_total: Counter,
    steps_total: Counter,
    dropped_steps_total: Counter,
    reassembly_errors_total: Counter,
    parked_total: Counter,
    batch_latency: Histogram,
}

impl IngestMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        IngestMetrics {
            connections_current: registry.gauge(
                "ingest_connections_current",
                "plant connections currently open",
            ),
            connections_total: registry.counter(
                "ingest_connections_total",
                "plant connections accepted and registered",
            ),
            refused_total: registry.counter(
                "ingest_connections_refused_total",
                "connections refused: concurrency cap reached or socket setup failed",
            ),
            bytes_total: registry.counter("ingest_bytes_total", "bytes read off sockets"),
            frames_total: registry.counter("ingest_frames_total", "wire frames received"),
            steps_total: registry.counter("ingest_steps_total", "closed-loop steps reassembled"),
            dropped_steps_total: registry.counter(
                "ingest_dropped_steps_total",
                "steps dropped at the hard queue cap (0 under parking backpressure)",
            ),
            reassembly_errors_total: registry.counter(
                "ingest_reassembly_errors_total",
                "connections killed by framing, reassembly or scoring errors",
            ),
            parked_total: registry.counter(
                "ingest_parked_total",
                "backpressure events: read interest parked on a full queue",
            ),
            batch_latency: registry.histogram(
                "ingest_batch_queue_latency_seconds",
                "time a batch's oldest step waited in its connection queue",
                &[0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0],
            ),
        }
    }
}

/// Where the server's per-connection monitors come from.
pub enum ModelSource<'m> {
    /// Every connection scores against one shared monitor — the
    /// pre-store path; reports carry `model_generation` 0.
    Shared(&'m DualMspc),
    /// Each connection resolves its cohort's monitor through the
    /// sharded store at handshake: `PlantKey::cohort(plant % cohorts)`,
    /// with the store's LRU residency, calibrate-on-miss and hot reload
    /// on generation bump. The resolved generation is pinned for the
    /// connection's lifetime and recorded in its report.
    Store {
        /// The sharded per-plant model store.
        store: &'m ModelStore,
        /// Cohort count for the plant → key mapping (clamped to ≥ 1;
        /// must match the fleet's `--cohorts` for digests to line up).
        cohorts: usize,
    },
}

/// Pins every store-resolved monitor in memory for the lifetime of one
/// serving session, handing out plain `&DualMspc` borrows the scorers
/// can hold across intake iterations.
///
/// The store returns `Arc<DualMspc>` and may evict under LRU pressure;
/// a [`StreamScorer`] wants a plain borrow. Holding the `Arc` inside
/// each connection entry alongside its scorer would make the entry
/// self-referential, so instead the arena owns every `(key, generation)`
/// model resolved during the session — bounded by cohorts × generations,
/// not by connections — and the scorers borrow from the arena.
#[derive(Default)]
struct ModelPin {
    pinned: Mutex<Vec<(PlantKey, u64, Arc<DualMspc>)>>,
}

impl ModelPin {
    /// Resolves `key` through `store` (hot-reload aware) and returns a
    /// pinned borrow of the model plus the generation that produced it.
    fn resolve<'p>(
        &'p self,
        store: &ModelStore,
        key: &PlantKey,
    ) -> Result<(&'p DualMspc, u64), String> {
        let resolved = store
            .get(key)
            .map_err(|e| format!("model store resolution for '{}' failed: {e}", key.as_str()))?;
        let mut pinned = lock(&self.pinned);
        if !pinned
            .iter()
            .any(|(k, g, _)| k == key && *g == resolved.generation)
        {
            pinned.push((
                key.clone(),
                resolved.generation,
                Arc::clone(&resolved.model),
            ));
        }
        let (_, _, arc) = pinned
            .iter()
            .find(|(k, g, _)| k == key && *g == resolved.generation)
            .expect("just ensured");
        // SAFETY: the arena is append-only — entries are never removed
        // while `self` is borrowed — and an `Arc`'s pointee is heap-
        // allocated and address-stable, so the pointer stays valid for
        // the arena's borrow lifetime even though the Vec holding the
        // `Arc` handles may reallocate. The arena outlives every scorer
        // (it is dropped only after the intake thread joins).
        Ok((unsafe { &*Arc::as_ptr(arc) }, resolved.generation))
    }
}

/// Live incident sink: line-framed `key=value` events appended to the
/// configured file, flushed per line so the stream can be tailed while
/// the server runs.
struct IncidentSink {
    out: Mutex<File>,
    emitted: Counter,
}

impl IncidentSink {
    fn open(path: &str, registry: &MetricsRegistry) -> io::Result<Self> {
        Ok(IncidentSink {
            out: Mutex::new(File::create(path)?),
            emitted: registry.counter("ingest_incidents_total", "live incident events emitted"),
        })
    }

    fn emit(&self, line: &str) {
        let mut out = lock(&self.out);
        // A sink write failure must never take down scoring; the
        // counter still advances, so a dead sink stays visible in the
        // metrics as events without file growth.
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
        self.emitted.inc();
    }
}

/// State one connection shares between the event loop and the intake
/// thread.
#[derive(Default)]
struct ConnState {
    hello: Option<Hello>,
    steps: VecDeque<ReplayStep>,
    /// Enqueue instant of the oldest undrained step (queue-latency
    /// observation point).
    oldest: Option<Instant>,
    frames: u64,
    /// No more steps will arrive (EOF, error, or server shutdown).
    eof: bool,
    fault: Option<String>,
}

#[derive(Default)]
struct ConnShared {
    state: Mutex<ConnState>,
}

/// Event-loop-side connection bookkeeping.
struct Conn {
    stream: TcpStream,
    parser: StreamParser,
    /// Records of the step currently being reassembled (0..4).
    pending_step: Vec<CaptureRecord>,
    shared: Arc<ConnShared>,
    parked: bool,
    /// Whether the intake thread has been told about this token.
    announced: bool,
    /// Plant id this connection holds the live claim for (`None` until
    /// the handshake lands — or forever, for a duplicate claimant whose
    /// close must not release the rightful owner's claim).
    claimed_plant: Option<u32>,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            parser: StreamParser::new(),
            pending_step: Vec::with_capacity(TapPoint::STEP_ORDER.len()),
            shared: Arc::new(ConnShared::default()),
            parked: false,
            announced: false,
            claimed_plant: None,
        }
    }
}

/// Announcement channel from the event loop to the intake thread: each
/// token is announced once; the intake thread keeps polling announced
/// connections until it retires them.
#[derive(Default)]
struct IntakeQueue {
    ready: Mutex<VecDeque<(usize, Arc<ConnShared>)>>,
    wake: Condvar,
}

impl IntakeQueue {
    fn push(&self, token: usize, shared: &Arc<ConnShared>) {
        lock(&self.ready).push_back((token, Arc::clone(shared)));
        self.wake.notify_one();
    }

    fn drain_wait(&self, timeout: Duration) -> Vec<(usize, Arc<ConnShared>)> {
        let mut guard = lock(&self.ready);
        if guard.is_empty() {
            guard = self
                .wake
                .wait_timeout(guard, timeout)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        guard.drain(..).collect()
    }
}

/// The ingestion server. Bind once, then [`IngestServer::run`] the
/// serving session; metrics accumulate in [`IngestServer::metrics`].
pub struct IngestServer<'m> {
    source: ModelSource<'m>,
    config: IngestConfig,
    listener: TcpListener,
    registry: MetricsRegistry,
    pool: WorkerPool,
}

impl<'m> IngestServer<'m> {
    /// Binds the listen socket and spawns the scoring pool, scoring
    /// every connection against one shared `monitor`.
    ///
    /// # Errors
    ///
    /// Propagates socket binding failure.
    pub fn bind(monitor: &'m DualMspc, config: IngestConfig) -> io::Result<Self> {
        Self::bind_source(ModelSource::Shared(monitor), config)
    }

    /// Binds the listen socket and spawns the scoring pool, resolving
    /// each connection's monitor per cohort through `store` (see
    /// [`ModelSource::Store`]).
    ///
    /// # Errors
    ///
    /// Propagates socket binding failure.
    pub fn bind_with_store(
        store: &'m ModelStore,
        cohorts: usize,
        config: IngestConfig,
    ) -> io::Result<Self> {
        Self::bind_source(
            ModelSource::Store {
                store,
                cohorts: cohorts.max(1),
            },
            config,
        )
    }

    fn bind_source(source: ModelSource<'m>, config: IngestConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let pool = WorkerPool::new(config.threads);
        Ok(IngestServer {
            source,
            config,
            listener,
            registry: MetricsRegistry::new(),
            pool,
        })
    }

    /// The bound listen address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The server's configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// Serves until the stop flag is raised (or `expect` connections
    /// have been fully scored), then drains all in-flight batches and
    /// returns the session report.
    ///
    /// # Errors
    ///
    /// Propagates event-loop I/O failures (poller or listener); per-
    /// connection errors never fail the server, they fail the
    /// connection's report.
    pub fn run(&self, stop: &AtomicBool) -> io::Result<IngestReport> {
        let metrics = IngestMetrics::register(&self.registry);
        let incidents = match &self.config.incidents {
            Some(path) => Some(IncidentSink::open(path, &self.registry)?),
            None => None,
        };
        let pin = ModelPin::default();
        let intake = IntakeQueue::default();
        let reports: Mutex<Vec<ConnectionReport>> = Mutex::new(Vec::new());
        let drained = AtomicBool::new(false);
        let finished = AtomicUsize::new(0);

        let loop_result = std::thread::scope(|scope| {
            let intake_thread = scope.spawn(|| {
                intake_loop(
                    &self.source,
                    &pin,
                    incidents.as_ref(),
                    &self.pool,
                    self.config.batch_steps,
                    &intake,
                    &drained,
                    &reports,
                    &metrics,
                    &finished,
                )
            });
            let result = self.event_loop(stop, &metrics, &intake, &finished);
            drained.store(true, Ordering::SeqCst);
            intake.wake.notify_one();
            intake_thread.join().expect("intake thread panicked");
            result
        });
        loop_result?;

        let mut connections = reports.into_inner().unwrap_or_else(PoisonError::into_inner);
        connections.sort_by_key(|c| c.plant);
        Ok(IngestReport {
            connections,
            frames: metrics.frames_total.get(),
            steps: metrics.steps_total.get(),
            bytes: metrics.bytes_total.get(),
            drops: metrics.dropped_steps_total.get(),
            reassembly_errors: metrics.reassembly_errors_total.get(),
        })
    }

    fn event_loop(
        &self,
        stop: &AtomicBool,
        metrics: &IngestMetrics,
        intake: &IntakeQueue,
        finished: &AtomicUsize,
    ) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.register(self.listener.as_raw_fd(), 0, true)?;

        let mut state = EventState {
            poller,
            conns: HashMap::new(),
            claimed: HashSet::new(),
            next_token: 1,
            max_connections: self.config.max_connections.max(1),
            queue_depth: self.config.queue_depth.max(1),
            read_buf: vec![0u8; 65536].into_boxed_slice(),
            metrics,
            intake,
        };
        let mut events = Vec::new();
        loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            if let Some(expected) = self.config.expect {
                if finished.load(Ordering::SeqCst) >= expected {
                    break;
                }
            }
            state.poller.wait(&mut events, 5)?;
            for &event in &events {
                if event.token == 0 {
                    state.accept_ready(&self.listener)?;
                } else if event.readable || event.closed {
                    state.conn_readable(event.token);
                }
            }
            state.unpark_tick();
        }
        state.shutdown_remaining();
        Ok(())
    }
}

/// The event loop's mutable world, factored out so connection handling
/// reads as methods instead of parameter soup. Generic over the poller
/// so tests can drive the failure paths with a misbehaving stub.
struct EventState<'s, P: Polling> {
    poller: P,
    /// Live connections by token. Tokens are never reused — the intake
    /// thread keys its scorers by token, and a recycled token could
    /// collide with a connection it has not finalized yet.
    conns: HashMap<usize, Conn>,
    /// Plant ids claimed by live connections: one live stream per plant,
    /// so two peers cannot both claim plant 7 and produce ambiguous
    /// reports. Released when the claiming connection closes.
    claimed: HashSet<u32>,
    next_token: usize,
    max_connections: usize,
    queue_depth: usize,
    /// Reusable socket read buffer, shared across every connection's
    /// reads on this (single) event-loop thread.
    read_buf: Box<[u8]>,
    metrics: &'s IngestMetrics,
    intake: &'s IntakeQueue,
}

impl<P: Polling> EventState<'_, P> {
    fn accept_ready(&mut self, listener: &TcpListener) -> io::Result<()> {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // `connections_total` counts only connections that
                    // make it into the loop; refused attempts count in
                    // `refused_total` alone, so
                    // attempts = connections_total + refused_total.
                    if self.conns.len() >= self.max_connections {
                        self.metrics.refused_total.inc();
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        self.metrics.refused_total.inc();
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, true)
                        .is_err()
                    {
                        self.metrics.refused_total.inc();
                        continue;
                    }
                    self.conns.insert(token, Conn::new(stream));
                    self.metrics.connections_total.inc();
                    self.metrics.connections_current.inc();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failures (e.g. the peer aborted
                // between queueing and accept) are not server failures.
                Err(_) => break,
            }
        }
        Ok(())
    }

    fn conn_readable(&mut self, token: usize) {
        let outcome = {
            // Split the borrows: the connection lives in the slab, the
            // poller/metrics/intake are sibling fields.
            let EventState {
                poller,
                conns,
                claimed,
                queue_depth,
                read_buf,
                metrics,
                intake,
                ..
            } = self;
            let Some(conn) = conns.get_mut(&token) else {
                return; // already closed this tick
            };
            read_conn(
                conn,
                token,
                *queue_depth,
                read_buf,
                poller,
                claimed,
                metrics,
                intake,
            )
        };
        match outcome {
            ReadOutcome::Continue => {}
            ReadOutcome::Eof => self.close_conn(token, None),
            ReadOutcome::Fault(fault) => {
                self.metrics.reassembly_errors_total.inc();
                self.close_conn(token, Some(fault));
            }
        }
    }

    /// Retires a connection: deregisters the socket, marks the shared
    /// state end-of-stream (diagnosing a tear if the wire died mid-
    /// message or mid-step) and announces the token so the intake thread
    /// finalizes it.
    fn close_conn(&mut self, token: usize, fault: Option<String>) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.metrics.connections_current.dec();
        // Release the plant claim so a reconnecting plant can resume.
        // (A duplicate-claim connection never set `claimed_plant`, so
        // closing it leaves the rightful owner's claim in place.)
        if let Some(plant) = conn.claimed_plant {
            self.claimed.remove(&plant);
        }
        let mut fault = fault;
        if fault.is_none() && (conn.parser.pending_bytes() > 0 || !conn.pending_step.is_empty()) {
            self.metrics.reassembly_errors_total.inc();
            fault = Some(format!(
                "connection closed mid-stream ({} bytes and {} frames of an \
                 unfinished step pending)",
                conn.parser.pending_bytes(),
                conn.pending_step.len()
            ));
        }
        {
            let mut state = lock(&conn.shared.state);
            state.eof = true;
            if state.fault.is_none() {
                state.fault = fault;
            }
        }
        // Announce each token at most once, ever: a second announcement
        // could arrive after the intake thread finalized the entry and
        // would resurrect it as a duplicate report.
        if conn.announced {
            self.intake.wake.notify_one();
        } else {
            self.intake.push(token, &conn.shared);
        }
    }

    /// Un-parks connections whose queues have drained below half depth —
    /// the periodic other half of the backpressure protocol (the intake
    /// thread never touches the poller).
    fn unpark_tick(&mut self) {
        let mut failed: Vec<(usize, String)> = Vec::new();
        for (&token, conn) in &mut self.conns {
            if !conn.parked {
                continue;
            }
            let depth = lock(&conn.shared.state).steps.len();
            if depth * 2 > self.queue_depth {
                continue;
            }
            match self
                .poller
                .set_readable(conn.stream.as_raw_fd(), token, true)
            {
                Ok(()) => conn.parked = false,
                // A connection whose read interest cannot be re-armed
                // would otherwise stay parked forever — its queue is
                // already drained, so nothing else will ever retry.
                // Fail it loudly instead of wedging it silently.
                Err(e) => failed.push((token, format!("unparking read interest failed: {e}"))),
            }
        }
        for (token, fault) in failed {
            self.close_conn(token, Some(fault));
        }
    }

    /// Shutdown path: every still-open connection is marked end-of-
    /// stream so the intake thread drains its queue and reports it as
    /// interrupted rather than silently vanishing.
    fn shutdown_remaining(&mut self) {
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(
                token,
                Some("server stopped while the stream was live".into()),
            );
        }
    }
}

enum ReadOutcome {
    Continue,
    Eof,
    Fault(String),
}

/// Pulls everything the socket has, feeding the parser and enqueuing
/// reassembled steps, until the read would block, the connection parks,
/// or the stream ends or faults.
#[allow(clippy::too_many_arguments)]
fn read_conn<P: Polling>(
    conn: &mut Conn,
    token: usize,
    queue_depth: usize,
    buf: &mut [u8],
    poller: &P,
    claimed: &mut HashSet<u32>,
    metrics: &IngestMetrics,
    intake: &IntakeQueue,
) -> ReadOutcome {
    while !conn.parked {
        match conn.stream.read(buf) {
            Ok(0) => return ReadOutcome::Eof,
            Ok(n) => {
                metrics.bytes_total.add(n as u64);
                conn.parser.feed(&buf[..n]);
                if let Err(fault) =
                    drain_parser(conn, token, queue_depth, poller, claimed, metrics, intake)
                {
                    return ReadOutcome::Fault(fault);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return ReadOutcome::Fault(format!("socket read failed: {e}")),
        }
    }
    ReadOutcome::Continue
}

/// Drains every complete parser event, reassembling steps and enqueuing
/// them for the intake thread. Returns the fault message on the first
/// protocol/reassembly error.
#[allow(clippy::too_many_arguments)]
fn drain_parser<P: Polling>(
    conn: &mut Conn,
    token: usize,
    queue_depth: usize,
    poller: &P,
    claimed: &mut HashSet<u32>,
    metrics: &IngestMetrics,
    intake: &IntakeQueue,
) -> Result<(), String> {
    loop {
        match conn.parser.next_event() {
            Ok(None) => return Ok(()),
            Ok(Some(StreamEvent::Hello(hello))) => {
                let plant = hello.plant;
                // Store the hello before the claim check so a duplicate
                // claimant's report still names the plant it attempted.
                lock(&conn.shared.state).hello = Some(hello);
                if claimed.insert(plant) {
                    conn.claimed_plant = Some(plant);
                } else {
                    return Err(format!(
                        "plant id {plant} already claimed by a live connection"
                    ));
                }
            }
            Ok(Some(StreamEvent::Record(record))) => {
                metrics.frames_total.inc();
                conn.pending_step.push(record);
                if conn.pending_step.len() < TapPoint::STEP_ORDER.len() {
                    continue;
                }
                // Reuse the replay grammar for step reassembly: tap
                // order, frame-kind direction, hour/seq/width agreement
                // — the same strictness an offline tape replay gets.
                let step = match ReplayLink::new(&conn.pending_step).next() {
                    Some(Ok(step)) => step,
                    Some(Err(e)) => return Err(format!("step reassembly failed: {e}")),
                    None => unreachable!("four records always yield one result"),
                };
                conn.pending_step.clear();
                metrics.steps_total.inc();
                let depth = {
                    let mut state = lock(&conn.shared.state);
                    state.frames += 4;
                    if state.steps.len() >= queue_depth.saturating_mul(8).max(8) {
                        // Hard-cap backstop; unreachable under parking.
                        metrics.dropped_steps_total.inc();
                        state.steps.len()
                    } else {
                        if state.oldest.is_none() {
                            state.oldest = Some(Instant::now());
                        }
                        state.steps.push_back(step);
                        state.steps.len()
                    }
                };
                if !conn.announced {
                    conn.announced = true;
                    intake.push(token, &conn.shared);
                } else {
                    intake.wake.notify_one();
                }
                if depth >= queue_depth && !conn.parked {
                    // Backpressure: stop reading this connection; its
                    // kernel buffer and then the peer's send window
                    // absorb the flow until the queue drains.
                    metrics.parked_total.inc();
                    if poller
                        .set_readable(conn.stream.as_raw_fd(), token, false)
                        .is_ok()
                    {
                        conn.parked = true;
                    }
                }
            }
            Err(e) => return Err(format!("stream error: {e}")),
        }
    }
}

/// One connection's scoring job slot: the scorer plus its step batch,
/// taken (`Option`) by whichever pool worker claims the slot.
type BatchJob<'m> = Mutex<Option<(StreamScorer<'m>, Vec<ReplayStep>)>>;

/// Resolves the monitor one connection scores against: the shared
/// monitor (generation 0), or the plant's cohort model pinned out of
/// the store. Resolution happens exactly once per connection — at the
/// first batch after its handshake — so an in-flight stream keeps its
/// generation across a mid-session hot reload while the next connection
/// picks the bumped one up.
fn resolve_monitor<'p>(
    source: &'p ModelSource<'p>,
    pin: &'p ModelPin,
    plant: u32,
) -> Result<(&'p DualMspc, u64), String> {
    match source {
        ModelSource::Shared(monitor) => Ok((monitor, 0)),
        ModelSource::Store { store, cohorts } => {
            let key = PlantKey::cohort(plant as usize % (*cohorts).max(1));
            pin.resolve(store, &key)
        }
    }
}

/// Emits one `event=detection` line per detection that surfaced on a
/// level since the last emission, advancing the per-level cursor.
fn emit_new_detections(
    sink: &IncidentSink,
    plant: u32,
    generation: u64,
    level: &str,
    events: &[AnomalousEvent],
    seen: &mut usize,
) {
    for event in &events[*seen..] {
        sink.emit(&format!(
            "event=detection plant={plant} level={level} detected_hour={:.6} \
             first_violation_hour={:.6} generation={generation}",
            event.detected_hour, event.first_violation_hour
        ));
    }
    *seen = events.len();
}

#[allow(clippy::too_many_arguments)]
fn intake_loop<'p>(
    source: &'p ModelSource<'p>,
    pin: &'p ModelPin,
    incidents: Option<&IncidentSink>,
    pool: &WorkerPool,
    batch_steps: usize,
    intake: &IntakeQueue,
    drained: &AtomicBool,
    reports: &Mutex<Vec<ConnectionReport>>,
    metrics: &IngestMetrics,
    finished: &AtomicUsize,
) {
    struct Entry<'p> {
        shared: Arc<ConnShared>,
        scorer: Option<StreamScorer<'p>>,
        /// The monitor the scorer borrows — needed again at diagnosis.
        monitor: Option<&'p DualMspc>,
        /// Store generation that produced `monitor` (0 = shared path).
        generation: u64,
        /// Plant id from the handshake (`u32::MAX` until it lands).
        plant: u32,
        /// Per-level incident cursors: detections already emitted.
        seen_events: (usize, usize),
        steps: u64,
        fault: Option<String>,
    }

    let batch_steps = batch_steps.max(1);
    let mut active: HashMap<usize, Entry<'p>> = HashMap::new();
    loop {
        for (token, shared) in intake.drain_wait(Duration::from_millis(5)) {
            active.entry(token).or_insert(Entry {
                shared,
                scorer: None,
                monitor: None,
                generation: 0,
                plant: u32::MAX,
                seen_events: (0, 0),
                steps: 0,
                fault: None,
            });
        }

        // Assemble one bounded batch per connection with queued steps.
        let mut batch_tokens: Vec<usize> = Vec::new();
        let mut jobs: Vec<BatchJob<'p>> = Vec::new();
        for (&token, entry) in &mut active {
            let batch = {
                let mut state = lock(&entry.shared.state);
                if state.steps.is_empty() {
                    None
                } else {
                    let take = state.steps.len().min(batch_steps);
                    let batch: Vec<ReplayStep> = state.steps.drain(..take).collect();
                    if let Some(oldest) = state.oldest.take() {
                        metrics
                            .batch_latency
                            .observe(oldest.elapsed().as_secs_f64());
                    }
                    if !state.steps.is_empty() {
                        state.oldest = Some(Instant::now());
                    }
                    Some(batch)
                }
            };
            let Some(batch) = batch else { continue };
            if entry.fault.is_some() {
                continue; // scorer already condemned; drain and discard
            }
            if entry.scorer.is_none() {
                let hello = lock(&entry.shared.state)
                    .hello
                    .as_ref()
                    .map(|h| (h.plant, h.scenario.onset_hour));
                match hello {
                    Some((plant, onset)) => {
                        match resolve_monitor(source, pin, plant) {
                            Ok((monitor, generation)) => {
                                entry.plant = plant;
                                entry.monitor = Some(monitor);
                                entry.generation = generation;
                                entry.scorer = Some(monitor.stream_scorer(onset));
                            }
                            Err(fault) => {
                                // Store resolution failed (I/O, torn
                                // file, failed calibrate-on-miss): the
                                // connection fails, the server lives.
                                entry.plant = plant;
                                entry.fault = Some(fault);
                                continue;
                            }
                        }
                    }
                    None => {
                        // Unreachable (the parser emits Hello first),
                        // kept as a fault rather than a panic.
                        entry.fault = Some("steps arrived before the handshake".into());
                        continue;
                    }
                }
            }
            let scorer = entry.scorer.take().expect("scorer just ensured");
            batch_tokens.push(token);
            jobs.push(Mutex::new(Some((scorer, batch))));
        }

        // Fan the batches over the pool: one job per connection, scorers
        // moved in and handed back through the sink.
        if !jobs.is_empty() {
            pool.run(
                jobs.len(),
                |j| {
                    let (mut scorer, batch) =
                        lock(&jobs[j]).take().expect("each job taken exactly once");
                    let mut fault = None;
                    for step in &batch {
                        if let Err(e) = scorer.push_step(step) {
                            fault = Some(format!("scoring rejected a step: {e}"));
                            break;
                        }
                    }
                    (scorer, batch.len() as u64, fault)
                },
                |j, (scorer, scored, fault)| {
                    let entry = active
                        .get_mut(&batch_tokens[j])
                        .expect("batch token is active");
                    entry.steps += scored;
                    match fault {
                        None => {
                            if let Some(sink) = incidents {
                                let (controller, process) = scorer.events();
                                emit_new_detections(
                                    sink,
                                    entry.plant,
                                    entry.generation,
                                    "controller",
                                    controller,
                                    &mut entry.seen_events.0,
                                );
                                emit_new_detections(
                                    sink,
                                    entry.plant,
                                    entry.generation,
                                    "process",
                                    process,
                                    &mut entry.seen_events.1,
                                );
                            }
                            entry.scorer = Some(scorer);
                        }
                        Some(fault) => {
                            metrics.reassembly_errors_total.inc();
                            entry.fault = Some(fault);
                        }
                    }
                },
            );
        }

        // Finalize every connection that hit end-of-stream with an empty
        // queue: fold its scorer into an outcome and report.
        let finished_tokens: Vec<usize> = active
            .iter()
            .filter(|(_, entry)| {
                let state = lock(&entry.shared.state);
                state.eof && state.steps.is_empty()
            })
            .map(|(&token, _)| token)
            .collect();
        for token in finished_tokens {
            let mut entry = active.remove(&token).expect("token just listed");
            let (hello, fault, frames) = {
                let state = lock(&entry.shared.state);
                (state.hello.clone(), state.fault.clone(), state.frames)
            };
            let fault = entry.fault.take().or(fault);
            let report = match (hello, entry.scorer.take(), fault) {
                (Some(hello), Some(scorer), None) => {
                    let monitor = entry.monitor.expect("a live scorer has its monitor");
                    let onset = hello.scenario.onset_hour;
                    let outcome = scorer.finish(hello.scenario.clone(), None);
                    let verdict = diagnose(monitor, &outcome, VerdictThresholds::default())
                        .map(|d| d.verdict);
                    ConnectionReport {
                        plant: hello.plant,
                        kind: hello.scenario.kind,
                        seed: hello.scenario.seed,
                        completed: true,
                        steps: entry.steps,
                        frames,
                        false_alarms: outcome.false_alarms as u32,
                        detection_latency_hours: outcome.detection.run_length(onset),
                        verdict,
                        digest: detection_digest(&outcome),
                        model_generation: entry.generation,
                        fault: None,
                    }
                }
                (hello, _, fault) => {
                    let (plant, kind, seed) = hello
                        .map(|h| (h.plant, h.scenario.kind, h.scenario.seed))
                        .unwrap_or((u32::MAX, ScenarioKind::Normal, 0));
                    ConnectionReport {
                        plant,
                        kind,
                        seed,
                        completed: false,
                        steps: entry.steps,
                        frames,
                        false_alarms: 0,
                        detection_latency_hours: None,
                        verdict: None,
                        digest: 0,
                        model_generation: entry.generation,
                        fault: fault
                            .or_else(|| Some("connection closed before any complete step".into())),
                    }
                }
            };
            if let Some(sink) = incidents {
                match &report.fault {
                    None => sink.emit(&format!(
                        "event=verdict plant={} kind={} verdict={} latency_hours={} \
                         false_alarms={} digest={:016x} generation={}",
                        report.plant,
                        report.kind.id(),
                        report
                            .verdict
                            .map_or_else(|| "-".to_string(), |v| v.to_string()),
                        report
                            .detection_latency_hours
                            .map_or_else(|| "-".to_string(), |h| format!("{h:.6}")),
                        report.false_alarms,
                        report.digest,
                        report.model_generation,
                    )),
                    Some(fault) => sink.emit(&format!(
                        "event=fault plant={} fault=\"{fault}\"",
                        report.plant
                    )),
                }
            }
            lock(reports).push(report);
            finished.fetch_add(1, Ordering::SeqCst);
        }

        if drained.load(Ordering::SeqCst) && active.is_empty() && lock(&intake.ready).is_empty() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poller::PollEvent;
    use std::os::fd::RawFd;

    /// A poller whose re-arm always fails — the trigger for the unpark
    /// wedge this module's regression test guards against.
    struct FailingPoller;

    impl Polling for FailingPoller {
        fn register(&self, _: RawFd, _: usize, _: bool) -> io::Result<()> {
            Ok(())
        }

        fn set_readable(&self, _: RawFd, _: usize, _: bool) -> io::Result<()> {
            Err(io::Error::other("stub re-arm failure"))
        }

        fn deregister(&self, _: RawFd) -> io::Result<()> {
            Ok(())
        }

        fn wait(&self, out: &mut Vec<PollEvent>, _: i32) -> io::Result<usize> {
            out.clear();
            Ok(0)
        }
    }

    /// Before the fix, a failed `set_readable` in `unpark_tick` left the
    /// connection parked with a drained queue: no readiness event would
    /// ever fire for it again and no retry path existed, so it hung
    /// forever. The fix closes it with a fault instead.
    #[test]
    fn failed_unpark_fails_the_connection_instead_of_wedging_it() {
        let registry = MetricsRegistry::new();
        let metrics = IngestMetrics::register(&registry);
        let intake = IntakeQueue::default();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (stream, _) = listener.accept().unwrap();

        let mut state = EventState {
            poller: FailingPoller,
            conns: HashMap::new(),
            claimed: HashSet::new(),
            next_token: 2,
            max_connections: 4,
            queue_depth: 4,
            read_buf: vec![0u8; 64].into_boxed_slice(),
            metrics: &metrics,
            intake: &intake,
        };
        let mut conn = Conn::new(stream);
        conn.parked = true;
        let shared = Arc::clone(&conn.shared);
        state.conns.insert(1, conn);

        // Queue empty (below half depth), so the tick must unpark; the
        // poller refuses, and the connection must be retired with a
        // fault rather than left in the map parked forever.
        state.unpark_tick();

        assert!(state.conns.is_empty(), "connection left wedged in the map");
        let conn_state = lock(&shared.state);
        assert!(conn_state.eof, "closed connection not marked end-of-stream");
        assert!(
            conn_state
                .fault
                .as_deref()
                .is_some_and(|f| f.contains("unparking read interest failed")),
            "fault missing or wrong: {:?}",
            conn_state.fault
        );
        // The intake thread must have been told so it reports the
        // connection instead of waiting on it.
        assert_eq!(lock(&intake.ready).len(), 1);
        drop(client);
    }

    /// A healthy poller still unparks a drained connection — the fix
    /// must not fail connections whose re-arm succeeds.
    #[test]
    fn successful_unpark_keeps_the_connection() {
        struct OkPoller;
        impl Polling for OkPoller {
            fn register(&self, _: RawFd, _: usize, _: bool) -> io::Result<()> {
                Ok(())
            }
            fn set_readable(&self, _: RawFd, _: usize, _: bool) -> io::Result<()> {
                Ok(())
            }
            fn deregister(&self, _: RawFd) -> io::Result<()> {
                Ok(())
            }
            fn wait(&self, out: &mut Vec<PollEvent>, _: i32) -> io::Result<usize> {
                out.clear();
                Ok(0)
            }
        }

        let registry = MetricsRegistry::new();
        let metrics = IngestMetrics::register(&registry);
        let intake = IntakeQueue::default();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (stream, _) = listener.accept().unwrap();

        let mut state = EventState {
            poller: OkPoller,
            conns: HashMap::new(),
            claimed: HashSet::new(),
            next_token: 2,
            max_connections: 4,
            queue_depth: 4,
            read_buf: vec![0u8; 64].into_boxed_slice(),
            metrics: &metrics,
            intake: &intake,
        };
        let mut conn = Conn::new(stream);
        conn.parked = true;
        state.conns.insert(1, conn);

        state.unpark_tick();

        let conn = state.conns.get(&1).expect("connection must stay live");
        assert!(!conn.parked, "drained connection still parked");
        drop(client);
    }
}
