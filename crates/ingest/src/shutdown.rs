//! Cooperative SIGINT/SIGTERM handling without a bindings crate.
//!
//! Long-lived entry points (`temspc ingest serve`, `temspc fleet`) must
//! drain in-flight work and flush a checkpoint instead of dying
//! mid-write. The handler is the async-signal-safe minimum: one store to
//! a process-wide [`AtomicBool`] that the event loop and fleet engine
//! poll cooperatively. Registration goes through `signal(2)` declared
//! directly against the C library the standard library already links.

use std::sync::atomic::AtomicBool;

static STOP: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // The only async-signal-safe thing worth doing: flag and return.
        super::STOP.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (idempotent) and returns the
/// stop flag they set. Callers poll the flag between units of work and
/// shut down gracefully when it reads `true`.
pub fn install_handlers() -> &'static AtomicBool {
    imp::install();
    &STOP
}

/// The process-wide stop flag, without (re-)installing handlers — for
/// tests and for code that wants to request shutdown programmatically.
pub fn stop_flag() -> &'static AtomicBool {
    &STOP
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn flag_is_shared_and_settable() {
        let flag = install_handlers();
        assert!(std::ptr::eq(flag, stop_flag()));
        // Don't leave the process-wide flag set for other tests.
        flag.store(true, Ordering::SeqCst);
        assert!(stop_flag().load(Ordering::SeqCst));
        flag.store(false, Ordering::SeqCst);
    }
}
