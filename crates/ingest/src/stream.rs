//! The ingestion wire protocol and its incremental parser.
//!
//! A plant's traffic arrives over one TCP connection as a fixed
//! handshake followed by length-prefixed tap messages:
//!
//! ```text
//! Hello (40 bytes, big endian):
//!   [0..8]   magic  b"TEINGEST"
//!   [8..10]  protocol version, u16 (currently 1)
//!   [10]     scenario kind code (0 normal, 1 idv6, 2 integrity_xmv3,
//!            3 integrity_xmeas1, 4 dos_xmv3)
//!   [11]     reserved (0)
//!   [12..16] plant id, u32
//!   [16..24] scenario seed, u64
//!   [24..32] anomaly onset hour, f64
//!   [32..40] scenario duration hours, f64
//!
//! Message (repeated):
//!   [0..4]   payload length, u32 (tap byte + frame)
//!   [4]      tap point code (0..=3, step order)
//!   [5..]    one fieldbus frame, exactly as it crossed the wire
//! ```
//!
//! TCP is a byte stream: a message may arrive torn across any number of
//! segments, and one segment may carry many messages. [`StreamParser`]
//! reassembles without assuming any alignment, validates every frame
//! with the strict [`Frame::decode`] grammar, and fails loudly — a
//! malformed handshake, oversized length prefix, unknown tap code or
//! corrupt frame poisons the parser rather than resynchronizing onto
//! attacker-chosen bytes.

use temspc::{Scenario, ScenarioKind};
use temspc_fieldbus::frame::MAX_VALUES;
use temspc_fieldbus::{CaptureRecord, Frame, FrameError, TapPoint};

/// Handshake length, bytes.
pub const HELLO_LEN: usize = 40;

/// Handshake magic.
pub const HELLO_MAGIC: &[u8; 8] = b"TEINGEST";

/// Protocol version this build speaks.
pub const PROTOCOL_VERSION: u16 = 1;

/// Fieldbus frame header length (kept in sync with `temspc-fieldbus`,
/// which validates it on every decode).
const FRAME_HEADER_LEN: usize = 18;

/// Largest payload a message length prefix may advertise: one tap byte
/// plus a maximal fieldbus frame. Anything larger is rejected before
/// buffering, so a hostile length prefix cannot balloon server memory.
pub const MAX_MESSAGE_LEN: usize = 1 + FRAME_HEADER_LEN + 8 * MAX_VALUES;

/// The per-connection handshake: which plant this is and the scenario
/// metadata scoring needs (onset hour drives the false-alarm split).
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    /// Plant id within the fleet.
    pub plant: u32,
    /// Scenario the traffic claims to carry.
    pub scenario: Scenario,
}

/// Wire code of a scenario kind.
pub fn kind_code(kind: ScenarioKind) -> u8 {
    match kind {
        ScenarioKind::Normal => 0,
        ScenarioKind::Idv6 => 1,
        ScenarioKind::IntegrityXmv3 => 2,
        ScenarioKind::IntegrityXmeas1 => 3,
        ScenarioKind::DosXmv3 => 4,
    }
}

/// Scenario kind for a wire code.
pub fn kind_from_code(code: u8) -> Option<ScenarioKind> {
    Some(match code {
        0 => ScenarioKind::Normal,
        1 => ScenarioKind::Idv6,
        2 => ScenarioKind::IntegrityXmv3,
        3 => ScenarioKind::IntegrityXmeas1,
        4 => ScenarioKind::DosXmv3,
        _ => return None,
    })
}

/// Wire code of a tap point (its index in step order).
pub fn tap_code(point: TapPoint) -> u8 {
    TapPoint::STEP_ORDER
        .iter()
        .position(|p| *p == point)
        .expect("every tap point appears in step order") as u8
}

/// Tap point for a wire code.
pub fn tap_from_code(code: u8) -> Option<TapPoint> {
    TapPoint::STEP_ORDER.get(code as usize).copied()
}

/// Encodes the handshake for `plant` streaming `scenario`.
pub fn encode_hello(plant: u32, scenario: &Scenario) -> [u8; HELLO_LEN] {
    let mut out = [0u8; HELLO_LEN];
    out[0..8].copy_from_slice(HELLO_MAGIC);
    out[8..10].copy_from_slice(&PROTOCOL_VERSION.to_be_bytes());
    out[10] = kind_code(scenario.kind);
    out[11] = 0;
    out[12..16].copy_from_slice(&plant.to_be_bytes());
    out[16..24].copy_from_slice(&scenario.seed.to_be_bytes());
    out[24..32].copy_from_slice(&scenario.onset_hour.to_be_bytes());
    out[32..40].copy_from_slice(&scenario.duration_hours.to_be_bytes());
    out
}

/// Appends one tap message carrying `record`'s wire bytes to `out`.
pub fn encode_record(record: &CaptureRecord, out: &mut Vec<u8>) {
    let len = 1 + record.wire.len();
    out.extend_from_slice(&(len as u32).to_be_bytes());
    out.push(tap_code(record.point));
    out.extend_from_slice(&record.wire);
}

/// Parse failures. All of them are terminal for the connection: the
/// stream has no resynchronization points, so the only safe reaction to
/// corruption is to stop believing the socket.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// The handshake does not start with [`HELLO_MAGIC`].
    BadHelloMagic,
    /// The peer speaks a different protocol version.
    BadVersion(u16),
    /// Unknown scenario kind code in the handshake.
    BadScenarioKind(u8),
    /// The reserved handshake byte was not zero.
    BadReserved(u8),
    /// A message length prefix exceeds [`MAX_MESSAGE_LEN`].
    Oversize {
        /// The advertised payload length.
        len: usize,
    },
    /// A message length prefix advertises no room for the tap byte.
    Undersize,
    /// Unknown tap point code.
    BadTap(u8),
    /// The framed bytes failed the strict fieldbus decode.
    Frame(FrameError),
    /// The handshake onset hour is NaN or negative. (`+∞` is valid — it
    /// is the "no anomaly" sentinel normal-operation streams declare.)
    BadOnset(f64),
    /// The handshake duration is not a finite non-negative hour count.
    BadDuration(f64),
    /// The handshake claims a reserved plant id (`u32::MAX` marks "no
    /// handshake arrived" in connection reports and cannot be claimed).
    BadPlant(u32),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::BadHelloMagic => write!(f, "handshake magic mismatch"),
            StreamError::BadVersion(v) => {
                write!(f, "protocol version {v}, expected {PROTOCOL_VERSION}")
            }
            StreamError::BadScenarioKind(c) => write!(f, "unknown scenario kind code {c}"),
            StreamError::BadReserved(b) => write!(f, "reserved handshake byte is {b}, not 0"),
            StreamError::Oversize { len } => {
                write!(
                    f,
                    "message advertises {len} bytes, cap is {MAX_MESSAGE_LEN}"
                )
            }
            StreamError::Undersize => write!(f, "message advertises no tap byte"),
            StreamError::BadTap(c) => write!(f, "unknown tap point code {c}"),
            StreamError::Frame(e) => write!(f, "frame decode failed: {e}"),
            StreamError::BadOnset(v) => {
                write!(f, "onset hour {v} is not a non-negative number")
            }
            StreamError::BadDuration(v) => {
                write!(f, "duration {v} h is not a finite non-negative number")
            }
            StreamError::BadPlant(p) => write!(f, "plant id {p} is reserved"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for StreamError {
    fn from(e: FrameError) -> Self {
        StreamError::Frame(e)
    }
}

/// One parsed protocol element.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// The connection handshake (always the first event).
    Hello(Hello),
    /// One validated tap record; its hour is the decoded frame's
    /// timestamp and its wire bytes are exactly the framed payload, so a
    /// tape reassembled from these records is byte-identical to the tape
    /// the sender streamed.
    Record(CaptureRecord),
}

/// Incremental parser over arbitrarily segmented connection bytes.
///
/// Feed raw reads with [`StreamParser::feed`], then pull events with
/// [`StreamParser::next_event`] until it yields `Ok(None)` (need more
/// bytes). The first error poisons the parser: further calls keep
/// returning the same error, mirroring the replay grammar's fused
/// iterator — a torn stream has no trustworthy continuation.
#[derive(Debug, Default)]
pub struct StreamParser {
    buf: Vec<u8>,
    pos: usize,
    saw_hello: bool,
    poisoned: Option<StreamError>,
}

impl StreamParser {
    /// A parser at stream start.
    pub fn new() -> Self {
        StreamParser::default()
    }

    /// Appends freshly read connection bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet consumed by a complete event — a
    /// non-zero value at connection EOF means the stream died
    /// mid-message.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn pending(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    fn consume(&mut self, n: usize) {
        self.pos += n;
        // Compact once the consumed prefix dominates, so long-lived
        // connections don't grow the buffer without bound.
        if self.pos >= 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    fn parse_hello(data: &[u8; HELLO_LEN]) -> Result<Hello, StreamError> {
        if &data[0..8] != HELLO_MAGIC {
            return Err(StreamError::BadHelloMagic);
        }
        let version = u16::from_be_bytes([data[8], data[9]]);
        if version != PROTOCOL_VERSION {
            return Err(StreamError::BadVersion(version));
        }
        let kind = kind_from_code(data[10]).ok_or(StreamError::BadScenarioKind(data[10]))?;
        if data[11] != 0 {
            return Err(StreamError::BadReserved(data[11]));
        }
        let plant = u32::from_be_bytes(data[12..16].try_into().expect("4 bytes"));
        if plant == u32::MAX {
            return Err(StreamError::BadPlant(plant));
        }
        let seed = u64::from_be_bytes(data[16..24].try_into().expect("8 bytes"));
        let onset_hour = f64::from_be_bytes(data[24..32].try_into().expect("8 bytes"));
        // The onset drives the false-alarm split and latency arithmetic;
        // a NaN or negative onset would poison both. `+∞` stays valid —
        // it is how a normal-operation stream says "no anomaly ever".
        if onset_hour.is_nan() || onset_hour < 0.0 {
            return Err(StreamError::BadOnset(onset_hour));
        }
        let duration_hours = f64::from_be_bytes(data[32..40].try_into().expect("8 bytes"));
        if !duration_hours.is_finite() || duration_hours < 0.0 {
            return Err(StreamError::BadDuration(duration_hours));
        }
        Ok(Hello {
            plant,
            scenario: Scenario::short(kind, duration_hours, onset_hour, seed),
        })
    }

    fn advance(&mut self) -> Result<Option<StreamEvent>, StreamError> {
        if !self.saw_hello {
            if self.pending().len() < HELLO_LEN {
                return Ok(None);
            }
            let header: [u8; HELLO_LEN] = self.pending()[..HELLO_LEN]
                .try_into()
                .expect("length checked");
            let hello = Self::parse_hello(&header)?;
            self.consume(HELLO_LEN);
            self.saw_hello = true;
            return Ok(Some(StreamEvent::Hello(hello)));
        }
        let pending = self.pending();
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(pending[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_MESSAGE_LEN {
            return Err(StreamError::Oversize { len });
        }
        if len < 1 {
            return Err(StreamError::Undersize);
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let tap = pending[4];
        let point = tap_from_code(tap).ok_or(StreamError::BadTap(tap))?;
        let wire = &pending[5..4 + len];
        // Strict validation up front: a frame that would fail replay is
        // rejected at the wire boundary, not buried in a queue.
        let frame = Frame::decode(wire)?;
        let record = CaptureRecord {
            point,
            hour: frame.hour,
            wire: wire.to_vec(),
        };
        self.consume(4 + len);
        Ok(Some(StreamEvent::Record(record)))
    }

    /// Pulls the next complete event, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns the first [`StreamError`] encountered, and the same error
    /// again on every subsequent call (the parser is poisoned).
    pub fn next_event(&mut self) -> Result<Option<StreamEvent>, StreamError> {
        if let Some(error) = &self.poisoned {
            return Err(error.clone());
        }
        match self.advance() {
            Ok(event) => Ok(event),
            Err(error) => {
                self.poisoned = Some(error.clone());
                Err(error)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scenario() -> Scenario {
        Scenario::short(ScenarioKind::IntegrityXmv3, 2.0, 0.5, 42)
    }

    fn sample_record(point: TapPoint, seq: u32) -> CaptureRecord {
        let frame = Frame::new(point.expected_kind(), seq, 0.25, vec![1.0, 2.0, 3.0]);
        CaptureRecord {
            point,
            hour: 0.25,
            wire: frame.encode().unwrap().to_vec(),
        }
    }

    fn sample_stream() -> (Vec<u8>, Vec<CaptureRecord>) {
        let mut bytes = encode_hello(3, &sample_scenario()).to_vec();
        let records: Vec<CaptureRecord> = TapPoint::STEP_ORDER
            .iter()
            .map(|p| sample_record(*p, 9))
            .collect();
        for record in &records {
            encode_record(record, &mut bytes);
        }
        (bytes, records)
    }

    #[test]
    fn whole_stream_parses_in_one_feed() {
        let (bytes, records) = sample_stream();
        let mut parser = StreamParser::new();
        parser.feed(&bytes);
        match parser.next_event().unwrap().unwrap() {
            StreamEvent::Hello(hello) => {
                assert_eq!(hello.plant, 3);
                assert_eq!(hello.scenario.kind, ScenarioKind::IntegrityXmv3);
                assert_eq!(hello.scenario.seed, 42);
                assert_eq!(hello.scenario.onset_hour, 0.5);
                assert_eq!(hello.scenario.duration_hours, 2.0);
            }
            other => panic!("expected hello, got {other:?}"),
        }
        for expected in &records {
            match parser.next_event().unwrap().unwrap() {
                StreamEvent::Record(record) => assert_eq!(&record, expected),
                other => panic!("expected record, got {other:?}"),
            }
        }
        assert_eq!(parser.next_event().unwrap(), None);
        assert_eq!(parser.pending_bytes(), 0);
    }

    #[test]
    fn byte_at_a_time_feeding_reassembles_identically() {
        let (bytes, records) = sample_stream();
        let mut parser = StreamParser::new();
        let mut events = Vec::new();
        for byte in bytes {
            parser.feed(&[byte]);
            while let Some(event) = parser.next_event().unwrap() {
                events.push(event);
            }
        }
        assert_eq!(events.len(), 1 + records.len());
        for (event, expected) in events[1..].iter().zip(&records) {
            assert_eq!(event, &StreamEvent::Record(expected.clone()));
        }
    }

    #[test]
    fn bad_magic_poisons_the_parser() {
        let (mut bytes, _) = sample_stream();
        bytes[0] = b'X';
        let mut parser = StreamParser::new();
        parser.feed(&bytes);
        assert_eq!(parser.next_event(), Err(StreamError::BadHelloMagic));
        // Poisoned: same error forever, never resynchronizes.
        assert_eq!(parser.next_event(), Err(StreamError::BadHelloMagic));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let (mut bytes, _) = sample_stream();
        bytes[9] = 99;
        let mut parser = StreamParser::new();
        parser.feed(&bytes);
        assert_eq!(parser.next_event(), Err(StreamError::BadVersion(99)));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering() {
        let mut bytes = encode_hello(0, &sample_scenario()).to_vec();
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut parser = StreamParser::new();
        parser.feed(&bytes);
        assert!(parser.next_event().unwrap().is_some()); // hello
        assert_eq!(
            parser.next_event(),
            Err(StreamError::Oversize {
                len: u32::MAX as usize
            })
        );
    }

    #[test]
    fn unknown_tap_code_is_rejected() {
        let mut bytes = encode_hello(0, &sample_scenario()).to_vec();
        let mut msg = Vec::new();
        encode_record(&sample_record(TapPoint::UplinkSent, 0), &mut msg);
        msg[4] = 9; // tap code out of range
        bytes.extend_from_slice(&msg);
        let mut parser = StreamParser::new();
        parser.feed(&bytes);
        assert!(parser.next_event().unwrap().is_some());
        assert_eq!(parser.next_event(), Err(StreamError::BadTap(9)));
    }

    #[test]
    fn corrupt_frame_is_rejected_at_the_wire_boundary() {
        let mut bytes = encode_hello(0, &sample_scenario()).to_vec();
        let mut record = sample_record(TapPoint::UplinkSent, 0);
        record.wire.push(0xAB); // trailing byte: strict decode rejects
        encode_record(&record, &mut bytes);
        let mut parser = StreamParser::new();
        parser.feed(&bytes);
        assert!(parser.next_event().unwrap().is_some());
        assert!(matches!(
            parser.next_event(),
            Err(StreamError::Frame(FrameError::LengthMismatch { .. }))
        ));
    }

    fn hello_with(
        plant: u32,
        onset_bits: u64,
        duration_bits: u64,
    ) -> Result<Option<StreamEvent>, StreamError> {
        let mut bytes = encode_hello(plant, &sample_scenario());
        bytes[24..32].copy_from_slice(&onset_bits.to_be_bytes());
        bytes[32..40].copy_from_slice(&duration_bits.to_be_bytes());
        let mut parser = StreamParser::new();
        parser.feed(&bytes);
        parser.next_event()
    }

    #[test]
    fn non_finite_and_negative_onset_hours_are_rejected() {
        for bad in [f64::NAN, -1.0, f64::NEG_INFINITY, -0.000_1] {
            assert!(
                matches!(
                    hello_with(3, bad.to_bits(), 2.0f64.to_bits()),
                    Err(StreamError::BadOnset(_))
                ),
                "onset {bad} should be rejected"
            );
        }
        // +∞ is the "no anomaly" sentinel normal streams declare; zero
        // means the anomaly was live from the first sample. Both valid.
        for good in [f64::INFINITY, 0.0, 0.5] {
            assert!(
                matches!(
                    hello_with(3, good.to_bits(), 2.0f64.to_bits()),
                    Ok(Some(StreamEvent::Hello(_)))
                ),
                "onset {good} should be accepted"
            );
        }
    }

    #[test]
    fn non_finite_and_negative_durations_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -2.0] {
            assert!(
                matches!(
                    hello_with(3, 0.5f64.to_bits(), bad.to_bits()),
                    Err(StreamError::BadDuration(_))
                ),
                "duration {bad} should be rejected"
            );
        }
    }

    #[test]
    fn reserved_plant_id_is_rejected() {
        let bytes = encode_hello(u32::MAX, &sample_scenario());
        let mut parser = StreamParser::new();
        parser.feed(&bytes);
        assert_eq!(parser.next_event(), Err(StreamError::BadPlant(u32::MAX)));
    }

    #[test]
    fn pending_bytes_reports_torn_tail() {
        let (bytes, _) = sample_stream();
        let mut parser = StreamParser::new();
        parser.feed(&bytes[..bytes.len() - 3]);
        while parser.next_event().unwrap().is_some() {}
        assert!(parser.pending_bytes() > 0);
    }

    #[test]
    fn kind_and_tap_codes_roundtrip() {
        for kind in [
            ScenarioKind::Normal,
            ScenarioKind::Idv6,
            ScenarioKind::IntegrityXmv3,
            ScenarioKind::IntegrityXmeas1,
            ScenarioKind::DosXmv3,
        ] {
            assert_eq!(kind_from_code(kind_code(kind)), Some(kind));
        }
        assert_eq!(kind_from_code(200), None);
        for point in TapPoint::STEP_ORDER {
            assert_eq!(tap_from_code(tap_code(point)), Some(point));
        }
        assert_eq!(tap_from_code(4), None);
    }
}
