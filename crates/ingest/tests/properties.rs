//! Property-based tests of the ingestion wire parser: TCP may tear a
//! frame at any byte boundary, and the parser must reassemble exactly
//! what was sent or fail loudly — never panic, never silently skip.

use proptest::prelude::*;
use temspc::{Scenario, ScenarioKind};
use temspc_fieldbus::{CaptureRecord, Frame, TapPoint};
use temspc_ingest::stream::{encode_hello, encode_record, StreamEvent, StreamParser};

fn record_strategy() -> impl Strategy<Value = CaptureRecord> {
    (
        0usize..4,
        any::<u32>(),
        0.0..100.0f64,
        prop::collection::vec(-1e9..1e9f64, 0..64),
    )
        .prop_map(|(tap, seq, hour, values)| {
            let point = TapPoint::STEP_ORDER[tap];
            let frame = Frame::new(point.expected_kind(), seq, hour, values);
            CaptureRecord {
                point,
                hour,
                wire: frame.encode().unwrap().to_vec(),
            }
        })
}

fn stream_strategy() -> impl Strategy<Value = (Vec<u8>, Vec<CaptureRecord>)> {
    (
        // u32::MAX is the reserved "no plant" sentinel and is rejected
        // at the handshake; valid streams stay below it.
        0u32..u32::MAX,
        any::<u64>(),
        0.0..10.0f64,
        0.1..100.0f64,
        prop::collection::vec(record_strategy(), 0..12),
    )
        .prop_map(|(plant, seed, onset, duration, records)| {
            let scenario = Scenario::short(ScenarioKind::Idv6, duration, onset, seed);
            let mut bytes = encode_hello(plant, &scenario).to_vec();
            for record in &records {
                encode_record(record, &mut bytes);
            }
            (bytes, records)
        })
}

/// Parses a byte stream to completion, returning the events plus any
/// terminal error.
fn parse_all(parser: &mut StreamParser) -> (Vec<StreamEvent>, Option<String>) {
    let mut events = Vec::new();
    loop {
        match parser.next_event() {
            Ok(Some(event)) => events.push(event),
            Ok(None) => return (events, None),
            Err(e) => return (events, Some(e.to_string())),
        }
    }
}

proptest! {
    /// Core torn-read lock: no matter how the kernel segments the
    /// stream, the reassembled records are byte-identical to what the
    /// sender encoded. Reading one byte at a time, in lumps, or all at
    /// once must be indistinguishable.
    #[test]
    fn arbitrary_segmentation_reassembles_identically(
        (bytes, records) in stream_strategy(),
        chunks in prop::collection::vec(1usize..97, 0..256),
    ) {
        let mut parser = StreamParser::new();
        let mut events = Vec::new();
        let mut cursor = 0;
        let mut chunks = chunks.into_iter();
        while cursor < bytes.len() {
            let take = chunks.next().unwrap_or(1).min(bytes.len() - cursor);
            parser.feed(&bytes[cursor..cursor + take]);
            cursor += take;
            let (mut new_events, error) = parse_all(&mut parser);
            prop_assert!(error.is_none(), "valid stream errored: {error:?}");
            events.append(&mut new_events);
        }
        prop_assert_eq!(events.len(), 1 + records.len());
        prop_assert!(matches!(events[0], StreamEvent::Hello(_)));
        for (event, expected) in events[1..].iter().zip(&records) {
            match event {
                StreamEvent::Record(record) => {
                    prop_assert_eq!(&record.wire, &expected.wire);
                    prop_assert_eq!(record.point, expected.point);
                    prop_assert_eq!(record.hour.to_bits(), expected.hour.to_bits());
                }
                other => prop_assert!(false, "expected record, got {:?}", other),
            }
        }
        prop_assert_eq!(parser.pending_bytes(), 0);
    }

    /// A truncated stream yields a strict prefix of the full event list
    /// and never invents or skips a record; a tear mid-message is
    /// visible as pending bytes, so EOF handling can flag it instead of
    /// silently dropping a frame.
    #[test]
    fn truncation_yields_a_clean_prefix_and_a_visible_tear(
        (bytes, _records) in stream_strategy(),
        cut in 0usize..4096,
    ) {
        let cut = cut.min(bytes.len());

        let mut full = StreamParser::new();
        full.feed(&bytes);
        let (full_events, full_error) = parse_all(&mut full);
        prop_assert!(full_error.is_none());

        let mut torn = StreamParser::new();
        torn.feed(&bytes[..cut]);
        let (mut events, error) = parse_all(&mut torn);
        prop_assert!(error.is_none(), "a valid prefix must not error: {error:?}");
        prop_assert!(events.len() <= full_events.len());
        for (got, expected) in events.iter().zip(&full_events) {
            prop_assert_eq!(got, expected);
        }
        // Nothing was silently consumed: feeding the rest of the stream
        // recovers exactly the missing events, and the buffer drains.
        torn.feed(&bytes[cut..]);
        let (rest, error) = parse_all(&mut torn);
        prop_assert!(error.is_none(), "resumed stream errored: {error:?}");
        events.extend(rest);
        prop_assert_eq!(events, full_events);
        prop_assert_eq!(torn.pending_bytes(), 0);
    }

    /// Corrupting any single byte never panics the parser; it either
    /// changes decoded payload values (frames carry no checksum — the
    /// strict grammar still accepts them) or poisons the parser with a
    /// clean error that repeats on every subsequent call. It never
    /// resynchronizes past corrupt bytes.
    #[test]
    fn single_byte_corruption_never_panics_and_poisons_terminally(
        (mut bytes, records) in stream_strategy(),
        pos in 0usize..4096,
        byte in any::<u8>(),
        extra in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // The stream always carries at least the 40-byte handshake.
        let pos = pos % bytes.len();
        bytes[pos] = byte;
        let _ = records;
        let mut parser = StreamParser::new();
        parser.feed(&bytes);
        let (_events, error) = parse_all(&mut parser);
        if let Some(first_error) = error {
            // Poisoned: the same error forever, even as more bytes
            // (attacker-chosen) arrive.
            parser.feed(&extra);
            match parser.next_event() {
                Err(e) => prop_assert_eq!(e.to_string(), first_error),
                Ok(other) => prop_assert!(false, "poisoned parser yielded {:?}", other),
            }
        }
    }

    /// Oversized length prefixes are rejected before any buffering: the
    /// parser's pending window stays bounded no matter what lengths a
    /// hostile peer advertises.
    #[test]
    fn hostile_length_prefixes_never_balloon_the_buffer(
        plant in 0u32..u32::MAX,
        len in (temspc_ingest::MAX_MESSAGE_LEN as u32 + 1)..=u32::MAX,
    ) {
        let scenario = Scenario::short(ScenarioKind::Normal, 1.0, 0.5, 1);
        let mut bytes = encode_hello(plant, &scenario).to_vec();
        bytes.extend_from_slice(&len.to_be_bytes());
        let mut parser = StreamParser::new();
        parser.feed(&bytes);
        prop_assert!(matches!(parser.next_event(), Ok(Some(StreamEvent::Hello(_)))));
        prop_assert!(parser.next_event().is_err());
    }

    /// Hostile hello floats: arbitrary bit patterns in the onset and
    /// duration fields never panic the parser. NaN or negative onsets
    /// and non-finite or negative durations are rejected terminally;
    /// everything else (including the +inf "no anomaly" onset sentinel)
    /// yields a Hello.
    #[test]
    fn hostile_hello_floats_never_panic_and_invalid_ones_are_rejected(
        onset_bits in any::<u64>(),
        duration_bits in any::<u64>(),
        extra in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let scenario = Scenario::short(ScenarioKind::Idv6, 1.0, 0.5, 1);
        let mut bytes = encode_hello(1, &scenario).to_vec();
        bytes[24..32].copy_from_slice(&onset_bits.to_be_bytes());
        bytes[32..40].copy_from_slice(&duration_bits.to_be_bytes());
        let onset = f64::from_bits(onset_bits);
        let duration = f64::from_bits(duration_bits);

        let mut parser = StreamParser::new();
        parser.feed(&bytes);
        let event = parser.next_event();
        let onset_ok = !onset.is_nan() && onset >= 0.0;
        let duration_ok = duration.is_finite() && duration >= 0.0;
        if onset_ok && duration_ok {
            prop_assert!(matches!(event, Ok(Some(StreamEvent::Hello(_)))));
        } else {
            prop_assert!(
                event.is_err(),
                "invalid hello accepted: onset {onset}, duration {duration}"
            );
            // Poisoned terminally: more attacker bytes change nothing.
            parser.feed(&extra);
            prop_assert!(parser.next_event().is_err());
        }
    }

    /// The reserved plant id (u32::MAX) is the only plant value the
    /// handshake rejects.
    #[test]
    fn reserved_plant_id_is_the_only_rejected_plant(
        plant in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let scenario = Scenario::short(ScenarioKind::Idv6, 1.0, 0.5, seed);
        let mut parser = StreamParser::new();
        parser.feed(&encode_hello(plant, &scenario));
        let event = parser.next_event();
        if plant == u32::MAX {
            prop_assert!(event.is_err(), "reserved plant id accepted");
        } else {
            prop_assert!(matches!(event, Ok(Some(StreamEvent::Hello(_)))));
        }
    }
}
