//! Matrix decompositions: symmetric eigendecomposition (cyclic Jacobi),
//! thin SVD and Householder QR.
//!
//! PCA in [`temspc-mspc`](../../temspc_mspc/index.html) is computed with
//! NIPALS, but the eigendecomposition here is used to cross-check NIPALS in
//! tests, to compute the residual eigenvalues needed by the
//! Jackson–Mudholkar SPE control limit, and to invert score covariance for
//! Hotelling's T².

use crate::{LinalgError, Matrix, Result};

/// Result of a symmetric eigendecomposition: `a = v * diag(values) * v^T`.
///
/// Eigenvalues are sorted in descending order and `vectors` stores the
/// corresponding eigenvectors as columns.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, in the same order as `values`.
    pub vectors: Matrix,
}

/// Computes the eigendecomposition of a symmetric matrix with the cyclic
/// Jacobi method.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] if `a` is not square.
/// * [`LinalgError::Empty`] if `a` is empty.
/// * [`LinalgError::NoConvergence`] if the off-diagonal mass does not vanish
///   within the sweep budget (does not happen for well-formed symmetric
///   input).
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    let n = a.nrows();
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    if a.nrows() != a.ncols() {
        return Err(LinalgError::ShapeMismatch {
            left: a.shape(),
            right: a.shape(),
        });
    }
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 100;
    let scale = a.max_abs().max(f64::MIN_POSITIVE);
    let tol = 1e-14 * scale;

    for sweep in 0..max_sweeps {
        let mut off = 0.0_f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off = off.max(m.get(p, q).abs());
            }
        }
        if off <= tol {
            return Ok(sort_eigen(m, v, n));
        }
        let _ = sweep;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= tol * 1e-2 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                // Stable rotation computation (Golub & Van Loan 8.4).
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        algorithm: "jacobi eigendecomposition",
        iterations: max_sweeps,
    })
}

fn sort_eigen(m: Matrix, v: Matrix, n: usize) -> SymmetricEigen {
    let mut idx: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    idx.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).unwrap());
    let values: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_c, &old_c) in idx.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, new_c, v.get(r, old_c));
        }
    }
    SymmetricEigen { values, vectors }
}

/// Thin singular value decomposition `x = u * diag(s) * v^T`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (`n x k`), as columns.
    pub u: Matrix,
    /// Singular values, descending (`k`), where `k = min(n, m)`.
    pub singular_values: Vec<f64>,
    /// Right singular vectors (`m x k`), as columns.
    pub v: Matrix,
}

/// Computes a thin SVD via the eigendecomposition of the smaller Gram
/// matrix (`x^T x` or `x x^T`).
///
/// Adequate for the tall, well-conditioned data matrices used by MSPC; not
/// recommended for matrices with condition numbers near `1/sqrt(eps)`.
///
/// # Errors
///
/// Propagates errors from [`symmetric_eigen`]; returns
/// [`LinalgError::Empty`] for an empty input.
pub fn svd(x: &Matrix) -> Result<Svd> {
    let (n, m) = x.shape();
    if n == 0 || m == 0 {
        return Err(LinalgError::Empty);
    }
    if m <= n {
        let gram = x.transpose().matmul(x); // m x m
        let eig = symmetric_eigen(&gram)?;
        let singular_values: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let v = eig.vectors;
        // u_i = x v_i / s_i (columns with s_i ~ 0 are zeroed).
        let xv = x.matmul(&v);
        let mut u = Matrix::zeros(n, m);
        for c in 0..m {
            let s = singular_values[c];
            if s > 1e-12 * singular_values[0].max(1e-300) {
                for r in 0..n {
                    u.set(r, c, xv.get(r, c) / s);
                }
            }
        }
        Ok(Svd {
            u,
            singular_values,
            v,
        })
    } else {
        let t = svd(&x.transpose())?;
        Ok(Svd {
            u: t.v,
            singular_values: t.singular_values,
            v: t.u,
        })
    }
}

/// Householder QR decomposition `a = q * r` with `q` orthogonal (`n x n`)
/// and `r` upper trapezoidal (`n x m`).
#[derive(Debug, Clone)]
pub struct Qr {
    /// Orthogonal factor.
    pub q: Matrix,
    /// Upper-trapezoidal factor.
    pub r: Matrix,
}

/// Computes the Householder QR decomposition of `a`.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty matrix.
pub fn qr(a: &Matrix) -> Result<Qr> {
    let (n, m) = a.shape();
    if n == 0 || m == 0 {
        return Err(LinalgError::Empty);
    }
    let mut r = a.clone();
    let mut q = Matrix::identity(n);
    for k in 0..m.min(n.saturating_sub(1)) {
        // Build the Householder vector for column k.
        let mut norm = 0.0;
        for i in k..n {
            norm += r.get(i, k) * r.get(i, k);
        }
        let norm = norm.sqrt();
        if norm == 0.0 {
            continue;
        }
        let alpha = if r.get(k, k) >= 0.0 { -norm } else { norm };
        let mut v = vec![0.0; n];
        v[k] = r.get(k, k) - alpha;
        for (i, vi) in v.iter_mut().enumerate().take(n).skip(k + 1) {
            *vi = r.get(i, k);
        }
        let vtv: f64 = v.iter().map(|x| x * x).sum();
        if vtv == 0.0 {
            continue;
        }
        // r <- (I - 2 v v^T / v^T v) r
        for j in k..m {
            let dot: f64 = (k..n).map(|i| v[i] * r.get(i, j)).sum();
            let f = 2.0 * dot / vtv;
            for (i, &vi) in v.iter().enumerate().skip(k) {
                let val = r.get(i, j) - f * vi;
                r.set(i, j, val);
            }
        }
        // q <- q (I - 2 v v^T / v^T v)
        for i in 0..n {
            let dot: f64 = (k..n).map(|j| q.get(i, j) * v[j]).sum();
            let f = 2.0 * dot / vtv;
            for (j, &vj) in v.iter().enumerate().skip(k) {
                let val = q.get(i, j) - f * vj;
                q.set(i, j, val);
            }
        }
    }
    Ok(Qr { q, r })
}

/// Solves the symmetric positive-definite system `a x = b` via Cholesky.
///
/// Used to invert the score covariance in Hotelling's T² without forming an
/// explicit inverse.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] if `a` is not square or `b` has the
///   wrong length.
/// * [`LinalgError::Singular`] if `a` is not positive definite to working
///   precision.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    cholesky(a)?.solve(b)
}

/// A Cholesky factorization `a = l lᵀ` of a symmetric positive-definite
/// matrix, reusable across many right-hand sides.
///
/// Factoring once and calling [`CholeskyFactor::solve`] repeatedly turns
/// the per-solve cost from `O(n³)` to `O(n²)` — this is what PRESS
/// cross-validation leans on, where the same tiny Gram system is solved
/// for every held-out observation.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    l: Matrix,
}

/// Computes the Cholesky factorization of a symmetric positive-definite
/// matrix.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] if `a` is not square.
/// * [`LinalgError::Singular`] if `a` is not positive definite to working
///   precision.
pub fn cholesky(a: &Matrix) -> Result<CholeskyFactor> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(LinalgError::ShapeMismatch {
            left: a.shape(),
            right: a.shape(),
        });
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::Singular);
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(CholeskyFactor { l })
}

impl CholeskyFactor {
    /// Dimension of the factored matrix.
    pub fn n(&self) -> usize {
        self.l.nrows()
    }

    /// Solves `a x = b` using the precomputed factor.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `a x = b` into a caller-owned vector (resized to `n`;
    /// allocation-free once warm).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b` has the wrong length.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<()> {
        let n = self.l.nrows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                left: self.l.shape(),
                right: (b.len(), 1),
            });
        }
        let l = &self.l;
        // Forward substitution l y = b, reusing `x` as the y buffer.
        x.clear();
        x.resize(n, 0.0);
        for i in 0..n {
            let mut sum = b[i];
            for (k, &yk) in x.iter().enumerate().take(i) {
                sum -= l.get(i, k) * yk;
            }
            x[i] = sum / l.get(i, i);
        }
        // Back substitution l^T x = y, in place.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                sum -= l.get(k, i) * xk;
            }
            x[i] = sum / l.get(i, i);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let e = symmetric_eigen(&a).unwrap();
        assert!(approx(e.values[0], 3.0, 1e-12));
        assert!(approx(e.values[1], 2.0, 1e-12));
        assert!(approx(e.values[2], 1.0, 1e-12));
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -0.2], &[0.5, -0.2, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        let lam = Matrix::from_diag(&e.values);
        let rec = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        assert!(rec.try_sub(&a).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn eigen_vectors_are_orthonormal() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(vtv.try_sub(&Matrix::identity(2)).unwrap().max_abs() < 1e-12);
        assert!(approx(e.values[0], 3.0, 1e-12));
        assert!(approx(e.values[1], 1.0, 1e-12));
    }

    #[test]
    fn eigen_rejects_nonsquare() {
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
        assert!(matches!(
            symmetric_eigen(&Matrix::default()),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn svd_reconstructs_tall_matrix() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.0]]);
        let s = svd(&x).unwrap();
        let rec =
            s.u.matmul(&Matrix::from_diag(&s.singular_values))
                .matmul(&s.v.transpose());
        assert!(rec.try_sub(&x).unwrap().max_abs() < 1e-9);
        assert!(s.singular_values[0] >= s.singular_values[1]);
    }

    #[test]
    fn svd_wide_matrix_via_transpose() {
        let x = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0]]);
        let s = svd(&x).unwrap();
        let rec =
            s.u.matmul(&Matrix::from_diag(&s.singular_values))
                .matmul(&s.v.transpose());
        assert!(rec.try_sub(&x).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn svd_singular_values_match_eigenvalues() {
        let x = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 0.5], &[0.0, 0.0]]);
        let s = svd(&x).unwrap();
        assert!(approx(s.singular_values[0], 2.0, 1e-12));
        assert!(approx(s.singular_values[1], 0.5, 1e-12));
    }

    #[test]
    fn qr_reconstructs_and_q_is_orthogonal() {
        let a = Matrix::from_rows(&[
            &[1.0, -1.0, 4.0],
            &[1.0, 4.0, -2.0],
            &[1.0, 4.0, 2.0],
            &[1.0, -1.0, 0.0],
        ]);
        let f = qr(&a).unwrap();
        let rec = f.q.matmul(&f.r);
        assert!(rec.try_sub(&a).unwrap().max_abs() < 1e-10);
        let qtq = f.q.transpose().matmul(&f.q);
        assert!(qtq.try_sub(&Matrix::identity(4)).unwrap().max_abs() < 1e-10);
        // R is upper-trapezoidal.
        for i in 1..4 {
            for j in 0..i.min(3) {
                assert!(f.r.get(i, j).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_spd_known_system() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let b = [1.0, 2.0];
        let x = solve_spd(&a, &b).unwrap();
        // Verify a x = b.
        let ax = a.matvec(&x);
        assert!(approx(ax[0], 1.0, 1e-12));
        assert!(approx(ax[1], 2.0, 1e-12));
    }

    #[test]
    fn solve_spd_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, -1.0]]);
        assert!(matches!(
            solve_spd(&a, &[1.0, 1.0]),
            Err(LinalgError::Singular)
        ));
    }
}
