//! Special functions and probability distributions used to derive MSPC
//! control limits.
//!
//! Hotelling's T² limit needs the F-distribution quantile; the SPE
//! (Q-statistic) limit needs Normal and χ² quantiles (Jackson–Mudholkar and
//! Box approximations). All functions are implemented from scratch:
//! Lanczos log-gamma, regularized incomplete gamma/beta, and
//! quantiles via analytic approximations refined with bisection/Newton.

use crate::{LinalgError, Result};

/// Natural log of the gamma function (Lanczos approximation, g = 7).
///
/// Accurate to ~15 significant digits for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, n = 9.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + 7.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// # Errors
///
/// Returns [`LinalgError::Domain`] if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || x < 0.0 {
        return Err(LinalgError::Domain {
            what: "gamma_p requires a > 0 and x >= 0",
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-16 {
                break;
            }
        }
        Ok(sum * (-x + a * x.ln() - ln_gamma(a)).exp())
    } else {
        // Continued fraction for Q(a, x); P = 1 - Q.
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-16 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        Ok(1.0 - q)
    }
}

/// Regularized incomplete beta function `I_x(a, b)` (continued fraction,
/// Numerical Recipes style).
///
/// # Errors
///
/// Returns [`LinalgError::Domain`] if `a <= 0`, `b <= 0` or `x` is outside
/// `[0, 1]`.
pub fn beta_inc(a: f64, b: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || b <= 0.0 {
        return Err(LinalgError::Domain {
            what: "beta_inc requires a > 0 and b > 0",
        });
    }
    if !(0.0..=1.0).contains(&x) {
        return Err(LinalgError::Domain {
            what: "beta_inc requires x in [0, 1]",
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok(front * beta_cf(a, b, x) / a)
    } else {
        Ok(1.0 - front * beta_cf(b, a, 1.0 - x) / b)
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < 1e-300 {
        d = 1e-300;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = 1.0 + aa / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = 1.0 + aa / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// The error function `erf(x)`, computed from the incomplete gamma
/// function.
pub fn erf(x: f64) -> f64 {
    let p = gamma_p(0.5, x * x).unwrap_or(1.0);
    if x >= 0.0 {
        p
    } else {
        -p
    }
}

/// Standard normal distribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Normal;

impl Normal {
    /// Cumulative distribution function Φ(x).
    pub fn cdf(&self, x: f64) -> f64 {
        0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
    }

    /// Quantile (inverse CDF) via the Acklam rational approximation refined
    /// with one Halley step.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Domain`] if `p` is outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..1.0).contains(&p) || p == 0.0 {
            return Err(LinalgError::Domain {
                what: "normal quantile requires p in (0, 1)",
            });
        }
        // Acklam's algorithm.
        const A: [f64; 6] = [
            -3.969_683_028_665_376e1,
            2.209_460_984_245_205e2,
            -2.759_285_104_469_687e2,
            1.383_577_518_672_69e2,
            -3.066_479_806_614_716e1,
            2.506_628_277_459_239,
        ];
        const B: [f64; 5] = [
            -5.447_609_879_822_406e1,
            1.615_858_368_580_409e2,
            -1.556_989_798_598_866e2,
            6.680_131_188_771_972e1,
            -1.328_068_155_288_572e1,
        ];
        const C: [f64; 6] = [
            -7.784_894_002_430_293e-3,
            -3.223_964_580_411_365e-1,
            -2.400_758_277_161_838,
            -2.549_732_539_343_734,
            4.374_664_141_464_968,
            2.938_163_982_698_783,
        ];
        const D: [f64; 4] = [
            7.784_695_709_041_462e-3,
            3.224_671_290_700_398e-1,
            2.445_134_137_142_996,
            3.754_408_661_907_416,
        ];
        let p_low = 0.02425;
        let x = if p < p_low {
            let q = (-2.0 * p.ln()).sqrt();
            (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        } else if p <= 1.0 - p_low {
            let q = p - 0.5;
            let r = q * q;
            (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
                / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
        } else {
            let q = (-2.0 * (1.0 - p).ln()).sqrt();
            -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        };
        // One Halley refinement step.
        let e = self.cdf(x) - p;
        let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
        Ok(x - u / (1.0 + x * u / 2.0))
    }
}

/// Chi-squared distribution with `k` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    /// Degrees of freedom (may be fractional, as in Box's SPE
    /// approximation).
    pub k: f64,
}

impl ChiSquared {
    /// Creates a χ² distribution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Domain`] if `k <= 0`.
    pub fn new(k: f64) -> Result<Self> {
        if k <= 0.0 {
            return Err(LinalgError::Domain {
                what: "chi-squared requires k > 0",
            });
        }
        Ok(ChiSquared { k })
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.k / 2.0, x / 2.0).unwrap_or(1.0)
        }
    }

    /// Quantile (inverse CDF) via the Wilson–Hilferty start refined with
    /// bisection/Newton.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Domain`] if `p` is outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..1.0).contains(&p) || p == 0.0 {
            return Err(LinalgError::Domain {
                what: "chi-squared quantile requires p in (0, 1)",
            });
        }
        // Wilson–Hilferty initial guess.
        let z = Normal.quantile(p)?;
        let k = self.k;
        let guess = k * (1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt()).powi(3);
        let f = |x: f64| self.cdf(x) - p;
        Ok(invert_cdf(f, guess.max(1e-10), 0.0, f64::INFINITY))
    }
}

/// F-distribution with `d1` (numerator) and `d2` (denominator) degrees of
/// freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FisherF {
    /// Numerator degrees of freedom.
    pub d1: f64,
    /// Denominator degrees of freedom.
    pub d2: f64,
}

impl FisherF {
    /// Creates an F distribution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Domain`] if either parameter is not positive.
    pub fn new(d1: f64, d2: f64) -> Result<Self> {
        if d1 <= 0.0 || d2 <= 0.0 {
            return Err(LinalgError::Domain {
                what: "F distribution requires d1 > 0 and d2 > 0",
            });
        }
        Ok(FisherF { d1, d2 })
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let t = self.d1 * x / (self.d1 * x + self.d2);
        beta_inc(self.d1 / 2.0, self.d2 / 2.0, t).unwrap_or(1.0)
    }

    /// Quantile (inverse CDF), solved by monotone search on the CDF.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Domain`] if `p` is outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..1.0).contains(&p) || p == 0.0 {
            return Err(LinalgError::Domain {
                what: "F quantile requires p in (0, 1)",
            });
        }
        let f = |x: f64| self.cdf(x) - p;
        Ok(invert_cdf(f, 1.0, 0.0, f64::INFINITY))
    }
}

/// Beta distribution with shape parameters `a` and `b`.
///
/// Used for the small-sample "beta limit" variant of the D-statistic
/// control limit (Tracy–Widom–Young form for monitoring the calibration
/// observations themselves).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaDist {
    /// First shape parameter.
    pub a: f64,
    /// Second shape parameter.
    pub b: f64,
}

impl BetaDist {
    /// Creates a Beta distribution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Domain`] if either shape is not positive.
    pub fn new(a: f64, b: f64) -> Result<Self> {
        if a <= 0.0 || b <= 0.0 {
            return Err(LinalgError::Domain {
                what: "Beta distribution requires a > 0 and b > 0",
            });
        }
        Ok(BetaDist { a, b })
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else if x >= 1.0 {
            1.0
        } else {
            beta_inc(self.a, self.b, x).unwrap_or(1.0)
        }
    }

    /// Quantile (inverse CDF) via bisection on `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Domain`] if `p` is outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..1.0).contains(&p) || p == 0.0 {
            return Err(LinalgError::Domain {
                what: "Beta quantile requires p in (0, 1)",
            });
        }
        let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }
}

/// Inverts a monotone CDF-difference function `f` (which must be increasing
/// and cross zero) starting from `guess`, by expanding a bracket then
/// bisecting.
fn invert_cdf<F: Fn(f64) -> f64>(f: F, guess: f64, lower: f64, upper: f64) -> f64 {
    let mut lo = lower.max(1e-300);
    let mut hi = guess.max(lo * 2.0);
    // Expand hi until f(hi) >= 0.
    let mut iters = 0;
    while f(hi) < 0.0 && hi < upper && iters < 200 {
        lo = hi;
        hi *= 2.0;
        iters += 1;
    }
    // Shrink lo until f(lo) <= 0.
    iters = 0;
    while f(lo) > 0.0 && iters < 200 {
        hi = lo;
        lo /= 2.0;
        iters += 1;
    }
    for _ in 0..120 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Gamma(n) = (n-1)!
        assert!(close(ln_gamma(1.0), 0.0, 1e-12));
        assert!(close(ln_gamma(2.0), 0.0, 1e-12));
        assert!(close(ln_gamma(5.0), (24.0_f64).ln(), 1e-12));
        assert!(close(ln_gamma(11.0), (3_628_800.0_f64).ln(), 1e-10));
    }

    #[test]
    fn ln_gamma_half() {
        // Gamma(1/2) = sqrt(pi)
        assert!(close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12));
    }

    #[test]
    fn gamma_p_limits() {
        assert_eq!(gamma_p(2.0, 0.0).unwrap(), 0.0);
        assert!(gamma_p(2.0, 100.0).unwrap() > 1.0 - 1e-12);
        assert!(gamma_p(-1.0, 1.0).is_err());
    }

    #[test]
    fn erf_known_values() {
        assert!(close(erf(0.0), 0.0, 1e-15));
        assert!(close(erf(1.0), 0.842_700_792_949_714_9, 1e-10));
        assert!(close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10));
    }

    #[test]
    fn normal_cdf_symmetry_and_known_values() {
        let n = Normal;
        assert!(close(n.cdf(0.0), 0.5, 1e-15));
        assert!(close(n.cdf(1.959_963_984_540_054), 0.975, 1e-9));
        assert!(close(n.cdf(-1.0) + n.cdf(1.0), 1.0, 1e-12));
    }

    #[test]
    fn normal_quantile_roundtrip() {
        let n = Normal;
        for &p in &[0.001, 0.01, 0.05, 0.5, 0.95, 0.99, 0.999] {
            let x = n.quantile(p).unwrap();
            assert!(close(n.cdf(x), p, 1e-10), "p = {p}");
        }
        assert!(close(
            n.quantile(0.975).unwrap(),
            1.959_963_984_540_054,
            1e-8
        ));
    }

    #[test]
    fn chi2_quantile_known_values() {
        // chi2(0.95; 1) = 3.8415, chi2(0.99; 10) = 23.209
        let c1 = ChiSquared::new(1.0).unwrap();
        assert!(close(
            c1.quantile(0.95).unwrap(),
            3.841_458_820_694_124,
            1e-6
        ));
        let c10 = ChiSquared::new(10.0).unwrap();
        assert!(close(
            c10.quantile(0.99).unwrap(),
            23.209_251_158_954_356,
            1e-6
        ));
    }

    #[test]
    fn chi2_cdf_quantile_roundtrip() {
        let c = ChiSquared::new(7.3).unwrap();
        for &p in &[0.01, 0.25, 0.5, 0.9, 0.99] {
            let x = c.quantile(p).unwrap();
            assert!(close(c.cdf(x), p, 1e-9), "p = {p}");
        }
    }

    #[test]
    fn f_quantile_known_values() {
        // F(0.95; 2, 10) = 4.1028, F(0.99; 5, 20) = 4.1027
        let f = FisherF::new(2.0, 10.0).unwrap();
        assert!(close(f.quantile(0.95).unwrap(), 4.102_821, 1e-4));
        let f2 = FisherF::new(5.0, 20.0).unwrap();
        assert!(close(f2.quantile(0.99).unwrap(), 4.102_7, 2e-3));
    }

    #[test]
    fn f_cdf_quantile_roundtrip() {
        let f = FisherF::new(3.0, 57.0).unwrap();
        for &p in &[0.05, 0.5, 0.95, 0.99] {
            let x = f.quantile(p).unwrap();
            assert!(close(f.cdf(x), p, 1e-9), "p = {p}");
        }
    }

    #[test]
    fn beta_inc_matches_symmetry() {
        // I_x(a, b) = 1 - I_{1-x}(b, a)
        let v1 = beta_inc(2.0, 5.0, 0.3).unwrap();
        let v2 = beta_inc(5.0, 2.0, 0.7).unwrap();
        assert!(close(v1, 1.0 - v2, 1e-12));
    }

    #[test]
    fn beta_uniform_case() {
        // Beta(1, 1) is uniform: CDF(x) = x.
        let b = BetaDist::new(1.0, 1.0).unwrap();
        assert!(close(b.cdf(0.42), 0.42, 1e-12));
        assert!(close(b.quantile(0.42).unwrap(), 0.42, 1e-9));
    }

    #[test]
    fn beta_quantile_roundtrip() {
        let b = BetaDist::new(3.5, 1.2).unwrap();
        for &p in &[0.05, 0.5, 0.95] {
            let x = b.quantile(p).unwrap();
            assert!(close(b.cdf(x), p, 1e-9));
        }
    }

    #[test]
    fn domain_errors() {
        assert!(Normal.quantile(0.0).is_err());
        assert!(Normal.quantile(1.0).is_err());
        assert!(ChiSquared::new(0.0).is_err());
        assert!(FisherF::new(1.0, 0.0).is_err());
        assert!(BetaDist::new(-1.0, 1.0).is_err());
        assert!(beta_inc(1.0, 1.0, 2.0).is_err());
    }
}
