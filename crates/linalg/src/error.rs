use std::fmt;

/// Error type for linear-algebra operations in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes. Holds `(left, right)` shapes as
    /// `(rows, cols)` pairs.
    ShapeMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// An operation required a non-empty matrix but received an empty one.
    Empty,
    /// An iterative algorithm failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm that failed.
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// An argument was outside the function's domain (e.g. a negative
    /// variance, a probability outside `(0, 1)`).
    Domain {
        /// Description of the violated precondition.
        what: &'static str,
    },
    /// A matrix that had to be (numerically) non-singular was singular.
    Singular,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { left, right } => write!(
                f,
                "incompatible shapes: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::Empty => write!(f, "operation requires a non-empty matrix"),
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            LinalgError::Domain { what } => write!(f, "argument outside domain: {what}"),
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
        }
    }
}

impl std::error::Error for LinalgError {}
