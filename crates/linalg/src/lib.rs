//! Dense linear algebra, multivariate statistics and distribution quantiles
//! for PCA-based Multivariate Statistical Process Control (MSPC).
//!
//! This crate is the numerical substrate of the `temspc` workspace. It is
//! deliberately self-contained: the only runtime dependencies are [`rand`]
//! (sampling) and [`serde`] (model persistence). It provides:
//!
//! * [`Matrix`] — a row-major dense matrix with the operations PCA needs
//!   (products, transpose, slicing, norms),
//! * [`decomp`] — symmetric eigendecomposition (cyclic Jacobi), SVD and QR,
//! * [`stats`] — column statistics, covariance/correlation and the
//!   [`stats::AutoScaler`] used to freeze calibration preprocessing,
//! * [`dist`] — special functions plus Normal, χ², F and Beta distributions
//!   with quantile (inverse CDF) support, used for T²/SPE control limits,
//! * [`rng`] — deterministic Gaussian/uniform sampling helpers.
//!
//! # Example
//!
//! ```
//! use temspc_linalg::Matrix;
//!
//! let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let xtx = x.transpose().matmul(&x);
//! assert_eq!(xtx.get(0, 0), 10.0);
//! ```

#![warn(missing_docs)]

pub mod decomp;
pub mod dist;
mod error;
mod matrix;
pub mod rng;
pub mod stats;

pub use error::LinalgError;
pub use matrix::Matrix;

/// Convenience result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
