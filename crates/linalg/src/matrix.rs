use serde::{Deserialize, Serialize};

use crate::{LinalgError, Result};

/// Depth (rows of the RHS) of one packed panel of the blocked matmul
/// kernel. `KC * NC` doubles fit comfortably in L1 alongside the output
/// rows being accumulated.
const KC: usize = 64;
/// Width (columns of the RHS) of one packed panel.
const NC: usize = 64;
/// Rows of the LHS processed together by the register micro-kernel: four
/// output rows share each load of a packed RHS row, and the four running
/// sums stay in registers across the inner loop.
const MR: usize = 4;

/// The blocked matmul micro-kernel: `c += a * b` with `a` of shape
/// `m x k`, `b` of shape `k x n` and `c` of shape `m x n`, all row-major.
///
/// `c` must be zero-initialized by the caller. The RHS is packed one
/// `KC x NC` panel at a time into a stack buffer so the inner loops walk
/// contiguous, cache-resident memory; the LHS is consumed four rows at a
/// time (`MR`) so each packed element is reused fourfold from registers.
///
/// Per output element the additions happen in ascending-`k` order from a
/// single accumulator — exactly the order of a naive dot product — so the
/// result is bit-identical to the scalar row-at-a-time projection the
/// MSPC scoring path previously used.
fn matmul_kernel(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    // 32 KiB on the stack, above the lint's 16 KiB threshold — deliberate:
    // the panel must be allocation-free (the kernel runs inside the
    // zero-alloc scoring path) and this function is never recursive.
    #[allow(clippy::large_stack_arrays)]
    let mut pack = [0.0_f64; KC * NC];
    let mut j0 = 0;
    while j0 < n {
        let nb = NC.min(n - j0);
        let mut k0 = 0;
        while k0 < k {
            let kb = KC.min(k - k0);
            // Pack b[k0..k0+kb, j0..j0+nb] row-major into the panel.
            for kk in 0..kb {
                let src = (k0 + kk) * n + j0;
                pack[kk * nb..kk * nb + nb].copy_from_slice(&b[src..src + nb]);
            }
            let panel = &pack[..kb * nb];

            // Four output rows at a time.
            let mut i = 0;
            while i + MR <= m {
                let (c0, rest) = c[i * n + j0..].split_at_mut(n);
                let (c1, rest) = rest.split_at_mut(n);
                let (c2, rest) = rest.split_at_mut(n);
                let (c0, c1) = (&mut c0[..nb], &mut c1[..nb]);
                let (c2, c3) = (&mut c2[..nb], &mut rest[..nb]);
                let a0 = &a[i * k + k0..];
                let a1 = &a[(i + 1) * k + k0..];
                let a2 = &a[(i + 2) * k + k0..];
                let a3 = &a[(i + 3) * k + k0..];
                for kk in 0..kb {
                    let (w0, w1, w2, w3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
                    let row = &panel[kk * nb..kk * nb + nb];
                    for jj in 0..nb {
                        let v = row[jj];
                        c0[jj] += w0 * v;
                        c1[jj] += w1 * v;
                        c2[jj] += w2 * v;
                        c3[jj] += w3 * v;
                    }
                }
                i += MR;
            }
            // Remainder rows, one at a time.
            while i < m {
                let ci = &mut c[i * n + j0..i * n + j0 + nb];
                let ai = &a[i * k + k0..];
                for kk in 0..kb {
                    let w = ai[kk];
                    let row = &panel[kk * nb..kk * nb + nb];
                    for (o, &v) in ci.iter_mut().zip(row) {
                        *o += w * v;
                    }
                }
                i += 1;
            }
            k0 += kb;
        }
        j0 += nb;
    }
}

/// Columns of `c` computed together by the register dot-product kernel.
const JR: usize = 4;

/// Dot-product micro-tile: `c[i..i+R, j0..j0+JB] = a[i..i+R, :] * b[:, j0..j0+JB]`
/// with all `R * JB` running sums held in registers across the full `k`
/// loop. Each sum accumulates in ascending-`k` order from a single
/// accumulator, so results are bit-identical to a naive dot product.
#[inline(always)]
fn dot_tile<const R: usize, const JB: usize>(
    k: usize,
    n: usize,
    rows: [&[f64]; R],
    b: &[f64],
    j0: usize,
) -> [[f64; JB]; R] {
    let mut acc = [[0.0_f64; JB]; R];
    for kk in 0..k {
        let brow = &b[kk * n + j0..kk * n + j0 + JB];
        for (accr, row) in acc.iter_mut().zip(&rows) {
            let w = row[kk];
            for (a, &v) in accr.iter_mut().zip(brow) {
                *a += w * v;
            }
        }
    }
    acc
}

/// Runs [`dot_tile`] for `R` rows starting at row `i` across all column
/// tiles of width up to [`JR`], storing (not accumulating) into `c`.
#[inline(always)]
fn dot_rows<const R: usize>(i: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    let rows: [&[f64]; R] = std::array::from_fn(|r| &a[(i + r) * k..(i + r + 1) * k]);
    let mut j0 = 0;
    while j0 < n {
        let jb = JR.min(n - j0);
        // Monomorphic tiles keep the accumulator arrays in registers.
        macro_rules! tile {
            ($jb:literal) => {{
                let acc = dot_tile::<R, $jb>(k, n, rows, b, j0);
                for (r, accr) in acc.iter().enumerate() {
                    let dst = (i + r) * n + j0;
                    c[dst..dst + $jb].copy_from_slice(accr);
                }
            }};
        }
        match jb {
            4 => tile!(4),
            3 => tile!(3),
            2 => tile!(2),
            _ => tile!(1),
        }
        j0 += jb;
    }
}

/// The small-matrix fast path: `c = a * b` when the whole RHS is
/// cache-resident (`k <= KC` and `n <= NC`).
///
/// Instead of packing and accumulating through memory, each output
/// element is a register dot product ([`dot_tile`]); four rows by four
/// columns of sums are in flight at once so the serial ascending-`k`
/// chains (required for bit-identical results) overlap. `c` is fully
/// overwritten, so it does not need to be zero-initialized.
fn matmul_kernel_small(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if n == 0 {
        return;
    }
    let mut i = 0;
    while i + MR <= m {
        dot_rows::<MR>(i, k, n, a, b, c);
        i += MR;
    }
    while i < m {
        dot_rows::<1>(i, k, n, a, b, c);
        i += 1;
    }
}

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse type of the `temspc` workspace: observation
/// datasets (`N x M`), PCA loadings (`M x A`) and scores (`N x A`) are all
/// `Matrix` values. It favours clarity over raw BLAS speed, but the matmul
/// kernel is blocked and register-tiled (see [`Matrix::matmul_into`]) and
/// fast enough for the dataset sizes the paper uses (hundreds of
/// thousands of rows, ~50 columns).
///
/// # Example
///
/// ```
/// use temspc_linalg::Matrix;
///
/// let eye = Matrix::identity(3);
/// let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
/// assert_eq!(m.matmul(&eye), m);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a column vector (`n x 1`) from a slice.
    pub fn column_vector(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= nrows()`.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= nrows()`.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        assert!(row < self.rows, "row index out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies column `col` into a new `Vec`.
    ///
    /// Allocates on every call; hot loops should prefer
    /// [`Matrix::col_iter`] or [`Matrix::copy_col_into`].
    ///
    /// # Panics
    ///
    /// Panics if `col >= ncols()`.
    pub fn col(&self, col: usize) -> Vec<f64> {
        self.col_iter(col).collect()
    }

    /// Iterates over column `col` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `col >= ncols()`.
    #[inline]
    pub fn col_iter(&self, col: usize) -> impl Iterator<Item = f64> + '_ {
        assert!(col < self.cols, "column index out of bounds");
        self.data[col..].iter().step_by(self.cols.max(1)).copied()
    }

    /// Copies column `col` into a caller-owned vector (cleared and
    /// refilled; allocation-free once `out` has capacity `nrows()`).
    ///
    /// # Panics
    ///
    /// Panics if `col >= ncols()`.
    pub fn copy_col_into(&self, col: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.col_iter(col));
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major data vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::default();
        self.transpose_into(&mut t);
        t
    }

    /// Writes the transpose of `self` into a caller-owned matrix
    /// (reshaped to `ncols() x nrows()`; allocation-free once warm).
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.rows = self.cols;
        out.cols = self.rows;
        out.data.clear();
        out.data.resize(self.rows * self.cols, 0.0);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.ncols() != rhs.nrows()`; use [`Matrix::try_matmul`]
    /// for a fallible variant.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.try_matmul(rhs).expect("matmul shape mismatch")
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the inner dimensions differ.
    pub fn try_matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix product `self * rhs`, written into a caller-owned matrix.
    ///
    /// `out` is reshaped to `self.nrows() x rhs.ncols()`; once its buffer
    /// has grown to the product size, repeated calls perform no
    /// allocation. This is the scoring hot path: small products (RHS at
    /// most `KC x NC`, the MSPC projection shapes) go through a register
    /// dot-product kernel, larger ones through a blocked kernel that
    /// packs the RHS one cache-sized panel at a time and accumulates four
    /// output rows per pass. Both keep per-element additions in
    /// ascending-`k` order so results are bit-identical to a naive dot
    /// product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the inner dimensions differ.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        out.rows = self.rows;
        out.cols = rhs.cols;
        if self.cols <= KC && rhs.cols <= NC {
            // Small path fully overwrites `out`, so stale contents (from a
            // larger previous product) need no clearing — just resize.
            out.data.resize(self.rows * rhs.cols, 0.0);
            matmul_kernel_small(
                self.rows,
                self.cols,
                rhs.cols,
                &self.data,
                &rhs.data,
                &mut out.data,
            );
        } else {
            out.data.clear();
            out.data.resize(self.rows * rhs.cols, 0.0);
            matmul_kernel(
                self.rows,
                self.cols,
                rhs.cols,
                &self.data,
                &rhs.data,
                &mut out.data,
            );
        }
        Ok(())
    }

    /// Elementwise difference `self - rhs`, written into a caller-owned
    /// matrix (reshaped; allocation-free once warm). One fused pass reads
    /// both operands and writes the result, instead of a copy followed by
    /// an in-place subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn sub_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        out.rows = self.rows;
        out.cols = self.cols;
        out.data.clear();
        out.data
            .extend(self.data.iter().zip(&rhs.data).map(|(&a, &b)| a - b));
        Ok(())
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.ncols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.matvec_into(v, &mut out)
            .expect("matvec shape mismatch");
        out
    }

    /// Matrix-vector product `self * v`, written into a caller-owned
    /// vector (resized to `self.nrows()`; allocation-free once warm).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `v.len() != self.ncols()`.
    pub fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        out.clear();
        out.extend(
            self.iter_rows()
                .map(|row| row.iter().zip(v).map(|(&a, &b)| a * b).sum::<f64>()),
        );
        out.truncate(self.rows);
        Ok(())
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn try_add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn try_sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self` scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * factor).collect(),
        }
    }

    /// Frobenius norm (root of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry; `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Extracts the sub-matrix of the given `rows` and `cols` index sets.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, rows: &[usize], cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), cols.len());
        for (i, &r) in rows.iter().enumerate() {
            for (j, &c) in cols.iter().enumerate() {
                out.set(i, j, self.get(r, c));
            }
        }
        out
    }

    /// Extracts the sub-matrix formed by the given rows (all columns).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Extracts the sub-matrix formed by the given columns (all rows).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, cols: &[usize]) -> Matrix {
        let rows: Vec<usize> = (0..self.rows).collect();
        self.select(&rows, cols)
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Places `self` to the left of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.data[r * out.cols..r * out.cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * out.cols + self.cols..(r + 1) * out.cols].copy_from_slice(other.row(r));
        }
        Ok(out)
    }

    /// Overwrites `self` with the contents of `src`, reusing the existing
    /// buffer where possible (allocation-free once warm).
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Overwrites `self` with a single row, reshaping to `1 x row.len()`
    /// and reusing the existing buffer (allocation-free once warm).
    pub fn copy_from_row(&mut self, row: &[f64]) {
        self.rows = 1;
        self.cols = row.len();
        self.data.clear();
        self.data.extend_from_slice(row);
    }

    /// Creates an empty (`0 x cols`) matrix whose buffer can hold `rows`
    /// rows without reallocating. Pass `cols = 0` to defer the column
    /// count to the first [`Matrix::push_row`].
    pub fn with_capacity(rows: usize, cols: usize) -> Self {
        Matrix {
            rows: 0,
            cols,
            data: Vec::with_capacity(rows * cols.max(1)),
        }
    }

    /// Reserves buffer space for at least `additional` more rows, so a
    /// known-length sequence of [`Matrix::push_row`] calls performs at
    /// most one reallocation instead of a geometric-growth series.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.data.reserve(additional * self.cols.max(1));
    }

    /// Removes all rows, keeping the column count and the allocated
    /// buffer — the reset step of a reusable block buffer.
    pub fn clear_rows(&mut self) {
        self.rows = 0;
        self.data.clear();
    }

    /// Appends a row to the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != ncols()` on a non-empty matrix.
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "push_row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Appends all rows of `other` to `self` in one reserve + copy.
    /// Appending a 0-row matrix is a no-op regardless of column counts.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column counts differ
    /// on a non-empty receiver.
    pub fn append_rows(&mut self, other: &Matrix) -> Result<()> {
        if other.rows == 0 {
            return Ok(());
        }
        if self.rows == 0 && self.cols == 0 {
            self.cols = other.cols;
        }
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
        Ok(())
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks(self.cols.max(1))
    }

    /// Returns `true` if every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:>10.4} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ... ({} more rows)", self.rows - max_rows)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_multiplication_is_neutral() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(Matrix::identity(3).matmul(&m), m);
        assert_eq!(m.matmul(&Matrix::identity(2)), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.try_matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = [5.0, 6.0];
        let got = m.matvec(&v);
        let expect = m.matmul(&Matrix::column_vector(&v));
        assert_eq!(got, expect.col(0));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 4.0]]);
        let b = Matrix::from_rows(&[&[3.0, 3.0], &[-1.0, 2.0]]);
        let sum = a.try_add(&b).unwrap();
        let back = sum.try_sub(&b).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn select_rows_cols() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let sub = m.select(&[0, 2], &[1, 2]);
        assert_eq!(sub, Matrix::from_rows(&[&[2.0, 3.0], &[8.0, 9.0]]));
        assert_eq!(m.select_rows(&[1]), Matrix::from_rows(&[&[4.0, 5.0, 6.0]]));
        let sc = m.select_cols(&[0]);
        assert_eq!(sc.col(0), vec![1.0, 4.0, 7.0]);
    }

    #[test]
    fn stack_operations() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn stack_shape_errors() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(1, 3);
        assert!(a.vstack(&b).is_err());
        let c = Matrix::zeros(2, 2);
        assert!(a.hstack(&c).is_err());
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = Matrix::default();
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_empty_is_zero() {
        assert_eq!(Matrix::default().max_abs(), 0.0);
        assert_eq!(Matrix::from_rows(&[&[-7.0, 2.0]]).max_abs(), 7.0);
    }

    #[test]
    fn diag_constructor() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn display_does_not_panic_and_is_nonempty() {
        let m = Matrix::zeros(20, 2);
        let s = format!("{m}");
        assert!(s.contains("more rows"));
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn get_out_of_bounds_panics() {
        Matrix::zeros(1, 1).get(1, 0);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = Matrix::zeros(1, 2);
        assert!(m.all_finite());
        m.set(0, 1, f64::NAN);
        assert!(!m.all_finite());
    }

    /// Naive triple-loop reference with the same per-element ascending-k
    /// accumulation order as the blocked kernel is expected to preserve.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.nrows(), b.ncols());
        for i in 0..a.nrows() {
            for j in 0..b.ncols() {
                let mut acc = 0.0;
                for k in 0..a.ncols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    fn pseudo_random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 4.0 - 2.0
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
    }

    #[test]
    fn blocked_kernel_bit_identical_to_naive_across_block_boundaries() {
        // Shapes straddle the KC/NC/MR tile edges: remainders in every
        // dimension, plus tall-skinny and short-wide extremes.
        for &(m, k, n) in &[
            (1, 1, 1),
            (4, 64, 64),
            (5, 65, 67),
            (3, 130, 2),
            (70, 53, 12),
            (130, 7, 129),
        ] {
            let a = pseudo_random_matrix(m, k, 11 + m as u64);
            let b = pseudo_random_matrix(k, n, 23 + n as u64);
            let blocked = a.matmul(&b);
            let naive = naive_matmul(&a, &b);
            assert_eq!(
                blocked.as_slice(),
                naive.as_slice(),
                "kernel diverged for {m}x{k} * {k}x{n}"
            );
        }
    }

    #[test]
    fn matmul_into_reuses_and_reshapes_buffer() {
        let a = pseudo_random_matrix(6, 5, 1);
        let b = pseudo_random_matrix(5, 4, 2);
        let mut out = Matrix::zeros(70, 70); // stale, larger shape + garbage-free reuse
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b));
        // Second call with different shapes reuses the same buffer.
        let c = pseudo_random_matrix(2, 6, 3);
        let d = pseudo_random_matrix(6, 3, 4);
        c.matmul_into(&d, &mut out).unwrap();
        assert_eq!(out, c.matmul(&d));
        assert!(c.matmul_into(&b, &mut out).is_err());
    }

    #[test]
    fn matvec_into_matches_matvec() {
        let m = pseudo_random_matrix(7, 3, 9);
        let v = [0.5, -1.5, 2.0];
        let mut out = vec![99.0; 10];
        m.matvec_into(&v, &mut out).unwrap();
        assert_eq!(out, m.matvec(&v));
        assert_eq!(out.len(), 7);
        assert!(m.matvec_into(&[1.0], &mut out).is_err());
    }

    #[test]
    fn transpose_into_matches_transpose() {
        let m = pseudo_random_matrix(5, 8, 7);
        let mut t = Matrix::zeros(2, 2);
        m.transpose_into(&mut t);
        assert_eq!(t, m.transpose());
    }

    #[test]
    fn col_iter_and_copy_col_into_match_col() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.col_iter(1).collect::<Vec<_>>(), m.col(1));
        let mut buf = vec![0.0; 1];
        m.copy_col_into(2, &mut buf);
        assert_eq!(buf, vec![3.0, 6.0]);
    }

    #[test]
    fn with_capacity_and_reserve_avoid_reallocation() {
        let mut m = Matrix::with_capacity(3, 2);
        let cap = m.as_slice().as_ptr();
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        m.push_row(&[5.0, 6.0]);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.as_slice().as_ptr(), cap);

        let mut d = Matrix::default();
        d.push_row(&[1.0]);
        d.reserve_rows(100);
        let ptr = d.as_slice().as_ptr();
        for _ in 0..100 {
            d.push_row(&[0.0]);
        }
        assert_eq!(d.as_slice().as_ptr(), ptr);
    }

    #[test]
    fn append_rows_matches_vstack() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let mut m = a.clone();
        m.append_rows(&b).unwrap();
        assert_eq!(m, a.vstack(&b).unwrap());
        let mut empty = Matrix::default();
        empty.append_rows(&b).unwrap();
        assert_eq!(empty, b);
        assert!(m.append_rows(&Matrix::zeros(1, 3)).is_err());
        // 0-row appends are no-ops even across column counts.
        m.append_rows(&Matrix::zeros(0, 9)).unwrap();
        assert_eq!(m.shape(), (3, 2));
    }
}
