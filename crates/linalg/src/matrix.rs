use serde::{Deserialize, Serialize};

use crate::{LinalgError, Result};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse type of the `temspc` workspace: observation
/// datasets (`N x M`), PCA loadings (`M x A`) and scores (`N x A`) are all
/// `Matrix` values. It favours clarity over raw BLAS speed, but the matmul
/// kernel is cache-friendly (ikj loop order) and fast enough for the
/// dataset sizes the paper uses (hundreds of thousands of rows, ~50
/// columns).
///
/// # Example
///
/// ```
/// use temspc_linalg::Matrix;
///
/// let eye = Matrix::identity(3);
/// let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
/// assert_eq!(m.matmul(&eye), m);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a column vector (`n x 1`) from a slice.
    pub fn column_vector(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= nrows()`.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= nrows()`.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        assert!(row < self.rows, "row index out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies column `col` into a new `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= ncols()`.
    pub fn col(&self, col: usize) -> Vec<f64> {
        assert!(col < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major data vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.ncols() != rhs.nrows()`; use [`Matrix::try_matmul`]
    /// for a fallible variant.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.try_matmul(rhs).expect("matmul shape mismatch")
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the inner dimensions differ.
    pub fn try_matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj order: the inner loop walks contiguous memory of both the
        // output row and the rhs row, which matters for the tall datasets
        // PCA chews through.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.ncols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec shape mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(&a, &b)| a * b).sum::<f64>())
            .collect()
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn try_add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn try_sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self` scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * factor).collect(),
        }
    }

    /// Frobenius norm (root of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry; `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Extracts the sub-matrix of the given `rows` and `cols` index sets.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, rows: &[usize], cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), cols.len());
        for (i, &r) in rows.iter().enumerate() {
            for (j, &c) in cols.iter().enumerate() {
                out.set(i, j, self.get(r, c));
            }
        }
        out
    }

    /// Extracts the sub-matrix formed by the given rows (all columns).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Extracts the sub-matrix formed by the given columns (all rows).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, cols: &[usize]) -> Matrix {
        let rows: Vec<usize> = (0..self.rows).collect();
        self.select(&rows, cols)
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Places `self` to the left of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.data[r * out.cols..r * out.cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * out.cols + self.cols..(r + 1) * out.cols].copy_from_slice(other.row(r));
        }
        Ok(out)
    }

    /// Appends a row to the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != ncols()` on a non-empty matrix.
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "push_row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks(self.cols.max(1))
    }

    /// Returns `true` if every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:>10.4} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ... ({} more rows)", self.rows - max_rows)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_multiplication_is_neutral() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(Matrix::identity(3).matmul(&m), m);
        assert_eq!(m.matmul(&Matrix::identity(2)), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.try_matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = [5.0, 6.0];
        let got = m.matvec(&v);
        let expect = m.matmul(&Matrix::column_vector(&v));
        assert_eq!(got, expect.col(0));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 4.0]]);
        let b = Matrix::from_rows(&[&[3.0, 3.0], &[-1.0, 2.0]]);
        let sum = a.try_add(&b).unwrap();
        let back = sum.try_sub(&b).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn select_rows_cols() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let sub = m.select(&[0, 2], &[1, 2]);
        assert_eq!(sub, Matrix::from_rows(&[&[2.0, 3.0], &[8.0, 9.0]]));
        assert_eq!(m.select_rows(&[1]), Matrix::from_rows(&[&[4.0, 5.0, 6.0]]));
        let sc = m.select_cols(&[0]);
        assert_eq!(sc.col(0), vec![1.0, 4.0, 7.0]);
    }

    #[test]
    fn stack_operations() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn stack_shape_errors() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(1, 3);
        assert!(a.vstack(&b).is_err());
        let c = Matrix::zeros(2, 2);
        assert!(a.hstack(&c).is_err());
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = Matrix::default();
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_empty_is_zero() {
        assert_eq!(Matrix::default().max_abs(), 0.0);
        assert_eq!(Matrix::from_rows(&[&[-7.0, 2.0]]).max_abs(), 7.0);
    }

    #[test]
    fn diag_constructor() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn display_does_not_panic_and_is_nonempty() {
        let m = Matrix::zeros(20, 2);
        let s = format!("{m}");
        assert!(s.contains("more rows"));
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn get_out_of_bounds_panics() {
        Matrix::zeros(1, 1).get(1, 0);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = Matrix::zeros(1, 2);
        assert!(m.all_finite());
        m.set(0, 1, f64::NAN);
        assert!(!m.all_finite());
    }
}
