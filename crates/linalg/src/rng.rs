//! Deterministic random sampling helpers.
//!
//! Every stochastic element in the workspace (plant measurement noise,
//! disturbance random walks, calibration run seeds) draws through
//! [`GaussianSampler`] so experiments are reproducible from a single `u64`
//! seed.

use rand::{RngExt, SeedableRng};

/// A seeded Gaussian/uniform sampler built on `rand`'s `StdRng`.
///
/// Gaussian variates use the Marsaglia polar method with caching, so
/// consecutive calls are cheap and fully determined by the seed.
///
/// # Example
///
/// ```
/// use temspc_linalg::rng::GaussianSampler;
///
/// let mut a = GaussianSampler::seed_from(42);
/// let mut b = GaussianSampler::seed_from(42);
/// assert_eq!(a.next_gaussian(), b.next_gaussian());
/// ```
#[derive(Debug)]
pub struct GaussianSampler {
    rng: rand::rngs::StdRng,
    cached: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        GaussianSampler {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            cached: None,
        }
    }

    /// Draws a standard normal variate (mean 0, variance 1).
    pub fn next_gaussian(&mut self) -> f64 {
        if let Some(v) = self.cached.take() {
            return v;
        }
        // Marsaglia polar method.
        loop {
            let u: f64 = self.rng.random::<f64>() * 2.0 - 1.0;
            let v: f64 = self.rng.random::<f64>() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.cached = Some(v * f);
                return u * f;
            }
        }
    }

    /// Draws a normal variate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `std_dev` is negative.
    pub fn next_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0, "negative standard deviation");
        mean + std_dev * self.next_gaussian()
    }

    /// Draws a uniform variate in `[low, high)`.
    pub fn next_uniform(&mut self, low: f64, high: f64) -> f64 {
        low + (high - low) * self.rng.random::<f64>()
    }

    /// Draws a uniform `u64`, useful for deriving per-run sub-seeds.
    pub fn next_seed(&mut self) -> u64 {
        self.rng.random::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = GaussianSampler::seed_from(7);
        let mut b = GaussianSampler::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_gaussian(), b.next_gaussian());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = GaussianSampler::seed_from(1);
        let mut b = GaussianSampler::seed_from(2);
        let va: Vec<f64> = (0..10).map(|_| a.next_gaussian()).collect();
        let vb: Vec<f64> = (0..10).map(|_| b.next_gaussian()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut s = GaussianSampler::seed_from(123);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| s.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn normal_scaling() {
        let mut s = GaussianSampler::seed_from(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| s.next_normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
    }

    #[test]
    fn uniform_range() {
        let mut s = GaussianSampler::seed_from(5);
        for _ in 0..1000 {
            let v = s.next_uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }
}
