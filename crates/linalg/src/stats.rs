//! Column statistics, covariance and the autoscaling preprocessing used by
//! MSPC calibration.

use serde::{Deserialize, Serialize};

use crate::{LinalgError, Matrix, Result};

/// Arithmetic mean of a slice; `0.0` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample variance (denominator `n - 1`); `0.0` for fewer than 2 values.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// Sample standard deviation (denominator `n - 1`).
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Per-column means of a matrix.
pub fn column_means(x: &Matrix) -> Vec<f64> {
    let (n, m) = x.shape();
    let mut means = vec![0.0; m];
    if n == 0 {
        return means;
    }
    for row in x.iter_rows() {
        for (acc, &v) in means.iter_mut().zip(row) {
            *acc += v;
        }
    }
    for acc in &mut means {
        *acc /= n as f64;
    }
    means
}

/// Per-column sample standard deviations of a matrix.
pub fn column_stds(x: &Matrix) -> Vec<f64> {
    let (n, m) = x.shape();
    if n < 2 {
        return vec![0.0; m];
    }
    let means = column_means(x);
    let mut acc = vec![0.0; m];
    for row in x.iter_rows() {
        for ((a, &v), &mu) in acc.iter_mut().zip(row).zip(&means) {
            let d = v - mu;
            *a += d * d;
        }
    }
    acc.iter().map(|a| (a / (n as f64 - 1.0)).sqrt()).collect()
}

/// Sample covariance matrix (`m x m`) of the columns of `x`.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] if `x` has fewer than 2 rows.
pub fn covariance(x: &Matrix) -> Result<Matrix> {
    let (n, m) = x.shape();
    if n < 2 {
        return Err(LinalgError::Empty);
    }
    let means = column_means(x);
    let mut cov = Matrix::zeros(m, m);
    for row in x.iter_rows() {
        for i in 0..m {
            let di = row[i] - means[i];
            for j in i..m {
                let dj = row[j] - means[j];
                let v = cov.get(i, j) + di * dj;
                cov.set(i, j, v);
            }
        }
    }
    let denom = (n - 1) as f64;
    for i in 0..m {
        for j in i..m {
            let v = cov.get(i, j) / denom;
            cov.set(i, j, v);
            cov.set(j, i, v);
        }
    }
    Ok(cov)
}

/// Pearson correlation matrix of the columns of `x`.
///
/// Columns with (numerically) zero variance yield zero correlation with
/// every other column and unit self-correlation.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] if `x` has fewer than 2 rows.
pub fn correlation(x: &Matrix) -> Result<Matrix> {
    let cov = covariance(x)?;
    let m = cov.nrows();
    let mut corr = Matrix::zeros(m, m);
    for i in 0..m {
        for j in 0..m {
            let denom = (cov.get(i, i) * cov.get(j, j)).sqrt();
            let v = if denom > 1e-300 {
                cov.get(i, j) / denom
            } else if i == j {
                1.0
            } else {
                0.0
            };
            corr.set(i, j, v);
        }
    }
    Ok(corr)
}

/// Empirical percentile (linear interpolation between order statistics,
/// the "type 7" definition used by most statistics packages).
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] on an empty slice or
/// [`LinalgError::Domain`] if `p` is outside `[0, 1]`.
pub fn percentile(values: &[f64], p: f64) -> Result<f64> {
    if values.is_empty() {
        return Err(LinalgError::Empty);
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(LinalgError::Domain {
            what: "percentile requires p in [0, 1]",
        });
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let h = p * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        Ok(sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo]))
    }
}

/// Frozen autoscaling (z-score) parameters learned from calibration data.
///
/// MSPC requires that *new* observations are scaled with the calibration
/// means/stds, never their own — `AutoScaler` freezes those parameters.
/// Columns whose calibration standard deviation is numerically zero are
/// scaled by 1.0 (they carry no variance information but must not produce
/// NaN).
///
/// # Example
///
/// ```
/// use temspc_linalg::{Matrix, stats::AutoScaler};
///
/// let calib = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 30.0], &[2.0, 20.0]]);
/// let scaler = AutoScaler::fit(&calib).unwrap();
/// let scaled = scaler.transform(&calib).unwrap();
/// // Scaled calibration data has (approximately) zero column means.
/// assert!(temspc_linalg::stats::column_means(&scaled)[0].abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl AutoScaler {
    /// Learns means and standard deviations from calibration data.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if `x` has fewer than 2 rows.
    pub fn fit(x: &Matrix) -> Result<Self> {
        Self::fit_with_min_std(x, 0.0)
    }

    /// Like [`AutoScaler::fit`], but with a *relative* floor on the
    /// standard deviation: each column's std is clamped to at least
    /// `min_std_rel * max(|mean|, 1)`.
    ///
    /// With `min_std_rel = 0` a zero-variance column is scaled by 1.0 (it
    /// carries no information). A positive floor instead declares a
    /// smallest *meaningful* relative variation: columns that are
    /// (nearly) constant during calibration then produce large z-scores
    /// as soon as they move — needed for near-deterministic features such
    /// as network update-fractions, where any departure is significant.
    /// The floor scales with the column mean so large-magnitude features
    /// (e.g. byte rates) are not over-sensitized.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if `x` has fewer than 2 rows, or
    /// [`LinalgError::Domain`] if `min_std_rel` is negative.
    pub fn fit_with_min_std(x: &Matrix, min_std_rel: f64) -> Result<Self> {
        if min_std_rel < 0.0 {
            return Err(LinalgError::Domain {
                what: "min_std must be non-negative",
            });
        }
        if x.nrows() < 2 {
            return Err(LinalgError::Empty);
        }
        let means = column_means(x);
        let stds = column_stds(x)
            .into_iter()
            .zip(&means)
            .map(|(s, &mu)| {
                if min_std_rel > 0.0 {
                    s.max(min_std_rel * mu.abs().max(1.0))
                } else if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Ok(AutoScaler { means, stds })
    }

    /// Number of variables the scaler was fitted on.
    pub fn n_variables(&self) -> usize {
        self.means.len()
    }

    /// Frozen column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Frozen column standard deviations (zero-variance columns report 1.0).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Applies the frozen scaling to a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column count differs
    /// from the calibration data.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::default();
        self.transform_into(x, &mut out)?;
        Ok(out)
    }

    /// Applies the frozen scaling to a dataset, writing into a
    /// caller-owned matrix (reshaped to `x`'s shape; allocation-free once
    /// `out`'s buffer has grown to size).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column count differs
    /// from the calibration data.
    pub fn transform_into(&self, x: &Matrix, out: &mut Matrix) -> Result<()> {
        if x.ncols() != self.means.len() {
            return Err(LinalgError::ShapeMismatch {
                left: x.shape(),
                right: (1, self.means.len()),
            });
        }
        out.copy_from(x);
        for r in 0..out.nrows() {
            let row = out.row_mut(r);
            for ((v, &mu), &sd) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                *v = (*v - mu) / sd;
            }
        }
        Ok(())
    }

    /// Applies the frozen scaling to a single observation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the length differs from the
    /// calibration data's column count.
    pub fn transform_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        if row.len() != self.means.len() {
            return Err(LinalgError::ShapeMismatch {
                left: (1, row.len()),
                right: (1, self.means.len()),
            });
        }
        Ok(row
            .iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((&v, &mu), &sd)| (v - mu) / sd)
            .collect())
    }

    /// Undoes the scaling of a single observation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the length differs from the
    /// calibration data's column count.
    pub fn inverse_transform_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        if row.len() != self.means.len() {
            return Err(LinalgError::ShapeMismatch {
                left: (1, row.len()),
                right: (1, self.means.len()),
            });
        }
        Ok(row
            .iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((&v, &mu), &sd)| v * sd + mu)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known_values() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        // Sample variance with n-1 denominator: 32/7.
        assert!((variance(&v) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn column_stats() {
        let x = Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]]);
        assert_eq!(column_means(&x), vec![2.0, 20.0]);
        let stds = column_stds(&x);
        assert!((stds[0] - 1.0).abs() < 1e-12);
        assert!((stds[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_of_perfectly_correlated_columns() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let cov = covariance(&x).unwrap();
        assert!((cov.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((cov.get(0, 1) - 2.0).abs() < 1e-12);
        assert!((cov.get(1, 1) - 4.0).abs() < 1e-12);
        let corr = correlation(&x).unwrap();
        assert!((corr.get(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_constant_column_is_zero() {
        let x = Matrix::from_rows(&[&[1.0, 5.0], &[2.0, 5.0], &[3.0, 5.0]]);
        let corr = correlation(&x).unwrap();
        assert_eq!(corr.get(0, 1), 0.0);
        assert_eq!(corr.get(1, 1), 1.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&v, 1.0).unwrap(), 4.0);
        assert!((percentile(&v, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!(percentile(&[], 0.5).is_err());
        assert!(percentile(&v, 1.5).is_err());
    }

    #[test]
    fn autoscaler_zero_mean_unit_variance() {
        let x = Matrix::from_rows(&[&[1.0, 100.0], &[2.0, 200.0], &[3.0, 300.0], &[4.0, 400.0]]);
        let sc = AutoScaler::fit(&x).unwrap();
        let z = sc.transform(&x).unwrap();
        for c in 0..2 {
            let col = z.col(c);
            assert!(mean(&col).abs() < 1e-12);
            assert!((std_dev(&col) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn autoscaler_constant_column_does_not_nan() {
        let x = Matrix::from_rows(&[&[1.0, 7.0], &[2.0, 7.0], &[3.0, 7.0]]);
        let sc = AutoScaler::fit(&x).unwrap();
        let z = sc.transform(&x).unwrap();
        assert!(z.all_finite());
        assert_eq!(z.get(0, 1), 0.0);
    }

    #[test]
    fn autoscaler_roundtrip_row() {
        let x = Matrix::from_rows(&[&[1.0, -5.0], &[3.0, 5.0], &[2.0, 0.0]]);
        let sc = AutoScaler::fit(&x).unwrap();
        let row = [2.5, 3.0];
        let z = sc.transform_row(&row).unwrap();
        let back = sc.inverse_transform_row(&z).unwrap();
        assert!((back[0] - row[0]).abs() < 1e-12);
        assert!((back[1] - row[1]).abs() < 1e-12);
    }

    #[test]
    fn min_std_floor_amplifies_constant_columns() {
        let x = Matrix::from_rows(&[&[1.0, 7.0], &[2.0, 7.0], &[3.0, 7.0]]);
        let sc = AutoScaler::fit_with_min_std(&x, 0.05).unwrap();
        // The constant column scales by 0.05 * 7 = 0.35: a move to 8.0 is
        // 1/0.35 ≈ 2.857 sigma (relative floor).
        let z = sc.transform_row(&[2.0, 8.0]).unwrap();
        assert!((z[1] - 1.0 / 0.35).abs() < 1e-9, "z = {z:?}");
        // Columns with real variance above the floor keep it.
        assert!((sc.stds()[0] - 1.0).abs() < 1e-9);
        // Negative floors are rejected.
        assert!(AutoScaler::fit_with_min_std(&x, -1.0).is_err());
    }

    #[test]
    fn autoscaler_shape_errors() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let sc = AutoScaler::fit(&x).unwrap();
        assert!(sc.transform_row(&[1.0]).is_err());
        assert!(sc.transform(&Matrix::zeros(2, 3)).is_err());
        assert!(AutoScaler::fit(&Matrix::zeros(1, 2)).is_err());
    }
}
