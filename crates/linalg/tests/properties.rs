//! Property-based tests of the linear-algebra substrate.

use proptest::prelude::*;
use temspc_linalg::decomp::{qr, solve_spd, svd, symmetric_eigen};
use temspc_linalg::dist::{BetaDist, ChiSquared, FisherF, Normal};
use temspc_linalg::stats::{column_means, covariance, percentile, AutoScaler};
use temspc_linalg::Matrix;

fn matrix_strategy(max_n: usize, max_m: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_n, 1..=max_m).prop_flat_map(|(n, m)| {
        prop::collection::vec(-100.0..100.0f64, n * m)
            .prop_map(move |data| Matrix::from_vec(n, m, data))
    })
}

fn symmetric_strategy(max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_n).prop_flat_map(|n| {
        prop::collection::vec(-10.0..10.0f64, n * n).prop_map(move |data| {
            let a = Matrix::from_vec(n, n, data);
            // (A + A^T) / 2 is symmetric.
            a.try_add(&a.transpose()).unwrap().scaled(0.5)
        })
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in matrix_strategy(8, 8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_is_neutral(m in matrix_strategy(8, 8)) {
        let eye = Matrix::identity(m.ncols());
        let prod = m.matmul(&eye);
        for (a, b) in prod.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn matmul_transpose_identity(a in matrix_strategy(6, 6), b in matrix_strategy(6, 6)) {
        // (A B)^T = B^T A^T whenever shapes allow.
        if a.ncols() == b.nrows() {
            let left = a.matmul(&b).transpose();
            let right = b.transpose().matmul(&a.transpose());
            prop_assert!(left.try_sub(&right).unwrap().max_abs() < 1e-8);
        }
    }

    #[test]
    fn frobenius_norm_triangle_inequality(a in matrix_strategy(6, 6)) {
        let b = a.scaled(-0.5);
        let sum = a.try_add(&b).unwrap();
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    }

    #[test]
    fn eigen_reconstructs_symmetric_matrices(a in symmetric_strategy(6)) {
        let e = symmetric_eigen(&a).unwrap();
        let lam = Matrix::from_diag(&e.values);
        let rec = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        prop_assert!(rec.try_sub(&a).unwrap().max_abs() < 1e-7,
            "reconstruction error {}", rec.try_sub(&a).unwrap().max_abs());
    }

    #[test]
    fn eigenvalues_sum_to_trace(a in symmetric_strategy(6)) {
        let e = symmetric_eigen(&a).unwrap();
        let trace: f64 = (0..a.nrows()).map(|i| a.get(i, i)).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-7 * (1.0 + trace.abs()));
    }

    #[test]
    fn svd_reconstructs(m in matrix_strategy(7, 5)) {
        let s = svd(&m).unwrap();
        let rec = s.u.matmul(&Matrix::from_diag(&s.singular_values)).matmul(&s.v.transpose());
        prop_assert!(rec.try_sub(&m).unwrap().max_abs() < 1e-6,
            "reconstruction error {}", rec.try_sub(&m).unwrap().max_abs());
        // Singular values are non-negative and sorted.
        for w in s.singular_values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(s.singular_values.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn qr_reconstructs_and_q_orthogonal(m in matrix_strategy(7, 5)) {
        let f = qr(&m).unwrap();
        let rec = f.q.matmul(&f.r);
        prop_assert!(rec.try_sub(&m).unwrap().max_abs() < 1e-8);
        let qtq = f.q.transpose().matmul(&f.q);
        prop_assert!(qtq.try_sub(&Matrix::identity(m.nrows())).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn spd_solve_satisfies_system(diag in prop::collection::vec(0.5..10.0f64, 2..6)) {
        let n = diag.len();
        // Build an SPD matrix: D + small symmetric perturbation scaled to
        // keep diagonal dominance.
        let mut a = Matrix::from_diag(&diag);
        for i in 0..n {
            for j in 0..i {
                let v = 0.05 * ((i * 7 + j * 3) as f64).sin();
                a.set(i, j, v);
                a.set(j, i, v);
            }
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 1.5).collect();
        let x = solve_spd(&a, &b).unwrap();
        let ax = a.matvec(&x);
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-8);
        }
    }

    #[test]
    fn covariance_is_psd(m in matrix_strategy(12, 5)) {
        if m.nrows() >= 2 {
            let cov = covariance(&m).unwrap();
            let e = symmetric_eigen(&cov).unwrap();
            for &l in &e.values {
                prop_assert!(l > -1e-7, "negative eigenvalue {l}");
            }
        }
    }

    #[test]
    fn autoscaler_roundtrip(m in matrix_strategy(10, 6), row in prop::collection::vec(-50.0..50.0f64, 6)) {
        if m.nrows() >= 2 && m.ncols() == 6 {
            let sc = AutoScaler::fit(&m).unwrap();
            let z = sc.transform_row(&row).unwrap();
            let back = sc.inverse_transform_row(&z).unwrap();
            for (a, b) in back.iter().zip(&row) {
                prop_assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()));
            }
        }
    }

    #[test]
    fn percentile_is_monotone_in_p(v in prop::collection::vec(-100.0..100.0f64, 1..50), p1 in 0.0..1.0f64, p2 in 0.0..1.0f64) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&v, lo).unwrap();
        let b = percentile(&v, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
    }

    #[test]
    fn normal_quantile_inverts_cdf(p in 0.001..0.999f64) {
        let x = Normal.quantile(p).unwrap();
        prop_assert!((Normal.cdf(x) - p).abs() < 1e-8);
    }

    #[test]
    fn chi2_quantile_inverts_cdf(k in 0.5..60.0f64, p in 0.01..0.99f64) {
        let d = ChiSquared::new(k).unwrap();
        let x = d.quantile(p).unwrap();
        prop_assert!((d.cdf(x) - p).abs() < 1e-7);
    }

    #[test]
    fn f_quantile_inverts_cdf(d1 in 1.0..30.0f64, d2 in 1.0..200.0f64, p in 0.05..0.99f64) {
        let d = FisherF::new(d1, d2).unwrap();
        let x = d.quantile(p).unwrap();
        prop_assert!((d.cdf(x) - p).abs() < 1e-7);
    }

    #[test]
    fn beta_quantile_inverts_cdf(a in 0.5..20.0f64, b in 0.5..20.0f64, p in 0.01..0.99f64) {
        let d = BetaDist::new(a, b).unwrap();
        let x = d.quantile(p).unwrap();
        prop_assert!((d.cdf(x) - p).abs() < 1e-6);
    }

    #[test]
    fn column_means_of_centered_data_are_zero(m in matrix_strategy(10, 4)) {
        if m.nrows() >= 2 {
            let sc = AutoScaler::fit(&m).unwrap();
            let z = sc.transform(&m).unwrap();
            for mean in column_means(&z) {
                prop_assert!(mean.abs() < 1e-9, "mean = {mean}");
            }
        }
    }
}
