//! Contribution plots: the classic single-observation diagnosis
//! complement to oMEDA.
//!
//! Where oMEDA diagnoses a *group* of anomalous observations, contribution
//! plots decompose the T² and SPE of a *single* observation into per-
//! variable shares — the traditional MSPC practice (MacGregor & Kourti
//! 1995) that the MEDA line of work refines. Having both lets the
//! monitoring pipeline cross-check its diagnosis.

use temspc_linalg::LinalgError;

use crate::pca::PcaModel;

/// Per-variable contributions to the SPE (Q-statistic) of one raw
/// observation: `c_m = e_m²` with `Σ c_m = SPE`.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] on a length mismatch.
pub fn spe_contributions(model: &PcaModel, raw: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let (_, residual) = model.project(raw)?;
    Ok(residual.iter().map(|e| e * e).collect())
}

/// Per-variable contributions to Hotelling's T² of one raw observation,
/// using the standard decomposition
/// `c_m = z_m · Σ_a (t_a / λ_a) p_{m,a}` (signed; sums to T²).
///
/// Negative contributions are possible (a variable can *reduce* T²); for
/// ranking, use the absolute value.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] on a length mismatch.
pub fn t2_contributions(model: &PcaModel, raw: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let (scores, _) = model.project(raw)?;
    let z = model.scaler().transform_row(raw)?;
    let p = model.loadings();
    let a = model.n_components();
    let m = model.n_variables();
    let mut weights = vec![0.0; m];
    for (c, (&t, &l)) in scores.iter().zip(model.eigenvalues()).enumerate() {
        let w = t / l.max(1e-12);
        for (j, wj) in weights.iter_mut().enumerate() {
            *wj += w * p.get(j, c);
        }
    }
    let _ = a;
    Ok(z.iter().zip(&weights).map(|(&zj, &wj)| zj * wj).collect())
}

/// Index and value of the variable with the largest absolute
/// contribution.
///
/// Returns `None` for an empty vector.
pub fn top_contributor(contributions: &[f64]) -> Option<(usize, f64)> {
    contributions
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::ComponentSelection;
    use crate::statistics::observation_statistics;
    use temspc_linalg::rng::GaussianSampler;
    use temspc_linalg::Matrix;

    fn model() -> PcaModel {
        let mut rng = GaussianSampler::seed_from(41);
        let mut x = Matrix::zeros(600, 4);
        for r in 0..600 {
            let t1 = rng.next_gaussian();
            let t2 = rng.next_gaussian();
            x.set(r, 0, t1 + 0.05 * rng.next_gaussian());
            x.set(r, 1, -t1 + 0.05 * rng.next_gaussian());
            x.set(r, 2, t2 + 0.05 * rng.next_gaussian());
            x.set(r, 3, t1 + t2 + 0.05 * rng.next_gaussian());
        }
        PcaModel::fit(&x, ComponentSelection::Fixed(2)).unwrap()
    }

    #[test]
    fn spe_contributions_sum_to_spe() {
        let m = model();
        let obs = [2.0, 1.5, -1.0, 0.3];
        let contrib = spe_contributions(&m, &obs).unwrap();
        let (_, spe) = observation_statistics(&m, &obs).unwrap();
        let sum: f64 = contrib.iter().sum();
        assert!((sum - spe).abs() < 1e-10, "sum {sum} vs spe {spe}");
        assert!(contrib.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn t2_contributions_sum_to_t2() {
        let m = model();
        let obs = [3.0, -3.0, 1.0, 4.0];
        let contrib = t2_contributions(&m, &obs).unwrap();
        let (t2, _) = observation_statistics(&m, &obs).unwrap();
        let sum: f64 = contrib.iter().sum();
        assert!((sum - t2).abs() < 1e-9, "sum {sum} vs t2 {t2}");
    }

    #[test]
    fn broken_correlation_blames_the_right_variable() {
        let m = model();
        // Normal pattern: x0 = t1, x1 = -t1. Break x1.
        let obs = [2.0, 2.0, 0.0, 2.0];
        let contrib = spe_contributions(&m, &obs).unwrap();
        let (idx, _) = top_contributor(&contrib).unwrap();
        assert!(idx == 0 || idx == 1, "top SPE contributor = {idx}");
    }

    #[test]
    fn in_model_excursion_shows_in_t2_contributions() {
        let m = model();
        // Consistent but extreme along the first latent direction.
        let obs = [6.0, -6.0, 0.0, 6.0];
        let contrib = t2_contributions(&m, &obs).unwrap();
        let (idx, val) = top_contributor(&contrib).unwrap();
        assert!(val.abs() > 1.0);
        assert!(idx != 2, "variable 2 carries no t1 signal");
    }

    #[test]
    fn shape_mismatch_is_error() {
        let m = model();
        assert!(spe_contributions(&m, &[1.0]).is_err());
        assert!(t2_contributions(&m, &[1.0, 2.0, 3.0]).is_err());
        assert!(top_contributor(&[]).is_none());
    }
}
