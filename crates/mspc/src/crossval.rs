//! Cross-validated selection of the PCA component count.
//!
//! The paper (and the MEDA toolbox it uses) selects the number of
//! principal components from calibration data; the standard chemometric
//! criterion is **element-wise k-fold PRESS** (Wold/Camacho "ekf"):
//! for held-out observations, each variable is predicted from the *other*
//! variables through the PCA model (known-data regression), and the
//! squared prediction errors accumulate into PRESS(A). The best A
//! minimizes PRESS; unlike naive row-wise reconstruction error, this
//! criterion increases again when components start fitting noise.

use temspc_linalg::decomp::{cholesky, CholeskyFactor};
use temspc_linalg::stats::AutoScaler;
use temspc_linalg::{LinalgError, Matrix};

use crate::pca::{ComponentSelection, PcaModel};

/// PRESS values per component count (index 0 → A = 1).
#[derive(Debug, Clone, PartialEq)]
pub struct PressCurve {
    /// PRESS(A) for A = 1..=max.
    pub press: Vec<f64>,
}

impl PressCurve {
    /// The component count minimizing PRESS.
    pub fn best_components(&self) -> usize {
        self.press
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i + 1)
            .unwrap_or(1)
    }
}

/// Computes the element-wise k-fold PRESS curve for `1..=max_components`.
///
/// `folds` row-folds are held out in turn; the model is fitted on the
/// remaining rows. For each held-out element `x_ij`, the prediction uses
/// the loadings restricted to the other variables:
/// `t̂ = (P_{-j}ᵀ P_{-j})⁻¹ P_{-j}ᵀ x_{i,-j}`, `x̂_ij = p_jᵀ t̂`.
///
/// # Errors
///
/// * [`LinalgError::Domain`] if `max_components` is 0/too large or
///   `folds < 2`.
/// * [`LinalgError::Empty`] if a training fold would be empty.
pub fn press_cross_validation(
    x: &Matrix,
    max_components: usize,
    folds: usize,
) -> Result<PressCurve, LinalgError> {
    let (n, m) = x.shape();
    if max_components == 0 || max_components >= m {
        return Err(LinalgError::Domain {
            what: "max_components must be in 1..M",
        });
    }
    if folds < 2 || folds > n {
        return Err(LinalgError::Domain {
            what: "folds must be in 2..=N",
        });
    }
    let mut press = vec![0.0; max_components];
    for fold in 0..folds {
        let test_rows: Vec<usize> = (0..n).filter(|i| i % folds == fold).collect();
        let train_rows: Vec<usize> = (0..n).filter(|i| i % folds != fold).collect();
        if train_rows.len() < 2 {
            return Err(LinalgError::Empty);
        }
        let train = x.select_rows(&train_rows);
        let scaler = AutoScaler::fit(&train)?;
        let model = PcaModel::fit(&train, ComponentSelection::Fixed(max_components))?;
        let p = model.loadings();

        // The known-data-regression Gram matrix `P_{-j}ᵀ P_{-j}` depends
        // only on the fold's loadings and on (a, j), not on the held-out
        // observation — build and factor each system once per fold and
        // reuse the factorization for every test row.
        let mut factors: Vec<CholeskyFactor> = Vec::with_capacity(max_components * m);
        for a in 1..=max_components {
            for j in 0..m {
                let mut gram = Matrix::zeros(a, a);
                for r in 0..a {
                    for c in 0..a {
                        let mut v = 0.0;
                        for k in 0..m {
                            if k != j {
                                v += p.get(k, r) * p.get(k, c);
                            }
                        }
                        gram.set(r, c, v);
                    }
                }
                // Regularize the tiny Gram system lightly.
                for r in 0..a {
                    gram.set(r, r, gram.get(r, r) + 1e-9);
                }
                factors.push(cholesky(&gram)?);
            }
        }

        let mut rhs = Vec::with_capacity(max_components);
        let mut t_hat = Vec::with_capacity(max_components);
        for &row in &test_rows {
            let z = scaler.transform_row(x.row(row))?;
            for a in 1..=max_components {
                for j in 0..m {
                    // Known-data regression: scores from all variables
                    // except j, then predict variable j.
                    rhs.clear();
                    rhs.resize(a, 0.0);
                    for (r, rv) in rhs.iter_mut().enumerate() {
                        let mut v = 0.0;
                        for (k, &zk) in z.iter().enumerate() {
                            if k != j {
                                v += p.get(k, r) * zk;
                            }
                        }
                        *rv = v;
                    }
                    factors[(a - 1) * m + j].solve_into(&rhs, &mut t_hat)?;
                    let z_hat: f64 = (0..a).map(|c| p.get(j, c) * t_hat[c]).sum();
                    let e = z[j] - z_hat;
                    press[a - 1] += e * e;
                }
            }
        }
    }
    Ok(PressCurve { press })
}

/// Fits a PCA model with the PRESS-selected component count.
///
/// # Errors
///
/// Propagates [`press_cross_validation`] and [`PcaModel::fit`] errors.
pub fn fit_cross_validated(
    x: &Matrix,
    max_components: usize,
    folds: usize,
) -> Result<(PcaModel, PressCurve), LinalgError> {
    let curve = press_cross_validation(x, max_components, folds)?;
    let a = curve.best_components();
    let model = PcaModel::fit(x, ComponentSelection::Fixed(a))?;
    Ok((model, curve))
}

#[cfg(test)]
mod tests {
    use super::*;
    use temspc_linalg::rng::GaussianSampler;

    /// Data with exactly 2 latent factors + noise across 6 variables.
    fn rank2_data(n: usize, noise: f64, seed: u64) -> Matrix {
        let mut rng = GaussianSampler::seed_from(seed);
        let mut x = Matrix::zeros(n, 6);
        for r in 0..n {
            let t1 = rng.next_gaussian();
            let t2 = rng.next_gaussian();
            let w = [
                (1.0, 0.0),
                (0.8, 0.6),
                (0.0, 1.0),
                (-0.7, 0.7),
                (0.5, -0.5),
                (-1.0, -0.3),
            ];
            for (c, (w1, w2)) in w.iter().enumerate() {
                x.set(r, c, w1 * t1 + w2 * t2 + noise * rng.next_gaussian());
            }
        }
        x
    }

    #[test]
    fn press_recovers_the_true_rank() {
        let x = rank2_data(400, 0.15, 1);
        let curve = press_cross_validation(&x, 5, 5).unwrap();
        let best = curve.best_components();
        assert!(
            (2..=3).contains(&best),
            "best = {best}, PRESS = {:?}",
            curve.press
        );
        // PRESS must drop sharply from A=1 to A=2 and then flatten/rise.
        assert!(curve.press[1] < 0.7 * curve.press[0]);
    }

    #[test]
    fn fit_cross_validated_returns_consistent_model() {
        let x = rank2_data(300, 0.1, 2);
        let (model, curve) = fit_cross_validated(&x, 5, 4).unwrap();
        assert_eq!(model.n_components(), curve.best_components());
    }

    #[test]
    fn rejects_bad_parameters() {
        let x = rank2_data(50, 0.1, 3);
        assert!(press_cross_validation(&x, 0, 5).is_err());
        assert!(press_cross_validation(&x, 6, 5).is_err());
        assert!(press_cross_validation(&x, 3, 1).is_err());
        assert!(press_cross_validation(&x, 3, 51).is_err());
    }

    #[test]
    fn press_is_positive_and_finite() {
        let x = rank2_data(120, 0.3, 4);
        let curve = press_cross_validation(&x, 4, 4).unwrap();
        for (i, &p) in curve.press.iter().enumerate() {
            assert!(p.is_finite() && p > 0.0, "PRESS[{i}] = {p}");
        }
    }
}
