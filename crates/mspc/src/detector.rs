//! Anomaly detection on the control charts: the paper's
//! 3-consecutive-over-99 % rule and run-length accounting.

use serde::{Deserialize, Serialize};

use crate::limits::ControlLimits;

/// Detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Number of consecutive 99 %-limit violations that flags an event
    /// (the paper uses 3).
    pub consecutive: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig { consecutive: 3 }
    }
}

/// A flagged anomalous event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnomalousEvent {
    /// Index of the first observation of the violating streak.
    pub first_violation: usize,
    /// Index of the observation at which the streak reached the
    /// `consecutive` threshold (the detection instant).
    pub detected_at: usize,
    /// Hour of the first violation.
    pub first_violation_hour: f64,
    /// Hour of detection.
    pub detected_hour: f64,
    /// Whether the T² chart was violating at detection.
    pub t2_violating: bool,
    /// Whether the SPE chart was violating at detection.
    pub spe_violating: bool,
}

impl AnomalousEvent {
    /// Run length from an anomaly onset at `onset_hour` to detection,
    /// in hours. This is what the paper averages into the ARL.
    pub fn run_length(&self, onset_hour: f64) -> f64 {
        self.detected_hour - onset_hour
    }
}

/// Streaming 3-consecutive detector over a (T², SPE) chart pair.
///
/// Feed one observation per sample with [`ConsecutiveDetector::update`];
/// the first time the streak reaches the threshold an
/// [`AnomalousEvent`] is returned (and the detector keeps counting — use
/// [`ConsecutiveDetector::events`] for the full list, where consecutive
/// violating stretches produce one event each).
#[derive(Debug, Clone)]
pub struct ConsecutiveDetector {
    config: DetectorConfig,
    limits: ControlLimits,
    streak: usize,
    streak_start: Option<(usize, f64)>,
    index: usize,
    in_event: bool,
    events: Vec<AnomalousEvent>,
}

impl ConsecutiveDetector {
    /// Creates a detector for the given limits.
    pub fn new(limits: ControlLimits, config: DetectorConfig) -> Self {
        ConsecutiveDetector {
            config,
            limits,
            streak: 0,
            streak_start: None,
            index: 0,
            in_event: false,
            events: Vec::new(),
        }
    }

    /// The control limits in use.
    pub fn limits(&self) -> &ControlLimits {
        &self.limits
    }

    /// Feeds one observation; returns a new event exactly when the streak
    /// first reaches the configured length.
    pub fn update(&mut self, hour: f64, t2: f64, spe: f64) -> Option<AnomalousEvent> {
        let violating = self.limits.violates_99(t2, spe);
        let mut new_event = None;
        if violating {
            if self.streak == 0 {
                self.streak_start = Some((self.index, hour));
            }
            self.streak += 1;
            if self.streak == self.config.consecutive && !self.in_event {
                let (first_idx, first_hour) = self.streak_start.expect("streak started");
                let event = AnomalousEvent {
                    first_violation: first_idx,
                    detected_at: self.index,
                    first_violation_hour: first_hour,
                    detected_hour: hour,
                    t2_violating: t2 > self.limits.t2_99,
                    spe_violating: spe > self.limits.spe_99,
                };
                self.events.push(event);
                self.in_event = true;
                new_event = Some(event);
            }
        } else {
            self.streak = 0;
            self.streak_start = None;
            self.in_event = false;
        }
        self.index += 1;
        new_event
    }

    /// All events flagged so far.
    pub fn events(&self) -> &[AnomalousEvent] {
        &self.events
    }

    /// The first flagged event, if any.
    pub fn first_event(&self) -> Option<&AnomalousEvent> {
        self.events.first()
    }

    /// Number of observations processed.
    pub fn observations_seen(&self) -> usize {
        self.index
    }
}

/// Average Run Length across several runs' detections: mean of
/// `detected_hour - onset_hour`, ignoring runs with no detection.
///
/// Returns `None` if no run detected anything.
pub fn average_run_length(events: &[Option<AnomalousEvent>], onset_hour: f64) -> Option<f64> {
    let detected: Vec<f64> = events
        .iter()
        .flatten()
        .map(|e| e.run_length(onset_hour))
        .collect();
    if detected.is_empty() {
        None
    } else {
        Some(detected.iter().sum::<f64>() / detected.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> ControlLimits {
        ControlLimits {
            t2_95: 5.0,
            t2_99: 10.0,
            spe_95: 0.5,
            spe_99: 1.0,
        }
    }

    #[test]
    fn three_consecutive_violations_flag_event() {
        let mut d = ConsecutiveDetector::new(limits(), DetectorConfig::default());
        assert!(d.update(0.0, 1.0, 0.1).is_none());
        assert!(d.update(0.1, 11.0, 0.1).is_none());
        assert!(d.update(0.2, 12.0, 0.1).is_none());
        let e = d.update(0.3, 13.0, 0.1).expect("event");
        assert_eq!(e.first_violation, 1);
        assert_eq!(e.detected_at, 3);
        assert!(e.t2_violating);
        assert!(!e.spe_violating);
        assert!((e.run_length(0.0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn interrupted_streak_does_not_flag() {
        let mut d = ConsecutiveDetector::new(limits(), DetectorConfig::default());
        for k in 0..50 {
            // Violate twice, then go quiet, repeatedly.
            let t2 = if k % 3 == 2 { 1.0 } else { 20.0 };
            assert!(d.update(k as f64 * 0.1, t2, 0.0).is_none(), "k = {k}");
        }
        assert!(d.events().is_empty());
    }

    #[test]
    fn spe_chart_alone_can_flag() {
        let mut d = ConsecutiveDetector::new(limits(), DetectorConfig::default());
        d.update(0.0, 0.0, 2.0);
        d.update(0.1, 0.0, 2.0);
        let e = d.update(0.2, 0.0, 2.0).expect("event");
        assert!(e.spe_violating && !e.t2_violating);
    }

    #[test]
    fn one_event_per_violating_stretch() {
        let mut d = ConsecutiveDetector::new(limits(), DetectorConfig::default());
        for k in 0..10 {
            d.update(k as f64, 20.0, 0.0);
        }
        assert_eq!(d.events().len(), 1);
        // Recover, then violate again: second event.
        d.update(10.0, 0.0, 0.0);
        for k in 11..15 {
            d.update(k as f64, 20.0, 0.0);
        }
        assert_eq!(d.events().len(), 2);
    }

    #[test]
    fn custom_consecutive_threshold() {
        let mut d = ConsecutiveDetector::new(limits(), DetectorConfig { consecutive: 1 });
        assert!(d.update(0.0, 20.0, 0.0).is_some());
    }

    #[test]
    fn average_run_length_ignores_missed_runs() {
        let e1 = AnomalousEvent {
            first_violation: 0,
            detected_at: 2,
            first_violation_hour: 10.0,
            detected_hour: 10.2,
            t2_violating: true,
            spe_violating: false,
        };
        let e2 = AnomalousEvent {
            detected_hour: 10.6,
            ..e1
        };
        let arl = average_run_length(&[Some(e1), None, Some(e2)], 10.0).unwrap();
        assert!((arl - 0.4).abs() < 1e-12);
        assert!(average_run_length(&[None, None], 10.0).is_none());
    }
}
