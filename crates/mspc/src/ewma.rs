//! EWMA-filtered MSPC charts: a classic sensitivity extension for slow
//! drifts.
//!
//! The paper's DoS scenario is detected late because a frozen actuator
//! only drifts away from plant consistency slowly — individual samples
//! barely violate the Shewhart-style limits. EWMA (exponentially weighted
//! moving average) charts accumulate small persistent shifts: the
//! statistic `S_k = λ x_k + (1-λ) S_{k-1}` is compared against limits
//! shrunk by the EWMA variance factor `λ/(2-λ)`.
//!
//! [`EwmaChart`] wraps a T²/SPE stream; the ablation experiment
//! (`temspc::experiments`-adjacent bench) shows its effect on DoS run
//! lengths.

use serde::{Deserialize, Serialize};

/// An EWMA filter over a scalar statistic with variance-adjusted limits.
///
/// For an i.i.d.-ish statistic with (upper) control limit `L`, the
/// steady-state EWMA control limit is approximately
/// `mean + (L - mean) * sqrt(lambda / (2 - lambda))`. We track the
/// calibration mean explicitly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EwmaChart {
    lambda: f64,
    mean: f64,
    filtered_limit: f64,
    state: Option<f64>,
}

impl EwmaChart {
    /// Creates an EWMA chart for a statistic with calibration `mean` and
    /// raw (Shewhart) control `limit`; the filtered limit is derived with
    /// the steady-state variance factor `sqrt(lambda / (2 - lambda))`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is outside `(0, 1]`.
    pub fn new(lambda: f64, mean: f64, limit: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda <= 1.0,
            "EWMA lambda must be in (0, 1]"
        );
        let filtered_limit = mean + (limit - mean) * (lambda / (2.0 - lambda)).sqrt();
        EwmaChart {
            lambda,
            mean,
            filtered_limit,
            state: None,
        }
    }

    /// Creates an EWMA chart with an explicit limit on the *filtered*
    /// statistic — use when the limit was derived empirically (e.g. a
    /// percentile of the EWMA-filtered calibration series), which is more
    /// robust than the variance-factor approximation for autocorrelated
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is outside `(0, 1]`.
    pub fn with_filtered_limit(lambda: f64, mean: f64, filtered_limit: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda <= 1.0,
            "EWMA lambda must be in (0, 1]"
        );
        EwmaChart {
            lambda,
            mean,
            filtered_limit,
            state: None,
        }
    }

    /// Runs the filter over a calibration series and returns the
    /// `(mean, q)`-quantile of the filtered values — the empirical way to
    /// set the filtered limit.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is outside `(0, 1]`, the series is empty, or
    /// `q` is outside `[0, 1]`.
    pub fn calibrate_filtered_limit(lambda: f64, series: &[f64], q: f64) -> (f64, f64) {
        assert!(!series.is_empty(), "calibration series must be non-empty");
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        let mut chart = EwmaChart::with_filtered_limit(lambda, mean, f64::INFINITY);
        let filtered: Vec<f64> = series.iter().map(|&v| chart.update(v)).collect();
        let limit = temspc_linalg::stats::percentile(&filtered, q)
            .expect("non-empty series, q validated by percentile");
        (mean, limit)
    }

    /// The effective control limit on the filtered statistic.
    pub fn limit(&self) -> f64 {
        self.filtered_limit
    }

    /// Feeds one raw statistic value; returns the filtered value.
    pub fn update(&mut self, value: f64) -> f64 {
        let s = match self.state {
            Some(prev) => self.lambda * value + (1.0 - self.lambda) * prev,
            None => self.mean + self.lambda * (value - self.mean),
        };
        self.state = Some(s);
        s
    }

    /// Feeds one value and reports whether the filtered statistic exceeds
    /// the EWMA limit.
    pub fn update_and_check(&mut self, value: f64) -> bool {
        self.update(value) > self.limit()
    }

    /// Current filtered value (calibration mean before any update).
    pub fn value(&self) -> f64 {
        self.state.unwrap_or(self.mean)
    }

    /// Resets the filter state.
    pub fn reset(&mut self) {
        self.state = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temspc_linalg::rng::GaussianSampler;

    #[test]
    fn lambda_one_is_shewhart() {
        let mut chart = EwmaChart::new(1.0, 1.0, 5.0);
        assert!((chart.limit() - 5.0).abs() < 1e-12);
        assert_eq!(chart.update(3.0), 3.0);
        assert_eq!(chart.update(7.0), 7.0);
    }

    #[test]
    fn small_lambda_shrinks_the_limit() {
        let chart = EwmaChart::new(0.1, 1.0, 5.0);
        // sqrt(0.1/1.9) = 0.229 -> limit = 1 + 4*0.229 = 1.917.
        assert!((chart.limit() - 1.917).abs() < 0.01);
    }

    #[test]
    fn empirical_filtered_limit_bounds_calibration() {
        let mut rng = GaussianSampler::seed_from(77);
        let series: Vec<f64> = (0..5000).map(|_| 2.0 + rng.next_gaussian()).collect();
        let (mean, limit) = EwmaChart::calibrate_filtered_limit(0.05, &series, 0.99);
        assert!((mean - 2.0).abs() < 0.1);
        // Replaying the same series: ~1 % of filtered values exceed.
        let mut chart = EwmaChart::with_filtered_limit(0.05, mean, limit);
        let exceed = series.iter().filter(|&&v| chart.update(v) > limit).count();
        let rate = exceed as f64 / series.len() as f64;
        assert!((0.002..0.03).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn detects_small_persistent_shift_faster_than_shewhart() {
        // Statistic ~ N(1, 1) normally; shifts to N(2.2, 1): rarely above
        // the Shewhart limit of 5, but persistently above the EWMA limit.
        let mut rng = GaussianSampler::seed_from(9);
        let mut ewma = EwmaChart::new(0.05, 1.0, 5.0);
        let mut shewhart_hits = 0;
        let mut ewma_first_hit = None;
        for k in 0..2000 {
            let v = 2.2 + rng.next_gaussian();
            if v > 5.0 {
                shewhart_hits += 1;
            }
            if ewma.update_and_check(v) && ewma_first_hit.is_none() {
                ewma_first_hit = Some(k);
            }
        }
        let first = ewma_first_hit.expect("EWMA must flag the shift");
        assert!(first < 100, "EWMA first hit at {first}");
        // Shewhart sees only sporadic exceedances (never 3 consecutive,
        // statistically), EWMA locks on.
        assert!(shewhart_hits < 100);
    }

    #[test]
    fn no_false_lockon_under_null() {
        let mut rng = GaussianSampler::seed_from(10);
        let mut ewma = EwmaChart::new(0.05, 1.0, 5.0);
        let mut hits = 0;
        for _ in 0..5000 {
            let v = 1.0 + rng.next_gaussian();
            if ewma.update_and_check(v) {
                hits += 1;
            }
        }
        // Some exceedances are expected but no persistent lock-on.
        assert!(hits < 250, "null exceedances = {hits}");
    }

    #[test]
    fn reset_restores_mean() {
        let mut chart = EwmaChart::new(0.2, 2.0, 8.0);
        chart.update(100.0);
        assert!(chart.value() > 2.0);
        chart.reset();
        assert_eq!(chart.value(), 2.0);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn zero_lambda_panics() {
        EwmaChart::new(0.0, 0.0, 1.0);
    }
}
