//! A Gaussian-mixture-model anomaly detector — the baseline of Kiss,
//! Genge & Haller (INDIN 2015), which the paper's related-work section
//! critiques: it clusters sensor-level observations and flags low-density
//! points, but "only considers attacks as possible factors for abnormal
//! situations", so a process disturbance and an attack with the same
//! sensor signature are indistinguishable.
//!
//! Implemented from scratch: k-means++ initialization and EM with
//! diagonal covariances on autoscaled data; anomaly score = negative
//! log-likelihood; the control limit is an empirical percentile of the
//! calibration scores, mirroring the MSPC pipeline so the two detectors
//! are compared on equal footing (see the TAB5 experiment in `temspc`).

use serde::{Deserialize, Serialize};
use temspc_linalg::rng::GaussianSampler;
use temspc_linalg::stats::{percentile, AutoScaler};
use temspc_linalg::{LinalgError, Matrix};

/// Configuration of a GMM fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GmmConfig {
    /// Number of mixture components.
    pub components: usize,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on the mean log-likelihood improvement.
    pub tolerance: f64,
    /// RNG seed for the k-means++ initialization.
    pub seed: u64,
}

impl Default for GmmConfig {
    fn default() -> Self {
        GmmConfig {
            components: 4,
            max_iters: 100,
            tolerance: 1e-6,
            seed: 7,
        }
    }
}

/// A fitted diagonal-covariance Gaussian mixture with an anomaly limit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GmmModel {
    scaler: AutoScaler,
    /// Component weights (sum to 1).
    weights: Vec<f64>,
    /// Component means (k x m, scaled space).
    means: Matrix,
    /// Component variances (k x m, scaled space).
    variances: Matrix,
    /// 99th-percentile anomaly score (negative log-likelihood) of the
    /// calibration data.
    score_99: f64,
    /// 95th-percentile anomaly score.
    score_95: f64,
}

const LN_2PI: f64 = 1.837_877_066_409_345_5;
/// Variance floor in scaled space (prevents singular components).
const VAR_FLOOR: f64 = 1e-4;

impl GmmModel {
    /// Fits the mixture on calibration data (rows = observations).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for insufficient data or
    /// [`LinalgError::Domain`] for a bad component count.
    pub fn fit(x: &Matrix, config: GmmConfig) -> Result<Self, LinalgError> {
        let n = x.nrows();
        let m = x.ncols();
        let k = config.components;
        if k == 0 || k > n / 2 {
            return Err(LinalgError::Domain {
                what: "component count must be in 1..=n/2",
            });
        }
        let scaler = AutoScaler::fit(x)?;
        let z = scaler.transform(x)?;
        let mut rng = GaussianSampler::seed_from(config.seed);

        // k-means++ initialization on the scaled data.
        let mut means = Matrix::zeros(k, m);
        let first = (rng.next_uniform(0.0, n as f64) as usize).min(n - 1);
        means.row_mut(0).copy_from_slice(z.row(first));
        let mut d2 = vec![f64::INFINITY; n];
        for c in 1..k {
            for (i, d) in d2.iter_mut().enumerate() {
                let dist: f64 = z
                    .row(i)
                    .iter()
                    .zip(means.row(c - 1))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                *d = d.min(dist);
            }
            let total: f64 = d2.iter().sum();
            let mut pick = rng.next_uniform(0.0, total.max(1e-300));
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                pick -= d;
                if pick <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            means.row_mut(c).copy_from_slice(z.row(chosen));
        }
        let mut weights = vec![1.0 / k as f64; k];
        let mut variances = Matrix::filled(k, m, 1.0);

        // EM.
        let mut resp = Matrix::zeros(n, k);
        let mut last_ll = f64::NEG_INFINITY;
        for _ in 0..config.max_iters {
            // E step.
            let mut total_ll = 0.0;
            for i in 0..n {
                let mut logp = vec![0.0; k];
                for (c, lp) in logp.iter_mut().enumerate() {
                    *lp = weights[c].max(1e-300).ln()
                        + log_gaussian_diag(z.row(i), means.row(c), variances.row(c));
                }
                let mx = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let sum_exp: f64 = logp.iter().map(|l| (l - mx).exp()).sum();
                let log_norm = mx + sum_exp.ln();
                total_ll += log_norm;
                for (c, &lp) in logp.iter().enumerate() {
                    resp.set(i, c, (lp - log_norm).exp());
                }
            }
            // M step.
            for (c, wc) in weights.iter_mut().enumerate() {
                let nk: f64 = (0..n).map(|i| resp.get(i, c)).sum();
                let nk_safe = nk.max(1e-12);
                *wc = nk / n as f64;
                for j in 0..m {
                    let mu: f64 =
                        (0..n).map(|i| resp.get(i, c) * z.get(i, j)).sum::<f64>() / nk_safe;
                    means.set(c, j, mu);
                }
                for j in 0..m {
                    let mu = means.get(c, j);
                    let var: f64 = (0..n)
                        .map(|i| {
                            let d = z.get(i, j) - mu;
                            resp.get(i, c) * d * d
                        })
                        .sum::<f64>()
                        / nk_safe;
                    variances.set(c, j, var.max(VAR_FLOOR));
                }
            }
            let mean_ll = total_ll / n as f64;
            if (mean_ll - last_ll).abs() < config.tolerance {
                break;
            }
            last_ll = mean_ll;
        }

        let mut model = GmmModel {
            scaler,
            weights,
            means,
            variances,
            score_99: f64::INFINITY,
            score_95: f64::INFINITY,
        };
        let scores: Vec<f64> = (0..n).map(|i| model.score_scaled(z.row(i))).collect();
        model.score_99 = percentile(&scores, 0.99)?;
        model.score_95 = percentile(&scores, 0.95)?;
        Ok(model)
    }

    /// Number of mixture components.
    pub fn n_components(&self) -> usize {
        self.weights.len()
    }

    /// The 99 % anomaly-score limit.
    pub fn limit_99(&self) -> f64 {
        self.score_99
    }

    /// The 95 % anomaly-score limit.
    pub fn limit_95(&self) -> f64 {
        self.score_95
    }

    /// Anomaly score (negative mean log-likelihood) of a raw observation;
    /// higher = more anomalous.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on a length mismatch.
    pub fn score(&self, raw: &[f64]) -> Result<f64, LinalgError> {
        let z = self.scaler.transform_row(raw)?;
        Ok(self.score_scaled(&z))
    }

    fn score_scaled(&self, z: &[f64]) -> f64 {
        let k = self.n_components();
        let mut logp = vec![0.0; k];
        for (c, lp) in logp.iter_mut().enumerate() {
            *lp = self.weights[c].max(1e-300).ln()
                + log_gaussian_diag(z, self.means.row(c), self.variances.row(c));
        }
        let mx = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let ll = mx + logp.iter().map(|l| (l - mx).exp()).sum::<f64>().ln();
        -ll
    }

    /// Whether an observation violates the 99 % limit.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on a length mismatch.
    pub fn is_violation_99(&self, raw: &[f64]) -> Result<bool, LinalgError> {
        Ok(self.score(raw)? > self.score_99)
    }
}

fn log_gaussian_diag(x: &[f64], mean: &[f64], var: &[f64]) -> f64 {
    let mut ll = 0.0;
    for ((&xi, &mu), &v) in x.iter().zip(mean).zip(var) {
        let v = v.max(VAR_FLOOR);
        let d = xi - mu;
        ll += -0.5 * (LN_2PI + v.ln() + d * d / v);
    }
    ll
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated clusters.
    fn two_cluster_data(n: usize, seed: u64) -> Matrix {
        let mut rng = GaussianSampler::seed_from(seed);
        let mut x = Matrix::zeros(n, 3);
        for r in 0..n {
            let (cx, cy) = if r % 2 == 0 { (5.0, 5.0) } else { (-5.0, -5.0) };
            x.set(r, 0, cx + 0.3 * rng.next_gaussian());
            x.set(r, 1, cy + 0.3 * rng.next_gaussian());
            x.set(r, 2, 0.3 * rng.next_gaussian());
        }
        x
    }

    #[test]
    fn fits_two_clusters_and_scores_them_low() {
        let x = two_cluster_data(400, 1);
        let model = GmmModel::fit(
            &x,
            GmmConfig {
                components: 2,
                ..GmmConfig::default()
            },
        )
        .unwrap();
        // In-cluster points score below the limit; a point between the
        // clusters scores far above.
        assert!(!model.is_violation_99(&[5.0, 5.0, 0.0]).unwrap());
        assert!(!model.is_violation_99(&[-5.0, -5.0, 0.0]).unwrap());
        assert!(model.is_violation_99(&[0.0, 0.0, 5.0]).unwrap());
    }

    #[test]
    fn calibration_exceedance_is_about_one_percent() {
        let x = two_cluster_data(1000, 2);
        let model = GmmModel::fit(
            &x,
            GmmConfig {
                components: 2,
                ..GmmConfig::default()
            },
        )
        .unwrap();
        let exceed = (0..x.nrows())
            .filter(|&i| model.is_violation_99(x.row(i)).unwrap())
            .count();
        let rate = exceed as f64 / x.nrows() as f64;
        assert!((0.002..0.03).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn weights_sum_to_one() {
        let x = two_cluster_data(300, 3);
        let model = GmmModel::fit(
            &x,
            GmmConfig {
                components: 3,
                ..GmmConfig::default()
            },
        )
        .unwrap();
        let sum: f64 = model.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(model.n_components(), 3);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let x = two_cluster_data(200, 4);
        let cfg = GmmConfig {
            components: 2,
            ..GmmConfig::default()
        };
        let a = GmmModel::fit(&x, cfg).unwrap();
        let b = GmmModel::fit(&x, cfg).unwrap();
        assert_eq!(
            a.score(&[1.0, 2.0, 3.0]).unwrap(),
            b.score(&[1.0, 2.0, 3.0]).unwrap()
        );
    }

    #[test]
    fn rejects_bad_component_counts() {
        let x = two_cluster_data(20, 5);
        assert!(GmmModel::fit(
            &x,
            GmmConfig {
                components: 0,
                ..GmmConfig::default()
            }
        )
        .is_err());
        assert!(GmmModel::fit(
            &x,
            GmmConfig {
                components: 15,
                ..GmmConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn score_is_monotone_in_distance_from_cluster() {
        let x = two_cluster_data(400, 6);
        let model = GmmModel::fit(
            &x,
            GmmConfig {
                components: 2,
                ..GmmConfig::default()
            },
        )
        .unwrap();
        let near = model.score(&[5.0, 5.0, 0.0]).unwrap();
        let mid = model.score(&[7.0, 7.0, 0.0]).unwrap();
        let far = model.score(&[12.0, 12.0, 0.0]).unwrap();
        assert!(near < mid && mid < far, "{near} {mid} {far}");
    }
}
