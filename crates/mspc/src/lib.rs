//! PCA-based Multivariate Statistical Process Control (MSPC) with anomaly
//! diagnosis — the core technique of the DSN 2016 paper.
//!
//! The pipeline, following MacGregor & Kourti (1995) and the MEDA toolbox
//! (Camacho et al. 2015):
//!
//! 1. **Calibration**: autoscale `N x M` normal-operation data, fit a PCA
//!    model with `A` principal components ([`pca`]).
//! 2. **Monitoring statistics**: for every observation compute the
//!    **D-statistic** (Hotelling's T², scores) and the **Q-statistic**
//!    (SPE, residuals) ([`statistics`]).
//! 3. **Control limits**: 95 % and 99 % limits for both charts, from the
//!    F distribution (D) and the Jackson–Mudholkar / Box approximations
//!    (Q), or empirically from calibration percentiles ([`limits`]).
//! 4. **Detection**: an anomalous event is flagged when **3 consecutive
//!    observations** exceed the 99 % limit in either chart
//!    ([`detector`]); the detection delay is the Average Run Length (ARL).
//! 5. **Diagnosis**: **oMEDA** bar plots ([`omeda()`]) relate the anomalous
//!    observations back to the original variables.
//!
//! The high-level entry point is [`MspcModel`].
//!
//! # Example
//!
//! ```
//! use temspc_linalg::Matrix;
//! use temspc_mspc::{MspcModel, MspcConfig};
//!
//! // Calibrate on (synthetic) normal operation: two correlated variables.
//! let mut rows = Vec::new();
//! for k in 0..500 {
//!     let t = (k as f64 * 0.7).sin();
//!     rows.push(vec![t + 0.01 * (k as f64).cos(), 2.0 * t]);
//! }
//! let calib = Matrix::from_vec(500, 2, rows.concat());
//! let model = MspcModel::fit(&calib, MspcConfig::default()).unwrap();
//!
//! // A clearly abnormal observation violates the model.
//! let scores = model.score(&[10.0, -20.0]).unwrap();
//! assert!(scores.spe > model.limits().spe_99 || scores.t2 > model.limits().t2_99);
//! ```

#![warn(missing_docs)]

pub mod contribution;
pub mod crossval;
pub mod detector;
pub mod ewma;
pub mod gmm;
pub mod limits;
pub mod meda;
mod model;
pub mod omeda;
pub mod pca;
pub mod statistics;

pub use detector::{AnomalousEvent, ConsecutiveDetector, DetectorConfig};
pub use ewma::EwmaChart;
pub use limits::ControlLimits;
pub use model::{MspcConfig, MspcError, MspcModel, ObservationScore};
pub use omeda::{omeda, omeda_with};
pub use pca::PcaModel;
pub use statistics::ScoreScratch;
