//! Control limits for the D (T²) and Q (SPE) charts at 95 % and 99 %
//! confidence.
//!
//! Two derivations are provided:
//!
//! * **Theoretical** — T² limits from the F distribution (phase II form),
//!   SPE limits from Jackson & Mudholkar (1979) with a Box weighted-χ²
//!   fallback;
//! * **Empirical** — percentiles of the calibration statistics, which is
//!   what practitioners (and the MEDA toolbox) often use when the
//!   normality assumptions are shaky.

use serde::{Deserialize, Serialize};
use temspc_linalg::dist::{ChiSquared, FisherF, Normal};
use temspc_linalg::stats::percentile;
use temspc_linalg::{LinalgError, Result};

/// How the control limits are derived from calibration data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LimitMethod {
    /// F-distribution (T²) and Jackson–Mudholkar (SPE) theory.
    Theoretical,
    /// Percentiles of the calibration statistic values.
    #[default]
    Empirical,
}

/// The four control limits of a dual MSPC chart pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlLimits {
    /// 95 % limit of the D-statistic (T²) chart.
    pub t2_95: f64,
    /// 99 % limit of the D-statistic (T²) chart.
    pub t2_99: f64,
    /// 95 % limit of the Q-statistic (SPE) chart.
    pub spe_95: f64,
    /// 99 % limit of the Q-statistic (SPE) chart.
    pub spe_99: f64,
}

impl ControlLimits {
    /// Theoretical T² limit for *new* observations (phase II):
    /// `A (N² - 1) / (N (N - A)) * F_α(A, N - A)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Domain`] if `n <= a`.
    pub fn t2_theoretical(n: usize, a: usize, alpha: f64) -> Result<f64> {
        if n <= a {
            return Err(LinalgError::Domain {
                what: "T2 limit requires more calibration observations than components",
            });
        }
        let (nf, af) = (n as f64, a as f64);
        let f = FisherF::new(af, nf - af)?.quantile(alpha)?;
        Ok(af * (nf * nf - 1.0) / (nf * (nf - af)) * f)
    }

    /// Theoretical SPE limit via Jackson–Mudholkar, falling back to Box's
    /// weighted-χ² approximation when the JM expression degenerates.
    ///
    /// `residual_eigenvalues` are the eigenvalues of the residual
    /// subspace.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Domain`] if all residual eigenvalues vanish.
    pub fn spe_theoretical(residual_eigenvalues: &[f64], alpha: f64) -> Result<f64> {
        let th1: f64 = residual_eigenvalues.iter().sum();
        let th2: f64 = residual_eigenvalues.iter().map(|l| l * l).sum();
        let th3: f64 = residual_eigenvalues.iter().map(|l| l * l * l).sum();
        if th1 <= 1e-300 {
            return Err(LinalgError::Domain {
                what: "SPE limit requires a non-degenerate residual subspace",
            });
        }
        let h0 = 1.0 - 2.0 * th1 * th3 / (3.0 * th2 * th2);
        if th2 > 1e-300 && h0 > 1e-6 {
            let z = Normal.quantile(alpha)?;
            let term =
                z * (2.0 * th2 * h0 * h0).sqrt() / th1 + 1.0 + th2 * h0 * (h0 - 1.0) / (th1 * th1);
            if term > 0.0 {
                return Ok(th1 * term.powf(1.0 / h0));
            }
        }
        // Box approximation: SPE ~ g * chi2(h), g = th2/th1, h = th1^2/th2.
        let g = th2 / th1;
        let h = th1 * th1 / th2.max(1e-300);
        Ok(g * ChiSquared::new(h.max(0.5))?.quantile(alpha)?)
    }

    /// Builds both charts' limits theoretically.
    ///
    /// # Errors
    ///
    /// Propagates the errors of the individual limit constructors.
    pub fn theoretical(n: usize, a: usize, residual_eigenvalues: &[f64]) -> Result<Self> {
        Ok(ControlLimits {
            t2_95: Self::t2_theoretical(n, a, 0.95)?,
            t2_99: Self::t2_theoretical(n, a, 0.99)?,
            spe_95: Self::spe_theoretical(residual_eigenvalues, 0.95)?,
            spe_99: Self::spe_theoretical(residual_eigenvalues, 0.99)?,
        })
    }

    /// Builds both charts' limits from calibration statistic percentiles.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if either slice is empty.
    pub fn empirical(t2_calibration: &[f64], spe_calibration: &[f64]) -> Result<Self> {
        Ok(ControlLimits {
            t2_95: percentile(t2_calibration, 0.95)?,
            t2_99: percentile(t2_calibration, 0.99)?,
            spe_95: percentile(spe_calibration, 0.95)?,
            spe_99: percentile(spe_calibration, 0.99)?,
        })
    }

    /// Whether an observation's statistics exceed the 99 % limits.
    pub fn violates_99(&self, t2: f64, spe: f64) -> bool {
        t2 > self.t2_99 || spe > self.spe_99
    }

    /// Whether an observation's statistics exceed the 95 % limits.
    pub fn violates_95(&self, t2: f64, spe: f64) -> bool {
        t2 > self.t2_95 || spe > self.spe_95
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temspc_linalg::rng::GaussianSampler;

    #[test]
    fn t2_limit_matches_f_quantile_structure() {
        // For large N the phase-II factor approaches A * F quantile -> the
        // chi-squared quantile over... just verify monotonicity and a known
        // small case.
        let lim95 = ControlLimits::t2_theoretical(100, 2, 0.95).unwrap();
        let lim99 = ControlLimits::t2_theoretical(100, 2, 0.99).unwrap();
        assert!(lim99 > lim95);
        assert!(lim95 > 4.0 && lim95 < 9.0, "lim95 = {lim95}");
    }

    #[test]
    fn t2_limit_requires_enough_observations() {
        assert!(ControlLimits::t2_theoretical(2, 2, 0.95).is_err());
    }

    #[test]
    fn spe_jm_limit_covers_gaussian_residuals() {
        // Residuals ~ sum of two independent N(0, l) squared components.
        let eigenvalues = [0.5, 0.2];
        let lim99 = ControlLimits::spe_theoretical(&eigenvalues, 0.99).unwrap();
        let mut rng = GaussianSampler::seed_from(3);
        let n = 200_000;
        let mut exceed = 0;
        for _ in 0..n {
            let spe = 0.5 * rng.next_gaussian().powi(2) * 1.0 + 0.2 * rng.next_gaussian().powi(2);
            // spe = l1*z1^2 + l2*z2^2 with eigenvalues as variances.
            let spe = spe * 1.0; // already weighted
            if spe > lim99 {
                exceed += 1;
            }
        }
        let rate = exceed as f64 / n as f64;
        assert!((0.005..0.02).contains(&rate), "exceedance = {rate}");
    }

    #[test]
    fn spe_limit_rejects_degenerate_subspace() {
        assert!(ControlLimits::spe_theoretical(&[0.0, 0.0], 0.99).is_err());
    }

    #[test]
    fn empirical_limits_are_order_statistics() {
        let t2: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let spe: Vec<f64> = (1..=100).map(|i| i as f64 * 0.1).collect();
        let lims = ControlLimits::empirical(&t2, &spe).unwrap();
        assert!((lims.t2_95 - 95.05).abs() < 0.2);
        assert!(lims.t2_99 > lims.t2_95);
        assert!((lims.spe_99 - 9.9).abs() < 0.05);
    }

    #[test]
    fn violation_checks() {
        let lims = ControlLimits {
            t2_95: 5.0,
            t2_99: 9.0,
            spe_95: 1.0,
            spe_99: 2.0,
        };
        assert!(!lims.violates_99(8.0, 1.5));
        assert!(lims.violates_95(8.0, 0.5));
        assert!(lims.violates_99(10.0, 0.0));
        assert!(lims.violates_99(0.0, 2.5));
    }

    #[test]
    fn theoretical_bundle_is_consistent() {
        let lims = ControlLimits::theoretical(500, 3, &[0.4, 0.3, 0.2, 0.1]).unwrap();
        assert!(lims.t2_99 > lims.t2_95);
        assert!(lims.spe_99 > lims.spe_95);
    }
}
