//! MEDA: Missing-data based Exploratory Data Analysis (Camacho 2010) —
//! the variable-to-variable relatedness map of the MEDA toolbox.
//!
//! `MEDA(i, j)` measures how well variable `j` is recovered from variable
//! `i` through the latent model: values near 1 mean the model ties the
//! two variables strongly. Useful to verify that the plant data has the
//! correlation structure MSPC exploits.

use temspc_linalg::{LinalgError, Matrix};

use crate::pca::PcaModel;

/// Computes the `M x M` MEDA matrix of the model.
///
/// Implementation: for each variable `i`, build the one-hot scaled
/// observation `e_i`, project it through the model (`ê_i = e_i P Pᵀ`) and
/// normalize: `MEDA(i, j) = ê_{i,j}² / (ê_{i,i} · max_k ê_{k,j}²)`-style
/// scaling reduced to the standard form `q_{ij}²` with column scaling.
/// The matrix is clamped to `[0, 1]`.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] if the model has no variables.
pub fn meda_matrix(model: &PcaModel) -> Result<Matrix, LinalgError> {
    let m = model.n_variables();
    if m == 0 {
        return Err(LinalgError::Empty);
    }
    let p = model.loadings();
    let a = model.n_components();
    // q = P Pᵀ (projection matrix onto the model plane).
    let mut q = Matrix::zeros(m, m);
    for i in 0..m {
        for j in 0..m {
            let v: f64 = (0..a).map(|c| p.get(i, c) * p.get(j, c)).sum();
            q.set(i, j, v);
        }
    }
    let mut meda = Matrix::zeros(m, m);
    for i in 0..m {
        let qii = q.get(i, i).max(1e-12);
        for j in 0..m {
            let qjj = q.get(j, j).max(1e-12);
            let val = (q.get(i, j) * q.get(i, j)) / (qii * qjj);
            meda.set(i, j, val.clamp(0.0, 1.0));
        }
    }
    Ok(meda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::ComponentSelection;
    use temspc_linalg::rng::GaussianSampler;

    fn two_block_data() -> Matrix {
        // Variables {0,1} share one factor; {2,3} share another.
        let mut rng = GaussianSampler::seed_from(31);
        let mut x = Matrix::zeros(800, 4);
        for r in 0..800 {
            let t1 = rng.next_gaussian();
            let t2 = rng.next_gaussian();
            x.set(r, 0, t1 + 0.02 * rng.next_gaussian());
            x.set(r, 1, -t1 + 0.02 * rng.next_gaussian());
            x.set(r, 2, t2 + 0.02 * rng.next_gaussian());
            x.set(r, 3, 0.7 * t2 + 0.02 * rng.next_gaussian());
        }
        x
    }

    #[test]
    fn meda_reveals_block_structure() {
        let model = PcaModel::fit(&two_block_data(), ComponentSelection::Fixed(2)).unwrap();
        let meda = meda_matrix(&model).unwrap();
        // Within-block relatedness high, across-block low.
        assert!(meda.get(0, 1) > 0.8, "meda(0,1) = {}", meda.get(0, 1));
        assert!(meda.get(2, 3) > 0.8, "meda(2,3) = {}", meda.get(2, 3));
        assert!(meda.get(0, 2) < 0.2, "meda(0,2) = {}", meda.get(0, 2));
        assert!(meda.get(1, 3) < 0.2, "meda(1,3) = {}", meda.get(1, 3));
    }

    #[test]
    fn meda_diagonal_is_one() {
        let model = PcaModel::fit(&two_block_data(), ComponentSelection::Fixed(2)).unwrap();
        let meda = meda_matrix(&model).unwrap();
        for i in 0..4 {
            assert!((meda.get(i, i) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn meda_is_symmetric_and_bounded() {
        let model = PcaModel::fit(&two_block_data(), ComponentSelection::Fixed(2)).unwrap();
        let meda = meda_matrix(&model).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let v = meda.get(i, j);
                assert!((0.0..=1.0).contains(&v));
                assert!((v - meda.get(j, i)).abs() < 1e-9);
            }
        }
    }
}
