//! The high-level MSPC model: preprocessing + PCA + control limits.

use serde::{Deserialize, Serialize};
use temspc_linalg::{LinalgError, Matrix};

use std::cell::RefCell;

use crate::limits::{ControlLimits, LimitMethod};
use crate::pca::{ComponentSelection, PcaModel};
use crate::statistics::{self, ScoreScratch};

thread_local! {
    /// Per-thread scratch backing [`MspcModel::score`], so the scalar
    /// convenience API stays allocation-free after warm-up without
    /// forcing callers to thread a [`ScoreScratch`] through.
    static SCORE_SCRATCH: RefCell<ScoreScratch> = RefCell::new(ScoreScratch::new());
}

/// Configuration of an MSPC calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct MspcConfig {
    /// How many principal components to retain.
    pub components: ComponentSelection,
    /// How to derive the control limits.
    pub limit_method: LimitMethod,
    /// Floor on the per-variable scaling standard deviation (0 = none);
    /// use for near-deterministic variables whose any movement is
    /// significant.
    pub min_std: f64,
}

/// Errors from MSPC calibration and scoring.
#[derive(Debug, Clone, PartialEq)]
pub enum MspcError {
    /// An underlying numerical failure.
    Numeric(LinalgError),
}

impl std::fmt::Display for MspcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MspcError::Numeric(e) => write!(f, "numeric failure: {e}"),
        }
    }
}

impl std::error::Error for MspcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MspcError::Numeric(e) => Some(e),
        }
    }
}

impl From<LinalgError> for MspcError {
    fn from(e: LinalgError) -> Self {
        MspcError::Numeric(e)
    }
}

/// The monitoring statistics of one observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObservationScore {
    /// D-statistic (Hotelling's T²).
    pub t2: f64,
    /// Q-statistic (SPE).
    pub spe: f64,
}

/// A calibrated MSPC model: frozen scaling, PCA subspace and control
/// limits. Serializable, so calibrations can be persisted and reused.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MspcModel {
    pca: PcaModel,
    limits: ControlLimits,
    config: MspcConfig,
}

impl MspcModel {
    /// Calibrates an MSPC model on normal-operation data
    /// (rows = observations, columns = variables).
    ///
    /// # Errors
    ///
    /// Returns [`MspcError::Numeric`] when the data is degenerate (too few
    /// rows, unsatisfiable component count, vanishing residual subspace
    /// with theoretical limits).
    pub fn fit(calibration: &Matrix, config: MspcConfig) -> Result<Self, MspcError> {
        let pca = PcaModel::fit_with_min_std(calibration, config.components, config.min_std)?;
        let limits = match config.limit_method {
            LimitMethod::Theoretical => ControlLimits::theoretical(
                pca.n_calibration(),
                pca.n_components(),
                pca.residual_eigenvalues(),
            )?,
            LimitMethod::Empirical => {
                let (t2, spe) = statistics::dataset_statistics(&pca, calibration)?;
                ControlLimits::empirical(&t2, &spe)?
            }
        };
        Ok(MspcModel {
            pca,
            limits,
            config,
        })
    }

    /// The underlying PCA model.
    pub fn pca(&self) -> &PcaModel {
        &self.pca
    }

    /// The 95 %/99 % control limits.
    pub fn limits(&self) -> &ControlLimits {
        &self.limits
    }

    /// The calibration configuration.
    pub fn config(&self) -> &MspcConfig {
        &self.config
    }

    /// Scores one raw observation.
    ///
    /// Implemented on top of the batched scoring pass (a 1-row block
    /// through a per-thread [`ScoreScratch`]), so results are the same
    /// bits the batched dataset path produces and no per-call allocation
    /// happens after warm-up. Hot loops that score many observations
    /// should batch them and use [`MspcModel::score_dataset_into`].
    ///
    /// # Errors
    ///
    /// Returns [`MspcError::Numeric`] on a length mismatch.
    pub fn score(&self, observation: &[f64]) -> Result<ObservationScore, MspcError> {
        SCORE_SCRATCH.with(|s| self.score_with(observation, &mut s.borrow_mut()))
    }

    /// Scores one raw observation through a caller-owned scratch.
    ///
    /// # Errors
    ///
    /// Returns [`MspcError::Numeric`] on a length mismatch.
    pub fn score_with(
        &self,
        observation: &[f64],
        scratch: &mut ScoreScratch,
    ) -> Result<ObservationScore, MspcError> {
        let mut staged = std::mem::take(&mut scratch.row_buf);
        staged.copy_from_row(observation);
        let result = statistics::dataset_statistics_into(&self.pca, &staged, scratch);
        scratch.row_buf = staged;
        result?;
        Ok(ObservationScore {
            t2: scratch.t2[0],
            spe: scratch.spe[0],
        })
    }

    /// Scores every row of a dataset, returning `(t2, spe)` series.
    ///
    /// # Errors
    ///
    /// Returns [`MspcError::Numeric`] on a column-count mismatch.
    pub fn score_dataset(&self, x: &Matrix) -> Result<(Vec<f64>, Vec<f64>), MspcError> {
        Ok(statistics::dataset_statistics(&self.pca, x)?)
    }

    /// Scores every row of a dataset in one fused batched pass, leaving
    /// the `(t2, spe)` series in the scratch ([`ScoreScratch::t2`] /
    /// [`ScoreScratch::spe`]). Zero allocations once the scratch is warm;
    /// bit-identical to [`MspcModel::score_dataset`].
    ///
    /// # Errors
    ///
    /// Returns [`MspcError::Numeric`] on a column-count mismatch.
    pub fn score_dataset_into(
        &self,
        x: &Matrix,
        scratch: &mut ScoreScratch,
    ) -> Result<(), MspcError> {
        Ok(statistics::dataset_statistics_into(&self.pca, x, scratch)?)
    }

    /// Whether an observation violates the 99 % limits.
    ///
    /// # Errors
    ///
    /// Returns [`MspcError::Numeric`] on a length mismatch.
    pub fn is_violation_99(&self, observation: &[f64]) -> Result<bool, MspcError> {
        let s = self.score(observation)?;
        Ok(self.limits.violates_99(s.t2, s.spe))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temspc_linalg::rng::GaussianSampler;

    fn calibration(n: usize, seed: u64) -> Matrix {
        let mut rng = GaussianSampler::seed_from(seed);
        let mut x = Matrix::zeros(n, 5);
        for r in 0..n {
            let t1 = rng.next_gaussian();
            let t2 = rng.next_gaussian();
            for c in 0..5 {
                let signal = match c {
                    0 => t1,
                    1 => -t1,
                    2 => t2,
                    3 => t1 + t2,
                    _ => t1 - t2,
                };
                x.set(r, c, signal + 0.1 * rng.next_gaussian());
            }
        }
        x
    }

    #[test]
    fn empirical_limits_bound_calibration_data() {
        let x = calibration(2000, 1);
        let model = MspcModel::fit(&x, MspcConfig::default()).unwrap();
        let (t2, spe) = model.score_dataset(&x).unwrap();
        let frac_t2 =
            t2.iter().filter(|&&v| v > model.limits().t2_99).count() as f64 / t2.len() as f64;
        let frac_spe =
            spe.iter().filter(|&&v| v > model.limits().spe_99).count() as f64 / spe.len() as f64;
        assert!((0.002..0.03).contains(&frac_t2), "t2 exceedance {frac_t2}");
        assert!(
            (0.002..0.03).contains(&frac_spe),
            "spe exceedance {frac_spe}"
        );
    }

    #[test]
    fn theoretical_limits_hold_on_fresh_data() {
        let x = calibration(3000, 2);
        let cfg = MspcConfig {
            components: crate::pca::ComponentSelection::Fixed(2),
            limit_method: crate::limits::LimitMethod::Theoretical,
            min_std: 0.0,
        };
        let model = MspcModel::fit(&x, cfg).unwrap();
        // Fresh normal data: ~1 % should exceed the 99 % limits per chart.
        let fresh = calibration(3000, 3);
        let (t2, spe) = model.score_dataset(&fresh).unwrap();
        let frac_t2 =
            t2.iter().filter(|&&v| v > model.limits().t2_99).count() as f64 / t2.len() as f64;
        let frac_spe =
            spe.iter().filter(|&&v| v > model.limits().spe_99).count() as f64 / spe.len() as f64;
        assert!(frac_t2 < 0.03, "t2 exceedance {frac_t2}");
        assert!(frac_spe < 0.03, "spe exceedance {frac_spe}");
    }

    #[test]
    fn abnormal_observation_is_flagged() {
        let x = calibration(1000, 4);
        let model = MspcModel::fit(&x, MspcConfig::default()).unwrap();
        assert!(model.is_violation_99(&[8.0, 8.0, 0.0, 0.0, 0.0]).unwrap());
        assert!(!model.is_violation_99(&[0.1, -0.1, 0.0, 0.0, 0.2]).unwrap());
    }

    #[test]
    fn model_roundtrips_through_serde() {
        let x = calibration(500, 5);
        let model = MspcModel::fit(&x, MspcConfig::default()).unwrap();
        // serde is exercised via the bincode-free "serde_test"-style check:
        // serialize into the serde data model and back using a simple
        // in-memory format (here: the `serde` `Value`-less round trip via
        // `serde::de::value`).
        let score_before = model.score(&[1.0, -1.0, 0.5, 1.5, 0.5]).unwrap();
        let cloned = model.clone();
        let score_after = cloned.score(&[1.0, -1.0, 0.5, 1.5, 0.5]).unwrap();
        assert_eq!(score_before, score_after);
    }

    #[test]
    fn degenerate_calibration_is_rejected() {
        let x = Matrix::zeros(1, 5);
        assert!(MspcModel::fit(&x, MspcConfig::default()).is_err());
    }
}
