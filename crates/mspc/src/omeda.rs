//! oMEDA: observation-based Missing-data methods for Exploratory Data
//! Analysis (Camacho 2011) — the paper's diagnosis tool.
//!
//! Given a group of observations selected by a dummy vector `d` (1 for
//! observations in the anomalous event, 0 elsewhere; ±1 to contrast two
//! groups), the oMEDA vector `d²_A` has one entry per original variable.
//! Variables unrelated to the event give values near zero; variables that
//! deviate during the event give large bars whose **sign matches the
//! deviation direction** — exactly the bar plots of Figures 4 and 5 of
//! the paper.

use temspc_linalg::{LinalgError, Matrix};

use crate::pca::PcaModel;
use crate::statistics::ScoreScratch;

/// Computes the oMEDA vector for the observation group selected by
/// `dummy`, under the PCA `model`.
///
/// `x` holds raw (unscaled) observations as rows; `dummy` has one weight
/// per row. Following the MEDA-toolbox formulation:
///
/// ```text
/// Z  = autoscale(X)        (calibration scaling)
/// Ẑ  = Z P Pᵀ              (projection onto the model subspace)
/// s  = Zᵀ d,   ŝ = Ẑᵀ d
/// d²A,m = (2 s_m − ŝ_m) · |ŝ_m| / ‖d‖
/// ```
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] if `dummy.len() != x.nrows()` or the
///   column count differs from the model.
/// * [`LinalgError::Empty`] if `dummy` is all zeros.
pub fn omeda(x: &Matrix, dummy: &[f64], model: &PcaModel) -> Result<Vec<f64>, LinalgError> {
    omeda_with(x, dummy, model, &mut ScoreScratch::new())
}

/// [`omeda`] through a caller-owned [`ScoreScratch`]: the event window is
/// scaled and projected in one batched pass, so repeated diagnoses (the
/// monitor calls this once per anomalous event) reuse the same buffers.
///
/// # Errors
///
/// Same as [`omeda`].
pub fn omeda_with(
    x: &Matrix,
    dummy: &[f64],
    model: &PcaModel,
    scratch: &mut ScoreScratch,
) -> Result<Vec<f64>, LinalgError> {
    if dummy.len() != x.nrows() {
        return Err(LinalgError::ShapeMismatch {
            left: x.shape(),
            right: (dummy.len(), 1),
        });
    }
    if x.ncols() != model.n_variables() {
        return Err(LinalgError::ShapeMismatch {
            left: x.shape(),
            right: (1, model.n_variables()),
        });
    }
    let norm = dummy.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm == 0.0 {
        return Err(LinalgError::Empty);
    }
    let m = model.n_variables();
    model.project_batch_into(x, scratch)?;
    let mut s = vec![0.0; m];
    let mut s_hat = vec![0.0; m];
    for (r, &w) in dummy.iter().enumerate() {
        if w == 0.0 {
            continue;
        }
        let z = scratch.z.row(r);
        let z_hat = scratch.recon.row(r);
        for j in 0..m {
            s[j] += w * z[j];
            s_hat[j] += w * z_hat[j];
        }
    }
    Ok((0..m)
        .map(|j| (2.0 * s[j] - s_hat[j]) * s_hat[j].abs() / norm)
        .collect())
}

/// Convenience: oMEDA for a contiguous index range of anomalous
/// observations (dummy = 1 on the range, 0 elsewhere).
///
/// # Errors
///
/// Same as [`omeda`]; additionally rejects an empty or out-of-bounds
/// range.
pub fn omeda_for_range(
    x: &Matrix,
    range: std::ops::Range<usize>,
    model: &PcaModel,
) -> Result<Vec<f64>, LinalgError> {
    if range.is_empty() || range.end > x.nrows() {
        return Err(LinalgError::Empty);
    }
    let mut dummy = vec![0.0; x.nrows()];
    for w in &mut dummy[range] {
        *w = 1.0;
    }
    omeda(x, &dummy, model)
}

/// Index (0-based) and value of the dominant oMEDA variable: the entry
/// with the largest absolute value.
///
/// Returns `None` for an empty vector.
pub fn dominant_variable(omeda_vec: &[f64]) -> Option<(usize, f64)> {
    omeda_vec
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
}

/// A "clarity" score in `[0, 1]`: how concentrated the plot's mass is in
/// its top three bars, normalized against a flat plot (0 = uniform bars,
/// 1 = all mass in at most three variables).
///
/// The paper's DoS diagnosis — "neither of the oMEDA plots show a
/// variable that stands out clearly" — corresponds to low clarity. Up to
/// three variables may legitimately co-deviate in a *clear* diagnosis
/// (e.g. `XMEAS(1)` and `XMV(3)` in the paper's Figure 5c).
pub fn diagnosis_clarity(omeda_vec: &[f64]) -> f64 {
    let n = omeda_vec.len();
    if n < 4 {
        return 0.0;
    }
    let mut mags: Vec<f64> = omeda_vec.iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let total: f64 = mags.iter().sum();
    if total <= 1e-300 {
        return 0.0;
    }
    let top3: f64 = mags[..3].iter().sum();
    let share = top3 / total;
    let baseline = 3.0 / n as f64;
    ((share - baseline) / (1.0 - baseline)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::ComponentSelection;
    use temspc_linalg::rng::GaussianSampler;

    /// Calibration data: 4 variables driven by 2 latent factors.
    fn calib() -> Matrix {
        let mut rng = GaussianSampler::seed_from(21);
        let mut x = Matrix::zeros(600, 4);
        for r in 0..600 {
            let t1 = rng.next_gaussian();
            let t2 = rng.next_gaussian();
            x.set(r, 0, t1 + 0.05 * rng.next_gaussian());
            x.set(r, 1, t1 + t2 + 0.05 * rng.next_gaussian());
            x.set(r, 2, t2 + 0.05 * rng.next_gaussian());
            x.set(r, 3, t1 - t2 + 0.05 * rng.next_gaussian());
        }
        x
    }

    fn model() -> PcaModel {
        PcaModel::fit(&calib(), ComponentSelection::Fixed(2)).unwrap()
    }

    /// Anomalous block: variable 0 collapses far below normal.
    fn anomalous_block(shift: f64, var: usize) -> Matrix {
        let mut rng = GaussianSampler::seed_from(22);
        let mut x = Matrix::zeros(50, 4);
        for r in 0..50 {
            let t1 = rng.next_gaussian() * 0.2;
            let t2 = rng.next_gaussian() * 0.2;
            x.set(r, 0, t1);
            x.set(r, 1, t1 + t2);
            x.set(r, 2, t2);
            x.set(r, 3, t1 - t2);
            x.set(r, var, x.get(r, var) + shift);
        }
        x
    }

    #[test]
    fn negative_shift_gives_negative_dominant_bar() {
        let m = model();
        let block = anomalous_block(-6.0, 0);
        let v = omeda_for_range(&block, 0..50, &m).unwrap();
        let (idx, val) = dominant_variable(&v).unwrap();
        assert_eq!(idx, 0, "oMEDA = {v:?}");
        assert!(val < 0.0, "oMEDA = {v:?}");
    }

    #[test]
    fn positive_shift_gives_positive_dominant_bar() {
        let m = model();
        let block = anomalous_block(5.0, 2);
        let v = omeda_for_range(&block, 0..50, &m).unwrap();
        let (idx, val) = dominant_variable(&v).unwrap();
        assert_eq!(idx, 2, "oMEDA = {v:?}");
        assert!(val > 0.0);
    }

    #[test]
    fn unshifted_block_has_flat_omeda() {
        let m = model();
        let block = anomalous_block(0.0, 0);
        let v = omeda_for_range(&block, 0..50, &m).unwrap();
        let shifted = omeda_for_range(&anomalous_block(-6.0, 0), 0..50, &m).unwrap();
        let max_flat = v.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()));
        let max_shifted = shifted.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()));
        assert!(
            max_shifted > 10.0 * max_flat,
            "flat = {max_flat}, shifted = {max_shifted}"
        );
    }

    #[test]
    fn clarity_distinguishes_clear_and_diffuse_plots() {
        // One dominant bar among eight: clear.
        assert!(diagnosis_clarity(&[10.0, 0.5, -0.2, 0.1, 0.1, -0.1, 0.2, 0.1]) > 0.8);
        // Everything the same magnitude: diffuse.
        assert!(diagnosis_clarity(&[1.0, -0.95, 0.9, -0.85, 0.92, -0.88, 0.97, -0.9]) < 0.1);
        // Two co-deviating variables still count as clear.
        assert!(diagnosis_clarity(&[8.0, 7.5, 0.3, -0.2, 0.1, 0.2, -0.1, 0.15]) > 0.8);
        assert_eq!(diagnosis_clarity(&[0.0, 0.0, 0.0, 0.0]), 0.0);
        assert_eq!(diagnosis_clarity(&[1.0]), 0.0);
    }

    #[test]
    fn dummy_contrast_groups() {
        // +1 on a positively shifted block, -1 on a negatively shifted
        // block: the contrast doubles the signal on the shifted variable.
        let m = model();
        let pos = anomalous_block(4.0, 1);
        let neg = anomalous_block(-4.0, 1);
        let both = pos.vstack(&neg).unwrap();
        let mut dummy = vec![1.0; 50];
        dummy.extend(vec![-1.0; 50]);
        let v = omeda(&both, &dummy, &m).unwrap();
        let (idx, val) = dominant_variable(&v).unwrap();
        assert_eq!(idx, 1);
        assert!(val > 0.0);
    }

    #[test]
    fn errors_on_bad_input() {
        let m = model();
        let block = anomalous_block(1.0, 0);
        assert!(omeda(&block, &[1.0; 3], &m).is_err());
        assert!(omeda(&block, &[0.0; 50], &m).is_err());
        assert!(omeda_for_range(&block, 10..10, &m).is_err());
        assert!(omeda_for_range(&block, 0..1000, &m).is_err());
        let wrong = Matrix::zeros(5, 7);
        assert!(omeda(&wrong, &[1.0; 5], &m).is_err());
    }
}
