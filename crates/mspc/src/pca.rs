//! Principal Component Analysis: NIPALS and eigendecomposition fits.

use serde::{Deserialize, Serialize};
use temspc_linalg::decomp::symmetric_eigen;
use temspc_linalg::stats::{correlation, AutoScaler};
use temspc_linalg::{LinalgError, Matrix};

/// How many principal components to keep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ComponentSelection {
    /// Exactly this many components.
    Fixed(usize),
    /// The smallest number of components whose cumulative explained
    /// variance reaches this fraction (in `(0, 1]`).
    VarianceFraction(f64),
}

impl Default for ComponentSelection {
    fn default() -> Self {
        // Typical MSPC practice: retain most systematic variation, leave
        // noise in the residual subspace for the Q-statistic.
        ComponentSelection::VarianceFraction(0.9)
    }
}

/// A fitted PCA model on autoscaled data.
///
/// Holds the frozen [`AutoScaler`], the `M x A` loading matrix, the score
/// variances (eigenvalues) of the retained components and the residual
/// eigenvalues needed for SPE control limits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PcaModel {
    scaler: AutoScaler,
    loadings: Matrix,
    eigenvalues: Vec<f64>,
    residual_eigenvalues: Vec<f64>,
    n_calibration: usize,
    loadings_t: TransposeCache,
}

/// Lazily-computed `A x M` transpose of the loadings, shared by the
/// batched scoring path so no per-call transpose is needed.
///
/// Persisted as a unit (the cache is derived data); deserialized models
/// recompute it on first use. `OnceLock` keeps [`PcaModel`] `Sync` so the
/// fleet engine can score through shared models from many workers.
#[derive(Debug, Clone, Default)]
struct TransposeCache(std::sync::OnceLock<Matrix>);

impl Serialize for TransposeCache {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for TransposeCache {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> serde::de::Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("transpose cache placeholder")
            }
            fn visit_unit<E: serde::de::Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)?;
        Ok(TransposeCache::default())
    }
}

impl PcaModel {
    /// Fits a PCA model from raw calibration data (rows = observations).
    ///
    /// Internally autoscales, forms the correlation matrix and
    /// eigendecomposes it — numerically equivalent to NIPALS on the scaled
    /// data but faster for long matrices.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] if there are fewer than 2 rows.
    /// * [`LinalgError::Domain`] if the requested component count is not
    ///   satisfiable (0 or more than `M`).
    pub fn fit(x: &Matrix, selection: ComponentSelection) -> Result<Self, LinalgError> {
        Self::fit_with_min_std(x, selection, 0.0)
    }

    /// Like [`PcaModel::fit`], with a floor on the per-variable scaling
    /// standard deviation (see
    /// [`AutoScaler::fit_with_min_std`](temspc_linalg::stats::AutoScaler::fit_with_min_std)).
    ///
    /// # Errors
    ///
    /// Same as [`PcaModel::fit`], plus [`LinalgError::Domain`] for a
    /// negative floor.
    pub fn fit_with_min_std(
        x: &Matrix,
        selection: ComponentSelection,
        min_std: f64,
    ) -> Result<Self, LinalgError> {
        let scaler = AutoScaler::fit_with_min_std(x, min_std)?;
        let corr = correlation(x)?;
        Self::fit_from_correlation(&corr, scaler, x.nrows(), selection)
    }

    /// Fits from a precomputed correlation matrix (streaming calibration).
    ///
    /// # Errors
    ///
    /// Same as [`PcaModel::fit`].
    pub fn fit_from_correlation(
        corr: &Matrix,
        scaler: AutoScaler,
        n_calibration: usize,
        selection: ComponentSelection,
    ) -> Result<Self, LinalgError> {
        let m = corr.nrows();
        let eig = symmetric_eigen(corr)?;
        let total: f64 = eig.values.iter().map(|v| v.max(0.0)).sum();
        let a = match selection {
            ComponentSelection::Fixed(a) => {
                if a == 0 || a > m {
                    return Err(LinalgError::Domain {
                        what: "component count must be in 1..=M",
                    });
                }
                a
            }
            ComponentSelection::VarianceFraction(f) => {
                if !(0.0..=1.0).contains(&f) || f == 0.0 {
                    return Err(LinalgError::Domain {
                        what: "variance fraction must be in (0, 1]",
                    });
                }
                let mut cum = 0.0;
                let mut a = m;
                for (i, &l) in eig.values.iter().enumerate() {
                    cum += l.max(0.0);
                    if cum >= f * total {
                        a = i + 1;
                        break;
                    }
                }
                a.max(1)
            }
        };
        let cols: Vec<usize> = (0..a).collect();
        let loadings = eig.vectors.select_cols(&cols);
        let eigenvalues: Vec<f64> = eig.values[..a].iter().map(|&v| v.max(1e-12)).collect();
        let residual_eigenvalues: Vec<f64> = eig.values[a..].iter().map(|&v| v.max(0.0)).collect();
        Ok(PcaModel {
            scaler,
            loadings,
            eigenvalues,
            residual_eigenvalues,
            n_calibration,
            loadings_t: TransposeCache::default(),
        })
    }

    /// Reference NIPALS implementation, fitting `a` components directly on
    /// the (internally autoscaled) data matrix. Used to cross-validate the
    /// eigendecomposition path.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] for fewer than 2 rows.
    /// * [`LinalgError::Domain`] for an unsatisfiable component count.
    /// * [`LinalgError::NoConvergence`] if a component fails to converge.
    pub fn fit_nipals(x: &Matrix, a: usize) -> Result<Self, LinalgError> {
        let m = x.ncols();
        if a == 0 || a > m {
            return Err(LinalgError::Domain {
                what: "component count must be in 1..=M",
            });
        }
        let scaler = AutoScaler::fit(x)?;
        let mut e = scaler.transform(x)?;
        let n = e.nrows();
        let mut loadings = Matrix::zeros(m, a);
        let mut eigenvalues = Vec::with_capacity(a);
        for comp in 0..a {
            // Start from the column with the largest remaining variance.
            let mut best_col = 0;
            let mut best_ss = -1.0;
            for c in 0..m {
                let ss: f64 = e.col_iter(c).map(|v| v * v).sum();
                if ss > best_ss {
                    best_ss = ss;
                    best_col = c;
                }
            }
            let mut t = e.col(best_col);
            let mut p = vec![0.0; m];
            let mut converged = false;
            for _ in 0..500 {
                // p = E^T t / (t^T t)
                let tt: f64 = t.iter().map(|v| v * v).sum();
                if tt < 1e-30 {
                    converged = true; // degenerate: no variance left
                    break;
                }
                for (c, pc) in p.iter_mut().enumerate() {
                    *pc = e.col_iter(c).zip(&t).map(|(x, &ti)| x * ti).sum::<f64>() / tt;
                }
                let pn: f64 = p.iter().map(|v| v * v).sum::<f64>().sqrt();
                for pc in &mut p {
                    *pc /= pn.max(1e-300);
                }
                // t_new = E p
                let t_new: Vec<f64> = (0..n)
                    .map(|r| e.row(r).iter().zip(&p).map(|(&x, &pc)| x * pc).sum())
                    .collect();
                let diff: f64 = t_new
                    .iter()
                    .zip(&t)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                let scale: f64 = t_new.iter().map(|v| v * v).sum::<f64>().sqrt();
                t = t_new;
                if diff <= 1e-12 * scale.max(1e-300) {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(LinalgError::NoConvergence {
                    algorithm: "NIPALS",
                    iterations: 500,
                });
            }
            // Deflate: E <- E - t p^T
            for (r, &tr) in t.iter().enumerate() {
                let row = e.row_mut(r);
                for (c, pc) in p.iter().enumerate() {
                    row[c] -= tr * pc;
                }
            }
            for (c, &pc) in p.iter().enumerate() {
                loadings.set(c, comp, pc);
            }
            let var = t.iter().map(|v| v * v).sum::<f64>() / (n as f64 - 1.0);
            eigenvalues.push(var.max(1e-12));
        }
        // Residual eigenvalues from the deflated matrix.
        let residual_eigenvalues = match correlation(&e) {
            Ok(_) => {
                let cov = temspc_linalg::stats::covariance(&e)?;
                let eig = symmetric_eigen(&cov)?;
                eig.values
                    .into_iter()
                    .take(m - a)
                    .map(|v| v.max(0.0))
                    .collect()
            }
            Err(_) => vec![0.0; m - a],
        };
        Ok(PcaModel {
            scaler,
            loadings,
            eigenvalues,
            residual_eigenvalues,
            n_calibration: n,
            loadings_t: TransposeCache::default(),
        })
    }

    /// Number of retained principal components.
    pub fn n_components(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Number of original variables.
    pub fn n_variables(&self) -> usize {
        self.loadings.nrows()
    }

    /// Number of calibration observations.
    pub fn n_calibration(&self) -> usize {
        self.n_calibration
    }

    /// The frozen autoscaler.
    pub fn scaler(&self) -> &AutoScaler {
        &self.scaler
    }

    /// The `M x A` loading matrix.
    pub fn loadings(&self) -> &Matrix {
        &self.loadings
    }

    /// Score variances (eigenvalues) of the retained components.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Eigenvalues of the residual subspace (for SPE limits).
    pub fn residual_eigenvalues(&self) -> &[f64] {
        &self.residual_eigenvalues
    }

    /// Fraction of total variance explained by the retained components.
    pub fn explained_variance(&self) -> f64 {
        let kept: f64 = self.eigenvalues.iter().sum();
        let resid: f64 = self.residual_eigenvalues.iter().sum();
        kept / (kept + resid).max(1e-300)
    }

    /// Projects a raw observation: returns `(scores, residual)` where
    /// `scores` has length `A` and `residual` length `M` (in scaled
    /// units).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the observation length is
    /// not `M`.
    pub fn project(&self, raw: &[f64]) -> Result<(Vec<f64>, Vec<f64>), LinalgError> {
        let z = self.scaler.transform_row(raw)?;
        let a = self.n_components();
        let m = self.n_variables();
        let mut scores = vec![0.0; a];
        for (c, sc) in scores.iter_mut().enumerate() {
            *sc = (0..m).map(|r| z[r] * self.loadings.get(r, c)).sum();
        }
        let mut residual = z;
        for (r, res) in residual.iter_mut().enumerate() {
            let recon: f64 = (0..a).map(|c| scores[c] * self.loadings.get(r, c)).sum();
            *res -= recon;
        }
        Ok((scores, residual))
    }

    /// Projects a whole `N x M` block of raw observations in one batched
    /// pass, filling the scratch's scaled data (`z`), scores (`N x A`),
    /// reconstruction and residuals (`N x M`).
    ///
    /// The two matrix products go through the blocked matmul kernel, which
    /// preserves the per-element ascending-`k` accumulation order of
    /// [`PcaModel::project`] — every score and residual is bit-identical to
    /// the row-at-a-time path. Once the scratch buffers have grown to the
    /// block shape, the pass performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x` does not have `M`
    /// columns.
    pub fn project_batch_into(
        &self,
        x: &Matrix,
        scratch: &mut crate::statistics::ScoreScratch,
    ) -> Result<(), LinalgError> {
        self.scaler.transform_into(x, &mut scratch.z)?;
        let loadings_t = self.loadings_t.0.get_or_init(|| self.loadings.transpose());
        scratch.z.matmul_into(&self.loadings, &mut scratch.scores)?;
        scratch.scores.matmul_into(loadings_t, &mut scratch.recon)?;
        scratch.z.sub_into(&scratch.recon, &mut scratch.residuals)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temspc_linalg::rng::GaussianSampler;

    /// Synthetic dataset with one dominant latent direction.
    fn latent_data(n: usize, seed: u64) -> Matrix {
        let mut rng = GaussianSampler::seed_from(seed);
        let mut x = Matrix::zeros(n, 3);
        for r in 0..n {
            let t = rng.next_gaussian();
            x.set(r, 0, 2.0 * t + 0.05 * rng.next_gaussian());
            x.set(r, 1, -t + 0.05 * rng.next_gaussian());
            x.set(r, 2, 0.5 * t + 0.05 * rng.next_gaussian());
        }
        x
    }

    #[test]
    fn one_component_captures_latent_structure() {
        let x = latent_data(400, 1);
        let model = PcaModel::fit(&x, ComponentSelection::Fixed(1)).unwrap();
        assert_eq!(model.n_components(), 1);
        // One latent factor drives everything: > 95 % variance explained.
        assert!(
            model.explained_variance() > 0.95,
            "{}",
            model.explained_variance()
        );
    }

    #[test]
    fn variance_fraction_selection() {
        let x = latent_data(400, 2);
        let model = PcaModel::fit(&x, ComponentSelection::VarianceFraction(0.9)).unwrap();
        assert_eq!(model.n_components(), 1);
        let all = PcaModel::fit(&x, ComponentSelection::VarianceFraction(1.0)).unwrap();
        assert_eq!(all.n_components(), 3);
    }

    #[test]
    fn loadings_are_orthonormal() {
        let x = latent_data(300, 3);
        let model = PcaModel::fit(&x, ComponentSelection::Fixed(2)).unwrap();
        let ptp = model.loadings().transpose().matmul(model.loadings());
        assert!(ptp.try_sub(&Matrix::identity(2)).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn nipals_matches_eigen_path() {
        let x = latent_data(300, 4);
        let eigen = PcaModel::fit(&x, ComponentSelection::Fixed(2)).unwrap();
        let nipals = PcaModel::fit_nipals(&x, 2).unwrap();
        for c in 0..2 {
            // Loadings match up to sign.
            let col_e: Vec<f64> = (0..3).map(|r| eigen.loadings().get(r, c)).collect();
            let col_n: Vec<f64> = (0..3).map(|r| nipals.loadings().get(r, c)).collect();
            let dot: f64 = col_e.iter().zip(&col_n).map(|(a, b)| a * b).sum();
            assert!(dot.abs() > 0.999, "component {c}: |dot| = {}", dot.abs());
            let ratio = eigen.eigenvalues()[c] / nipals.eigenvalues()[c];
            assert!((ratio - 1.0).abs() < 0.05, "eigenvalue ratio {ratio}");
        }
    }

    #[test]
    fn projection_reconstructs_in_model_plane() {
        let x = latent_data(300, 5);
        let model = PcaModel::fit(&x, ComponentSelection::Fixed(1)).unwrap();
        // In-model observation: tiny residual.
        let (scores, residual) = model.project(&[2.0, -1.0, 0.5]).unwrap();
        assert_eq!(scores.len(), 1);
        let spe: f64 = residual.iter().map(|v| v * v).sum();
        assert!(spe < 0.5, "spe = {spe}");
        // Off-model observation: large residual.
        let (_, residual) = model.project(&[2.0, 2.0, -3.0]).unwrap();
        let spe: f64 = residual.iter().map(|v| v * v).sum();
        assert!(spe > 5.0, "spe = {spe}");
    }

    #[test]
    fn fixed_zero_components_rejected() {
        let x = latent_data(50, 6);
        assert!(PcaModel::fit(&x, ComponentSelection::Fixed(0)).is_err());
        assert!(PcaModel::fit(&x, ComponentSelection::Fixed(7)).is_err());
        assert!(PcaModel::fit(&x, ComponentSelection::VarianceFraction(0.0)).is_err());
    }

    #[test]
    fn eigenvalue_ordering_descends() {
        let x = latent_data(200, 7);
        let model = PcaModel::fit(&x, ComponentSelection::Fixed(3)).unwrap();
        let ev = model.eigenvalues();
        assert!(ev[0] >= ev[1] && ev[1] >= ev[2]);
    }
}
