//! The two MSPC monitoring statistics: D (Hotelling's T²) and Q (SPE).

use crate::pca::PcaModel;
use temspc_linalg::{LinalgError, Matrix};

/// Reusable buffers for batched MSPC scoring.
///
/// One `ScoreScratch` holds every intermediate the fused
/// scale → project → reconstruct → T²/SPE pass needs: the scaled block,
/// the score block, the reconstruction, the residuals and the two
/// statistic series. All buffers are grown on first use and reused on
/// every subsequent call, so a warm scratch makes
/// [`dataset_statistics_into`] (and everything built on it) perform zero
/// heap allocations.
///
/// The scratch is model-agnostic: the same instance can be reused across
/// models of different shapes (buffers are reshaped as needed).
#[derive(Debug, Clone, Default)]
pub struct ScoreScratch {
    pub(crate) z: Matrix,
    pub(crate) scores: Matrix,
    pub(crate) recon: Matrix,
    pub(crate) residuals: Matrix,
    pub(crate) row_buf: Matrix,
    pub(crate) t2: Vec<f64>,
    pub(crate) spe: Vec<f64>,
}

impl ScoreScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scores block (`N x A`) from the most recent batched pass.
    pub fn scores(&self) -> &Matrix {
        &self.scores
    }

    /// Residual block (`N x M`, scaled units) from the most recent pass.
    pub fn residuals(&self) -> &Matrix {
        &self.residuals
    }

    /// T² series from the most recent [`dataset_statistics_into`] call.
    pub fn t2(&self) -> &[f64] {
        &self.t2
    }

    /// SPE series from the most recent [`dataset_statistics_into`] call.
    pub fn spe(&self) -> &[f64] {
        &self.spe
    }
}

/// Hotelling's T² (D-statistic) for a score vector: `Σ t_a² / λ_a`.
///
/// `eigenvalues` are the calibration score variances; entries are clamped
/// away from zero to avoid division blow-ups on degenerate components.
pub fn t2_statistic(scores: &[f64], eigenvalues: &[f64]) -> f64 {
    scores
        .iter()
        .zip(eigenvalues)
        .map(|(&t, &l)| t * t / l.max(1e-12))
        .sum()
}

/// Q-statistic (Squared Prediction Error) for a residual vector: `Σ e_m²`.
pub fn spe_statistic(residual: &[f64]) -> f64 {
    residual.iter().map(|&e| e * e).sum()
}

/// Computes `(T², SPE)` for one raw observation under a PCA model.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] if the observation length does
/// not match the model.
pub fn observation_statistics(model: &PcaModel, raw: &[f64]) -> Result<(f64, f64), LinalgError> {
    let (scores, residual) = model.project(raw)?;
    Ok((
        t2_statistic(&scores, model.eigenvalues()),
        spe_statistic(&residual),
    ))
}

thread_local! {
    /// Scratch backing the allocating [`dataset_statistics`] wrapper.
    /// Reusing warm buffers matters even for the convenience API: fresh
    /// block-sized allocations cost more in page faults than the scoring
    /// arithmetic itself.
    static DATASET_SCRATCH: std::cell::RefCell<ScoreScratch> =
        std::cell::RefCell::new(ScoreScratch::new());
}

/// Computes `(T², SPE)` for every row of a dataset.
///
/// Convenience wrapper over [`dataset_statistics_into`] backed by a
/// thread-local [`ScoreScratch`], so only the two returned vectors are
/// allocated. Repeated callers that also need the score/residual blocks
/// should hold their own scratch and call the `_into` variant directly.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] on a column-count mismatch.
pub fn dataset_statistics(
    model: &PcaModel,
    x: &Matrix,
) -> Result<(Vec<f64>, Vec<f64>), LinalgError> {
    DATASET_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        dataset_statistics_into(model, x, scratch)?;
        Ok((
            std::mem::take(&mut scratch.t2),
            std::mem::take(&mut scratch.spe),
        ))
    })
}

/// Computes `(T², SPE)` for every row of a dataset in one fused batched
/// pass, writing into the scratch's [`ScoreScratch::t2`] /
/// [`ScoreScratch::spe`] series.
///
/// The whole block is scaled, projected and reconstructed through the
/// blocked matmul kernel; per-row statistics then reduce the score and
/// residual rows. Results are bit-identical to scoring each row through
/// [`observation_statistics`], but with zero allocations once the scratch
/// is warm.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] on a column-count mismatch.
pub fn dataset_statistics_into(
    model: &PcaModel,
    x: &Matrix,
    scratch: &mut ScoreScratch,
) -> Result<(), LinalgError> {
    model.project_batch_into(x, scratch)?;
    let ScoreScratch {
        scores,
        residuals,
        t2,
        spe,
        ..
    } = scratch;
    t2.clear();
    t2.extend(
        scores
            .iter_rows()
            .map(|row| t2_statistic(row, model.eigenvalues())),
    );
    t2.truncate(scores.nrows());
    spe.clear();
    spe.extend(residuals.iter_rows().map(spe_statistic));
    spe.truncate(residuals.nrows());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::ComponentSelection;
    use temspc_linalg::rng::GaussianSampler;
    use temspc_linalg::Matrix;

    fn calibration_data(n: usize) -> Matrix {
        let mut rng = GaussianSampler::seed_from(11);
        let mut x = Matrix::zeros(n, 4);
        for r in 0..n {
            let t1 = rng.next_gaussian();
            let t2 = rng.next_gaussian();
            x.set(r, 0, t1 + 0.1 * rng.next_gaussian());
            x.set(r, 1, t1 - t2 + 0.1 * rng.next_gaussian());
            x.set(r, 2, t2 + 0.1 * rng.next_gaussian());
            x.set(r, 3, 0.5 * t1 + 0.5 * t2 + 0.1 * rng.next_gaussian());
        }
        x
    }

    #[test]
    fn t2_of_zero_scores_is_zero() {
        assert_eq!(t2_statistic(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(spe_statistic(&[0.0; 5]), 0.0);
    }

    #[test]
    fn t2_weights_by_eigenvalue() {
        // Same score magnitude, smaller eigenvalue -> larger T².
        let a = t2_statistic(&[1.0], &[1.0]);
        let b = t2_statistic(&[1.0], &[0.25]);
        assert!(b > a);
        assert!((b - 4.0).abs() < 1e-12);
    }

    #[test]
    fn calibration_statistics_are_moderate() {
        let x = calibration_data(500);
        let model = crate::pca::PcaModel::fit(&x, ComponentSelection::Fixed(2)).unwrap();
        let (t2, spe) = dataset_statistics(&model, &x).unwrap();
        // Calibration data itself: T² averages ~A (chi-square-ish).
        let mean_t2: f64 = t2.iter().sum::<f64>() / t2.len() as f64;
        assert!((1.0..4.0).contains(&mean_t2), "mean T² = {mean_t2}");
        assert!(spe.iter().all(|&q| q >= 0.0));
    }

    #[test]
    fn score_space_shift_raises_t2_not_spe() {
        let x = calibration_data(500);
        let model = crate::pca::PcaModel::fit(&x, ComponentSelection::Fixed(2)).unwrap();
        // An observation far along the latent directions but consistent
        // with the correlation structure: t1 = 5 -> (5, 5, 0, 2.5).
        let (t2, spe) = observation_statistics(&model, &[5.0, 5.0, 0.0, 2.5]).unwrap();
        assert!(t2 > 9.0, "t2 = {t2}");
        assert!(spe < 2.0, "spe = {spe}");
    }

    #[test]
    fn correlation_break_raises_spe() {
        let x = calibration_data(500);
        let model = crate::pca::PcaModel::fit(&x, ComponentSelection::Fixed(2)).unwrap();
        // Break the structure: x0 high while x1 says t1 - t2 inconsistent.
        let (_, spe) = observation_statistics(&model, &[3.0, -3.0, 3.0, -3.0]).unwrap();
        assert!(spe > 5.0, "spe = {spe}");
    }

    #[test]
    fn shape_mismatch_is_error() {
        let x = calibration_data(100);
        let model = crate::pca::PcaModel::fit(&x, ComponentSelection::Fixed(1)).unwrap();
        assert!(observation_statistics(&model, &[1.0, 2.0]).is_err());
    }
}
