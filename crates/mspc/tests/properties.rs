//! Property-based tests of the MSPC invariants.

use proptest::prelude::*;
use temspc_linalg::rng::GaussianSampler;
use temspc_linalg::Matrix;
use temspc_mspc::contribution::{spe_contributions, t2_contributions};
use temspc_mspc::detector::{ConsecutiveDetector, DetectorConfig};
use temspc_mspc::limits::ControlLimits;
use temspc_mspc::pca::ComponentSelection;
use temspc_mspc::statistics::observation_statistics;
use temspc_mspc::{omeda, MspcConfig, MspcModel, PcaModel, ScoreScratch};

/// Correlated calibration data with `m` variables driven by 2 latents.
fn calibration(n: usize, m: usize, seed: u64) -> Matrix {
    let mut rng = GaussianSampler::seed_from(seed);
    let mut x = Matrix::zeros(n, m);
    for r in 0..n {
        let t1 = rng.next_gaussian();
        let t2 = rng.next_gaussian();
        for c in 0..m {
            let w1 = ((c * 3 + 1) % 7) as f64 / 7.0 - 0.5;
            let w2 = ((c * 5 + 2) % 11) as f64 / 11.0 - 0.5;
            x.set(r, c, w1 * t1 + w2 * t2 + 0.1 * rng.next_gaussian());
        }
    }
    x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pca_explained_variance_grows_with_components(seed in 0u64..50, a in 1usize..4) {
        let x = calibration(300, 5, seed);
        let m1 = PcaModel::fit(&x, ComponentSelection::Fixed(a)).unwrap();
        let m2 = PcaModel::fit(&x, ComponentSelection::Fixed(a + 1)).unwrap();
        prop_assert!(m2.explained_variance() >= m1.explained_variance() - 1e-12);
    }

    #[test]
    fn statistics_are_invariant_to_observation_scaling_of_model(seed in 0u64..50) {
        // Scoring the same raw observation through the same model twice is
        // deterministic; T2 and SPE are finite and non-negative for any
        // finite input.
        let x = calibration(300, 5, seed);
        let model = PcaModel::fit(&x, ComponentSelection::Fixed(2)).unwrap();
        let obs = [1.0, -2.0, 0.5, 7.0, -3.0];
        let (t2a, spea) = observation_statistics(&model, &obs).unwrap();
        let (t2b, speb) = observation_statistics(&model, &obs).unwrap();
        prop_assert_eq!(t2a, t2b);
        prop_assert_eq!(spea, speb);
        prop_assert!(t2a >= 0.0 && spea >= 0.0);
    }

    #[test]
    fn contributions_decompose_statistics(seed in 0u64..50, scale in -5.0..5.0f64) {
        let x = calibration(300, 5, seed);
        let model = PcaModel::fit(&x, ComponentSelection::Fixed(2)).unwrap();
        let obs = [scale, -scale, 2.0 * scale, 0.1, -0.7];
        let (t2, spe) = observation_statistics(&model, &obs).unwrap();
        let ct2: f64 = t2_contributions(&model, &obs).unwrap().iter().sum();
        let cspe: f64 = spe_contributions(&model, &obs).unwrap().iter().sum();
        prop_assert!((ct2 - t2).abs() < 1e-8 * (1.0 + t2));
        prop_assert!((cspe - spe).abs() < 1e-8 * (1.0 + spe));
    }

    #[test]
    fn omeda_is_linear_in_dummy_scaling(seed in 0u64..30) {
        // Scaling the dummy vector by a positive constant scales the
        // oMEDA vector by the same constant (the 1/||d|| normalization
        // divides once, the sums scale once each; net effect: linear).
        let x = calibration(300, 5, seed);
        let model = PcaModel::fit(&x, ComponentSelection::Fixed(2)).unwrap();
        let block = calibration(40, 5, seed + 1000);
        let d1 = vec![1.0; 40];
        let d2 = vec![2.0; 40];
        let v1 = omeda(&block, &d1, &model).unwrap();
        let v2 = omeda(&block, &d2, &model).unwrap();
        for (a, b) in v1.iter().zip(&v2) {
            prop_assert!((2.0 * a - b).abs() < 1e-6 * (1.0 + b.abs()), "a={a} b={b}");
        }
    }

    #[test]
    fn omeda_sign_flips_with_dummy_sign(seed in 0u64..30) {
        let x = calibration(300, 5, seed);
        let model = PcaModel::fit(&x, ComponentSelection::Fixed(2)).unwrap();
        let block = calibration(40, 5, seed + 2000);
        let dpos = vec![1.0; 40];
        let dneg = vec![-1.0; 40];
        let vp = omeda(&block, &dpos, &model).unwrap();
        let vn = omeda(&block, &dneg, &model).unwrap();
        for (a, b) in vp.iter().zip(&vn) {
            prop_assert!((a + b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn batched_scoring_is_bit_identical_to_scalar(seed in 0u64..40, n in 1usize..60) {
        // The batched hot path (score_dataset_into) must reproduce the
        // scalar per-observation path bit for bit — not approximately:
        // detector decisions, chart digests and fleet reports all hinge
        // on exact equality of the statistic series.
        let x = calibration(300, 5, seed);
        let model = MspcModel::fit(&x, MspcConfig::default()).unwrap();
        let block = calibration(n, 5, seed + 7000);

        let mut scratch = ScoreScratch::new();
        model.score_dataset_into(&block, &mut scratch).unwrap();
        prop_assert_eq!(scratch.t2().len(), n);

        for r in 0..n {
            let s = model.score(block.row(r)).unwrap();
            prop_assert_eq!(s.t2.to_bits(), scratch.t2()[r].to_bits());
            prop_assert_eq!(s.spe.to_bits(), scratch.spe()[r].to_bits());
            let (t2, spe) = observation_statistics(model.pca(), block.row(r)).unwrap();
            prop_assert_eq!(t2.to_bits(), scratch.t2()[r].to_bits());
            prop_assert_eq!(spe.to_bits(), scratch.spe()[r].to_bits());
        }

        // The allocating convenience wrapper rides the same path.
        let (t2v, spev) = model.score_dataset(&block).unwrap();
        for r in 0..n {
            prop_assert_eq!(t2v[r].to_bits(), scratch.t2()[r].to_bits());
            prop_assert_eq!(spev[r].to_bits(), scratch.spe()[r].to_bits());
        }
    }

    #[test]
    fn scratch_reuse_across_models_matches_fresh(seed in 0u64..30, n1 in 1usize..40, n2 in 1usize..40) {
        // One scratch reused across models of different widths and blocks
        // of different heights must give the same bits as fresh scratches:
        // stale buffer contents may never leak into results.
        let ma = MspcModel::fit(&calibration(300, 5, seed), MspcConfig::default()).unwrap();
        let mb = MspcModel::fit(&calibration(300, 8, seed + 1), MspcConfig::default()).unwrap();
        let block_a = calibration(n1, 5, seed + 100);
        let block_b = calibration(n2, 8, seed + 200);

        let mut fresh_a = ScoreScratch::new();
        ma.score_dataset_into(&block_a, &mut fresh_a).unwrap();
        let mut fresh_b = ScoreScratch::new();
        mb.score_dataset_into(&block_b, &mut fresh_b).unwrap();

        let mut reused = ScoreScratch::new();
        ma.score_dataset_into(&block_a, &mut reused).unwrap();
        mb.score_dataset_into(&block_b, &mut reused).unwrap();
        for r in 0..n2 {
            prop_assert_eq!(reused.t2()[r].to_bits(), fresh_b.t2()[r].to_bits());
            prop_assert_eq!(reused.spe()[r].to_bits(), fresh_b.spe()[r].to_bits());
        }
        ma.score_dataset_into(&block_a, &mut reused).unwrap();
        for r in 0..n1 {
            prop_assert_eq!(reused.t2()[r].to_bits(), fresh_a.t2()[r].to_bits());
            prop_assert_eq!(reused.spe()[r].to_bits(), fresh_a.spe()[r].to_bits());
        }
    }

    #[test]
    fn empirical_limits_are_ordered(seed in 0u64..50) {
        let x = calibration(400, 5, seed);
        let model = MspcModel::fit(&x, MspcConfig::default()).unwrap();
        let l = model.limits();
        prop_assert!(l.t2_99 >= l.t2_95);
        prop_assert!(l.spe_99 >= l.spe_95);
        prop_assert!(l.t2_95 > 0.0 && l.spe_95 > 0.0);
    }

    #[test]
    fn detector_never_fires_below_limits(n in 10usize..200) {
        let limits = ControlLimits { t2_95: 5.0, t2_99: 10.0, spe_95: 0.5, spe_99: 1.0 };
        let mut det = ConsecutiveDetector::new(limits, DetectorConfig::default());
        for k in 0..n {
            let fired = det.update(k as f64, 9.9, 0.99);
            prop_assert!(fired.is_none());
        }
        prop_assert!(det.events().is_empty());
    }

    #[test]
    fn detector_fires_exactly_once_per_stretch(len in 3usize..50) {
        let limits = ControlLimits { t2_95: 5.0, t2_99: 10.0, spe_95: 0.5, spe_99: 1.0 };
        let mut det = ConsecutiveDetector::new(limits, DetectorConfig::default());
        for k in 0..len {
            det.update(k as f64, 20.0, 0.0);
        }
        prop_assert_eq!(det.events().len(), 1);
        let e = det.events()[0];
        prop_assert_eq!(e.first_violation, 0);
        prop_assert_eq!(e.detected_at, 2);
    }

    #[test]
    fn jackson_mudholkar_limit_is_monotone_in_alpha(l1 in 0.01..2.0f64, l2 in 0.01..2.0f64) {
        let eig = [l1, l2];
        let a95 = ControlLimits::spe_theoretical(&eig, 0.95).unwrap();
        let a99 = ControlLimits::spe_theoretical(&eig, 0.99).unwrap();
        prop_assert!(a99 > a95, "a95={a95} a99={a99}");
    }

    #[test]
    fn t2_limit_monotone_in_confidence_and_components(n in 30usize..500, a in 1usize..8) {
        if n > a + 2 {
            let l95 = ControlLimits::t2_theoretical(n, a, 0.95).unwrap();
            let l99 = ControlLimits::t2_theoretical(n, a, 0.99).unwrap();
            prop_assert!(l99 > l95);
            let l95_more = ControlLimits::t2_theoretical(n, a + 1, 0.95);
            if let Ok(lm) = l95_more {
                prop_assert!(lm > l95, "more components -> larger limit");
            }
        }
    }
}
