//! Atomic file writes for TPB artifacts.
//!
//! Every persisted TPB file in the workspace — calibrated monitors,
//! scenario captures, fleet checkpoints, model-store entries — must be
//! written through [`write_atomic`]. A plain `std::fs::write` can be
//! interrupted mid-write (crash, kill, full disk), leaving a torn file
//! that later fails to decode as a `Format` error instead of simply not
//! existing; writing to a unique sibling temp file and renaming it over
//! the destination makes the file appear all-or-nothing.
//!
//! The temp name embeds the process id and a process-wide counter, so
//! two concurrent saves targeting the same destination — or two files
//! sharing a stem in one directory — never clobber each other's temp
//! file mid-save (the old `path.with_extension("tmp")` scheme did).

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide discriminator for temp names; combined with the pid it
/// makes every temp path unique even across concurrent writers.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The unique sibling temp path for a write targeting `path`.
fn temp_sibling(path: &Path) -> PathBuf {
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let name = path
        .file_name()
        .map_or_else(|| "tpb".to_string(), |n| n.to_string_lossy().into_owned());
    path.with_file_name(format!(".{name}.{pid}.{seq}.tmp"))
}

/// Writes `bytes` to `path` atomically: the bytes land in a unique
/// sibling temp file (same directory, so the final rename never crosses
/// a filesystem), are flushed to disk, and the temp file is renamed over
/// `path`. Readers observe either the previous file or the complete new
/// one — never a torn prefix. Missing parent directories are created.
///
/// # Errors
///
/// Returns the underlying [`io::Error`]; on failure the temp file is
/// removed and `path` is left as it was.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = temp_sibling(path);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        // Flush file contents before the rename publishes them; without
        // this a power loss could rename an empty inode into place.
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(test: &str) -> PathBuf {
        std::env::temp_dir().join(format!("temspc_persist_atomic_{test}"))
    }

    #[test]
    fn writes_and_replaces_content() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("nested").join("file.tpb");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer payload");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn leaves_no_temp_files_behind() {
        let dir = tmp_dir("clean");
        let path = dir.join("file.tpb");
        write_atomic(&path, b"payload").unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["file.tpb".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_to_shared_stems_never_collide() {
        let dir = tmp_dir("concurrent");
        // Two destinations sharing the file stem, hammered from several
        // threads: under the old `with_extension("tmp")` scheme their
        // temp files collided; unique siblings keep every write intact.
        let a = dir.join("campaign.tpb");
        let b = dir.join("campaign.cap");
        std::thread::scope(|s| {
            for round in 0..4u8 {
                for path in [&a, &b] {
                    s.spawn(move || {
                        let payload = vec![round; 4096];
                        write_atomic(path, &payload).unwrap();
                    });
                }
            }
        });
        for path in [&a, &b] {
            let bytes = std::fs::read(path).unwrap();
            assert_eq!(bytes.len(), 4096);
            // Whole-file consistency: all bytes from one writer.
            assert!(bytes.iter().all(|x| *x == bytes[0]));
        }
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 2, "stray temp files left behind: {names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
