//! The TPB deserializer.

use serde::de::{self, DeserializeSeed, Visitor};

use crate::error::PersistError;
use crate::Tag;

/// Deserializes a value from TPB bytes, requiring the whole buffer to be
/// consumed.
///
/// # Errors
///
/// Returns [`PersistError`] on truncated/corrupted input, tag mismatches
/// or trailing bytes.
pub fn from_bytes<'de, T: de::Deserialize<'de>>(bytes: &'de [u8]) -> Result<T, PersistError> {
    let mut de = Deserializer::new(bytes);
    let value = T::deserialize(&mut de)?;
    if !de.is_empty() {
        return Err(PersistError::TrailingBytes(de.remaining()));
    }
    Ok(value)
}

/// A serde deserializer reading the TPB format from a byte slice.
#[derive(Debug)]
pub struct Deserializer<'de> {
    input: &'de [u8],
}

impl<'de> Deserializer<'de> {
    /// Creates a deserializer over `input`.
    pub fn new(input: &'de [u8]) -> Self {
        Deserializer { input }
    }

    /// Whether all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.input.is_empty()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len()
    }

    fn take(&mut self, n: usize) -> Result<&'de [u8], PersistError> {
        if self.input.len() < n {
            return Err(PersistError::UnexpectedEof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn byte(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn peek_tag(&self) -> Result<Tag, PersistError> {
        let b = *self.input.first().ok_or(PersistError::UnexpectedEof)?;
        Tag::from_byte(b).ok_or(PersistError::UnknownTag(b))
    }

    fn expect_tag(&mut self, expected: Tag) -> Result<(), PersistError> {
        let b = self.byte()?;
        let tag = Tag::from_byte(b).ok_or(PersistError::UnknownTag(b))?;
        if tag != expected {
            return Err(PersistError::TagMismatch {
                expected: expected.name(),
                found: tag.name(),
            });
        }
        Ok(())
    }

    fn u32_raw(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64_value(&mut self) -> Result<u64, PersistError> {
        self.expect_tag(Tag::U64)?;
        let b = self.take(8)?;
        Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    fn i64_value(&mut self) -> Result<i64, PersistError> {
        self.expect_tag(Tag::I64)?;
        let b = self.take(8)?;
        Ok(i64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    fn str_value(&mut self) -> Result<&'de str, PersistError> {
        self.expect_tag(Tag::Str)?;
        let len = self.u32_raw()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| PersistError::InvalidUtf8)
    }

    fn seq_len(&mut self) -> Result<usize, PersistError> {
        self.expect_tag(Tag::Seq)?;
        Ok(self.u32_raw()? as usize)
    }
}

macro_rules! deserialize_signed {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, PersistError> {
            let v = self.i64_value()?;
            let narrowed: $ty = v.try_into().map_err(|_| PersistError::IntegerOverflow)?;
            visitor.$visit(narrowed)
        }
    };
}

macro_rules! deserialize_unsigned {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, PersistError> {
            let v = self.u64_value()?;
            let narrowed: $ty = v.try_into().map_err(|_| PersistError::IntegerOverflow)?;
            visitor.$visit(narrowed)
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
    type Error = PersistError;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, PersistError> {
        // The format is tagged, so limited self-description is possible.
        match self.peek_tag()? {
            Tag::Unit => self.deserialize_unit(visitor),
            Tag::Bool => self.deserialize_bool(visitor),
            Tag::U64 => self.deserialize_u64(visitor),
            Tag::I64 => self.deserialize_i64(visitor),
            Tag::F64 => self.deserialize_f64(visitor),
            Tag::F32 => self.deserialize_f32(visitor),
            Tag::Char => self.deserialize_char(visitor),
            Tag::Str => self.deserialize_str(visitor),
            Tag::Bytes => self.deserialize_byte_buf(visitor),
            Tag::None | Tag::Some => self.deserialize_option(visitor),
            Tag::Seq => self.deserialize_seq(visitor),
            Tag::Map => self.deserialize_map(visitor),
            Tag::Variant => Err(PersistError::Message(
                "cannot deserialize enum without type information".into(),
            )),
        }
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, PersistError> {
        self.expect_tag(Tag::Bool)?;
        visitor.visit_bool(self.byte()? != 0)
    }

    deserialize_signed!(deserialize_i8, visit_i8, i8);
    deserialize_signed!(deserialize_i16, visit_i16, i16);
    deserialize_signed!(deserialize_i32, visit_i32, i32);

    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, PersistError> {
        let v = self.i64_value()?;
        visitor.visit_i64(v)
    }

    deserialize_unsigned!(deserialize_u8, visit_u8, u8);
    deserialize_unsigned!(deserialize_u16, visit_u16, u16);
    deserialize_unsigned!(deserialize_u32, visit_u32, u32);

    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, PersistError> {
        let v = self.u64_value()?;
        visitor.visit_u64(v)
    }

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, PersistError> {
        self.expect_tag(Tag::F32)?;
        let b = self.take(4)?;
        visitor.visit_f32(f32::from_be_bytes(b.try_into().expect("4 bytes")))
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, PersistError> {
        self.expect_tag(Tag::F64)?;
        let b = self.take(8)?;
        visitor.visit_f64(f64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, PersistError> {
        self.expect_tag(Tag::Char)?;
        let scalar = self.u32_raw()?;
        let c = char::from_u32(scalar).ok_or(PersistError::InvalidChar(scalar))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, PersistError> {
        visitor.visit_borrowed_str(self.str_value()?)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, PersistError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, PersistError> {
        self.expect_tag(Tag::Bytes)?;
        let len = self.u32_raw()? as usize;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, PersistError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, PersistError> {
        match self.peek_tag()? {
            Tag::None => {
                self.expect_tag(Tag::None)?;
                visitor.visit_none()
            }
            Tag::Some => {
                self.expect_tag(Tag::Some)?;
                visitor.visit_some(self)
            }
            other => Err(PersistError::TagMismatch {
                expected: "option",
                found: other.name(),
            }),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, PersistError> {
        self.expect_tag(Tag::Unit)?;
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, PersistError> {
        self.deserialize_unit(visitor)
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, PersistError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, PersistError> {
        let len = self.seq_len()?;
        visitor.visit_seq(SeqAccess {
            de: self,
            left: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, PersistError> {
        self.deserialize_seq(visitor)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, PersistError> {
        self.deserialize_seq(visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, PersistError> {
        self.expect_tag(Tag::Map)?;
        let len = self.u32_raw()? as usize;
        visitor.visit_map(MapAccess {
            de: self,
            left: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, PersistError> {
        let len = self.seq_len()?;
        if len != fields.len() {
            return Err(PersistError::Message(format!(
                "struct field count mismatch: encoded {len}, expected {}",
                fields.len()
            )));
        }
        visitor.visit_seq(SeqAccess {
            de: self,
            left: len,
        })
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, PersistError> {
        self.expect_tag(Tag::Variant)?;
        let index = self.u32_raw()?;
        visitor.visit_enum(EnumAccess { de: self, index })
    }

    fn deserialize_identifier<V: Visitor<'de>>(
        self,
        _visitor: V,
    ) -> Result<V::Value, PersistError> {
        Err(PersistError::Message(
            "TPB encodes fields positionally; identifiers are not stored".into(),
        ))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(
        self,
        visitor: V,
    ) -> Result<V::Value, PersistError> {
        self.deserialize_any(visitor)
    }
}

struct SeqAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    left: usize,
}

impl<'de> de::SeqAccess<'de> for SeqAccess<'_, 'de> {
    type Error = PersistError;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, PersistError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct MapAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    left: usize,
}

impl<'de> de::MapAccess<'de> for MapAccess<'_, 'de> {
    type Error = PersistError;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, PersistError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, PersistError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    index: u32,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = PersistError;
    type Variant = VariantAccess<'a, 'de>;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), PersistError> {
        let index = self.index;
        let value = seed.deserialize(de::value::U32Deserializer::new(index))?;
        Ok((value, VariantAccess { de: self.de }))
    }
}

struct VariantAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'de> de::VariantAccess<'de> for VariantAccess<'_, 'de> {
    type Error = PersistError;

    fn unit_variant(self) -> Result<(), PersistError> {
        self.de.expect_tag(Tag::Unit)
    }

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, PersistError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, PersistError> {
        de::Deserializer::deserialize_seq(self.de, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, PersistError> {
        de::Deserializer::deserialize_struct(self.de, "variant", fields, visitor)
    }
}
