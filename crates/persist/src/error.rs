//! Error type of the TPB format.

use std::fmt;

/// Errors produced while encoding or decoding TPB data.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// A free-form message from serde (required by the `ser::Error` /
    /// `de::Error` traits).
    Message(String),
    /// The input ended before the value was complete.
    UnexpectedEof,
    /// An unknown type tag was encountered.
    UnknownTag(u8),
    /// A different type tag was expected.
    TagMismatch {
        /// Tag the decoder expected.
        expected: &'static str,
        /// Tag actually found.
        found: &'static str,
    },
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// A char value was out of range.
    InvalidChar(u32),
    /// An integer did not fit the requested width.
    IntegerOverflow,
    /// Bytes remained after the top-level value was decoded.
    TrailingBytes(usize),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Message(m) => f.write_str(m),
            PersistError::UnexpectedEof => write!(f, "unexpected end of input"),
            PersistError::UnknownTag(b) => write!(f, "unknown type tag 0x{b:02x}"),
            PersistError::TagMismatch { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            PersistError::InvalidUtf8 => write!(f, "string is not valid UTF-8"),
            PersistError::InvalidChar(c) => write!(f, "invalid char scalar 0x{c:08x}"),
            PersistError::IntegerOverflow => write!(f, "integer does not fit requested width"),
            PersistError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for PersistError {}

impl serde::ser::Error for PersistError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        PersistError::Message(msg.to_string())
    }
}

impl serde::de::Error for PersistError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        PersistError::Message(msg.to_string())
    }
}
