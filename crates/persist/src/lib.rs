//! A compact, tagged binary serialization format for the `temspc`
//! workspace ("TPB": temspc binary).
//!
//! Calibrating the dual-level MSPC monitor at paper scale takes minutes of
//! simulation; a deployed detector loads a *persisted* calibration
//! instead. `serde` defines the data model but no wire format, and the
//! workspace's dependency policy does not include a format crate — so
//! this crate implements one: a byte-oriented, deterministic,
//! tag-prefixed encoding of the serde data model.
//!
//! Properties:
//!
//! * **Tagged** — every value carries a 1-byte type tag, so decoding a
//!   mismatched or corrupted buffer fails fast with a precise error
//!   instead of misinterpreting bytes.
//! * **Deterministic** — the same value always encodes to the same bytes
//!   (no map ordering issues arise; maps are encoded in iteration order).
//! * **Self-contained** — fixed-width big-endian integers, IEEE 754
//!   floats, UTF-8 strings.
//!
//! # Example
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Calibration {
//!     name: String,
//!     limits: Vec<f64>,
//! }
//!
//! let value = Calibration { name: "controller".into(), limits: vec![47.7, 12.3] };
//! let bytes = temspc_persist::to_bytes(&value).unwrap();
//! let back: Calibration = temspc_persist::from_bytes(&bytes).unwrap();
//! assert_eq!(back, value);
//! ```

#![warn(missing_docs)]

mod atomic;
mod de;
mod error;
mod ser;

pub use atomic::write_atomic;
pub use de::{from_bytes, Deserializer};
pub use error::PersistError;
pub use ser::{to_bytes, Serializer};

/// Type tags of the wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum Tag {
    Unit = 0x01,
    Bool = 0x02,
    U64 = 0x03,
    I64 = 0x04,
    F64 = 0x05,
    Str = 0x06,
    Bytes = 0x07,
    None = 0x08,
    Some = 0x09,
    Seq = 0x0A,
    Map = 0x0B,
    Variant = 0x0C,
    F32 = 0x0D,
    Char = 0x0E,
}

impl Tag {
    pub(crate) fn from_byte(b: u8) -> Option<Tag> {
        Some(match b {
            0x01 => Tag::Unit,
            0x02 => Tag::Bool,
            0x03 => Tag::U64,
            0x04 => Tag::I64,
            0x05 => Tag::F64,
            0x06 => Tag::Str,
            0x07 => Tag::Bytes,
            0x08 => Tag::None,
            0x09 => Tag::Some,
            0x0A => Tag::Seq,
            0x0B => Tag::Map,
            0x0C => Tag::Variant,
            0x0D => Tag::F32,
            0x0E => Tag::Char,
            _ => return None,
        })
    }

    pub(crate) fn name(self) -> &'static str {
        match self {
            Tag::Unit => "unit",
            Tag::Bool => "bool",
            Tag::U64 => "u64",
            Tag::I64 => "i64",
            Tag::F64 => "f64",
            Tag::Str => "str",
            Tag::Bytes => "bytes",
            Tag::None => "none",
            Tag::Some => "some",
            Tag::Seq => "seq",
            Tag::Map => "map",
            Tag::Variant => "variant",
            Tag::F32 => "f32",
            Tag::Char => "char",
        }
    }
}
