//! The TPB serializer.

use serde::ser::{self, Serialize};

use crate::error::PersistError;
use crate::Tag;

/// Serializes a value to TPB bytes.
///
/// # Errors
///
/// Returns [`PersistError`] if the value's `Serialize` implementation
/// fails (the format itself accepts the whole serde data model).
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, PersistError> {
    let mut serializer = Serializer::new();
    value.serialize(&mut serializer)?;
    Ok(serializer.into_bytes())
}

/// A serde serializer writing the TPB format into an in-memory buffer.
#[derive(Debug, Default)]
pub struct Serializer {
    out: Vec<u8>,
}

impl Serializer {
    /// Creates an empty serializer.
    pub fn new() -> Self {
        Serializer { out: Vec::new() }
    }

    /// Consumes the serializer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }

    fn tag(&mut self, tag: Tag) {
        self.out.push(tag as u8);
    }

    fn u32_raw(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }
}

impl<'a> ser::Serializer for &'a mut Serializer {
    type Ok = ();
    type Error = PersistError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), PersistError> {
        self.tag(Tag::Bool);
        self.out.push(v as u8);
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), PersistError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<(), PersistError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<(), PersistError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result<(), PersistError> {
        self.tag(Tag::I64);
        self.out.extend_from_slice(&v.to_be_bytes());
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<(), PersistError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result<(), PersistError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result<(), PersistError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u64(self, v: u64) -> Result<(), PersistError> {
        self.tag(Tag::U64);
        self.out.extend_from_slice(&v.to_be_bytes());
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), PersistError> {
        self.tag(Tag::F32);
        self.out.extend_from_slice(&v.to_be_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), PersistError> {
        self.tag(Tag::F64);
        self.out.extend_from_slice(&v.to_be_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), PersistError> {
        self.tag(Tag::Char);
        self.u32_raw(v as u32);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), PersistError> {
        self.tag(Tag::Str);
        self.u32_raw(v.len() as u32);
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), PersistError> {
        self.tag(Tag::Bytes);
        self.u32_raw(v.len() as u32);
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), PersistError> {
        self.tag(Tag::None);
        Ok(())
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), PersistError> {
        self.tag(Tag::Some);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), PersistError> {
        self.tag(Tag::Unit);
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), PersistError> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), PersistError> {
        self.tag(Tag::Variant);
        self.u32_raw(variant_index);
        self.serialize_unit()
    }

    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), PersistError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), PersistError> {
        self.tag(Tag::Variant);
        self.u32_raw(variant_index);
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Compound<'a>, PersistError> {
        let len = len.ok_or_else(|| {
            PersistError::Message("TPB requires sequence lengths up front".into())
        })?;
        self.tag(Tag::Seq);
        self.u32_raw(len as u32);
        Ok(Compound { ser: self })
    }

    fn serialize_tuple(self, len: usize) -> Result<Compound<'a>, PersistError> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, PersistError> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, PersistError> {
        self.tag(Tag::Variant);
        self.u32_raw(variant_index);
        self.serialize_seq(Some(len))
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Compound<'a>, PersistError> {
        let len =
            len.ok_or_else(|| PersistError::Message("TPB requires map lengths up front".into()))?;
        self.tag(Tag::Map);
        self.u32_raw(len as u32);
        Ok(Compound { ser: self })
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, PersistError> {
        // Structs are positional sequences of their fields.
        self.serialize_seq(Some(len))
    }

    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, PersistError> {
        self.serialize_tuple_variant(name, variant_index, variant, len)
    }
}

/// Compound-serialization state shared by all container kinds.
#[derive(Debug)]
pub struct Compound<'a> {
    ser: &'a mut Serializer,
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = PersistError;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), PersistError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), PersistError> {
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = PersistError;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), PersistError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), PersistError> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = PersistError;

    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), PersistError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), PersistError> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = PersistError;

    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), PersistError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), PersistError> {
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = PersistError;

    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), PersistError> {
        key.serialize(&mut *self.ser)
    }
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), PersistError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), PersistError> {
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = PersistError;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), PersistError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), PersistError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = PersistError;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), PersistError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), PersistError> {
        Ok(())
    }
}
