//! Round-trip and robustness tests of the TPB format.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use temspc_persist::{from_bytes, to_bytes, PersistError};

#[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
enum Mode {
    Off,
    Fixed(u32),
    Scheduled { start: f64, gain: f64 },
}

#[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
struct Nested {
    name: String,
    values: Vec<f64>,
    tags: BTreeMap<String, i32>,
    mode: Mode,
    maybe: Option<Box<Nested>>,
    flag: bool,
    tuple: (u8, i64, f64),
}

fn sample() -> Nested {
    let mut tags = BTreeMap::new();
    tags.insert("alpha".into(), -3);
    tags.insert("beta".into(), 99);
    Nested {
        name: "calibration".into(),
        values: vec![1.5, -2.25, f64::MAX, f64::MIN_POSITIVE, 0.0],
        tags,
        mode: Mode::Scheduled {
            start: 10.0,
            gain: -0.5,
        },
        maybe: Some(Box::new(Nested {
            name: String::new(),
            values: vec![],
            tags: BTreeMap::new(),
            mode: Mode::Off,
            maybe: None,
            flag: false,
            tuple: (0, -1, 2.0),
        })),
        flag: true,
        tuple: (255, i64::MIN, f64::NEG_INFINITY),
    }
}

#[test]
fn complex_struct_roundtrips() {
    let value = sample();
    let bytes = to_bytes(&value).unwrap();
    let back: Nested = from_bytes(&bytes).unwrap();
    assert_eq!(back, value);
}

#[test]
fn all_enum_variants_roundtrip() {
    for mode in [
        Mode::Off,
        Mode::Fixed(42),
        Mode::Scheduled {
            start: 1.0,
            gain: 2.0,
        },
    ] {
        let bytes = to_bytes(&mode).unwrap();
        let back: Mode = from_bytes(&bytes).unwrap();
        assert_eq!(back, mode);
    }
}

#[test]
fn nan_roundtrips_as_nan() {
    let bytes = to_bytes(&f64::NAN).unwrap();
    let back: f64 = from_bytes(&bytes).unwrap();
    assert!(back.is_nan());
}

#[test]
fn truncated_input_fails_cleanly() {
    let bytes = to_bytes(&sample()).unwrap();
    for cut in 0..bytes.len() {
        let r: Result<Nested, _> = from_bytes(&bytes[..cut]);
        assert!(r.is_err(), "prefix of {cut} bytes decoded successfully");
    }
}

#[test]
fn trailing_bytes_rejected() {
    let mut bytes = to_bytes(&1u64).unwrap();
    bytes.push(0xFF);
    let r: Result<u64, _> = from_bytes(&bytes);
    assert_eq!(r, Err(PersistError::TrailingBytes(1)));
}

#[test]
fn type_confusion_is_detected() {
    let bytes = to_bytes(&"hello".to_string()).unwrap();
    let r: Result<u64, _> = from_bytes(&bytes);
    assert!(matches!(r, Err(PersistError::TagMismatch { .. })), "{r:?}");
}

#[test]
fn integer_narrowing_is_checked() {
    let bytes = to_bytes(&300u64).unwrap();
    let r: Result<u8, _> = from_bytes(&bytes);
    assert_eq!(r, Err(PersistError::IntegerOverflow));
    let ok: u16 = from_bytes(&bytes).unwrap();
    assert_eq!(ok, 300);
}

#[test]
fn struct_field_count_mismatch_is_detected() {
    #[derive(Serialize)]
    struct Two {
        a: u8,
        b: u8,
    }
    #[derive(Deserialize, Debug)]
    struct Three {
        _a: u8,
        _b: u8,
        _c: u8,
    }
    let bytes = to_bytes(&Two { a: 1, b: 2 }).unwrap();
    let r: Result<Three, _> = from_bytes(&bytes);
    assert!(matches!(r, Err(PersistError::Message(_))), "{r:?}");
}

#[test]
fn unknown_tag_is_reported() {
    let r: Result<u64, _> = from_bytes(&[0xEE, 0, 0, 0, 0, 0, 0, 0, 0]);
    assert_eq!(r, Err(PersistError::UnknownTag(0xEE)));
}

proptest! {
    #[test]
    fn u64_roundtrip(v in any::<u64>()) {
        let bytes = to_bytes(&v).unwrap();
        prop_assert_eq!(from_bytes::<u64>(&bytes).unwrap(), v);
    }

    #[test]
    fn i64_roundtrip(v in any::<i64>()) {
        let bytes = to_bytes(&v).unwrap();
        prop_assert_eq!(from_bytes::<i64>(&bytes).unwrap(), v);
    }

    #[test]
    fn f64_roundtrip(v in any::<f64>()) {
        let bytes = to_bytes(&v).unwrap();
        let back: f64 = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn string_roundtrip(v in ".*") {
        let bytes = to_bytes(&v).unwrap();
        prop_assert_eq!(from_bytes::<String>(&bytes).unwrap(), v);
    }

    #[test]
    fn vec_f64_roundtrip(v in prop::collection::vec(any::<f64>(), 0..200)) {
        let bytes = to_bytes(&v).unwrap();
        let back: Vec<f64> = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.len(), v.len());
        for (a, b) in back.iter().zip(&v) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn map_roundtrip(m in prop::collection::btree_map(".{0,8}", any::<i32>(), 0..16)) {
        let bytes = to_bytes(&m).unwrap();
        prop_assert_eq!(from_bytes::<BTreeMap<String, i32>>(&bytes).unwrap(), m);
    }

    #[test]
    fn option_roundtrip(v in prop::option::of(any::<u32>())) {
        let bytes = to_bytes(&v).unwrap();
        prop_assert_eq!(from_bytes::<Option<u32>>(&bytes).unwrap(), v);
    }

    #[test]
    fn corrupted_buffers_never_panic(v in prop::collection::vec(any::<f64>(), 0..20), pos in 0usize..400, byte in any::<u8>()) {
        let mut bytes = to_bytes(&v).unwrap();
        if !bytes.is_empty() {
            let p = pos % bytes.len();
            bytes[p] = byte;
            let _: Result<Vec<f64>, _> = from_bytes(&bytes);
        }
    }

    #[test]
    fn encoding_is_deterministic(v in prop::collection::vec(any::<i64>(), 0..50)) {
        prop_assert_eq!(to_bytes(&v).unwrap(), to_bytes(&v).unwrap());
    }
}
