//! The eight chemical species of the TE-like process.

use serde::{Deserialize, Serialize};

/// Number of chemical components in the process.
pub const N_COMPONENTS: usize = 8;

/// The eight components of the TE process.
///
/// Following Downs & Vogel: A, B and C are light gases (B is inert), D and
/// E are gaseous reactants, F is a by-product and G and H are the liquid
/// products.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Component {
    A,
    B,
    C,
    D,
    E,
    F,
    G,
    H,
}

/// All components in index order.
pub const ALL_COMPONENTS: [Component; N_COMPONENTS] = [
    Component::A,
    Component::B,
    Component::C,
    Component::D,
    Component::E,
    Component::F,
    Component::G,
    Component::H,
];

impl Component {
    /// Zero-based index (A = 0 … H = 7) used throughout the state arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Component from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    pub fn from_index(index: usize) -> Self {
        ALL_COMPONENTS[index]
    }

    /// Molecular weight in kg/kmol (the fictionalized Downs & Vogel values).
    pub fn molecular_weight(self) -> f64 {
        match self {
            Component::A => 2.0,
            Component::B => 25.4,
            Component::C => 28.0,
            Component::D => 32.0,
            Component::E => 46.0,
            Component::F => 48.0,
            Component::G => 62.0,
            Component::H => 76.0,
        }
    }

    /// Liquid molar volume in m³/kmol (used for level calculations).
    ///
    /// Only meaningful for the condensable components D–H; the light gases
    /// get a nominal value used for trace dissolved amounts.
    pub fn liquid_molar_volume(self) -> f64 {
        match self {
            Component::A | Component::B | Component::C => 0.050,
            Component::D => 0.080,
            Component::E => 0.090,
            Component::F => 0.095,
            Component::G => 0.100,
            Component::H => 0.108,
        }
    }

    /// Whether the component condenses appreciably at separator conditions.
    ///
    /// F, G and H are condensable; A, B, C, D and E travel with the gas
    /// loop (D and E are captured only in traces by the separator liquid).
    pub fn is_condensable(self) -> bool {
        matches!(self, Component::F | Component::G | Component::H)
    }

    /// One-letter display name.
    pub fn name(self) -> &'static str {
        match self {
            Component::A => "A",
            Component::B => "B",
            Component::C => "C",
            Component::D => "D",
            Component::E => "E",
            Component::F => "F",
            Component::G => "G",
            Component::H => "H",
        }
    }
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, c) in ALL_COMPONENTS.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(Component::from_index(i), *c);
        }
    }

    #[test]
    fn molecular_weights_increase_from_a_to_h() {
        for w in ALL_COMPONENTS.windows(2) {
            assert!(w[0].molecular_weight() < w[1].molecular_weight());
        }
    }

    #[test]
    fn condensables_are_f_g_h() {
        let cond: Vec<Component> = ALL_COMPONENTS
            .iter()
            .copied()
            .filter(|c| c.is_condensable())
            .collect();
        assert_eq!(cond, vec![Component::F, Component::G, Component::H]);
    }

    #[test]
    fn display_names() {
        assert_eq!(Component::A.to_string(), "A");
        assert_eq!(Component::H.to_string(), "H");
    }
}
