//! The 20 process disturbances (IDV) of the TE-like process.
//!
//! Numbering and semantics follow Downs & Vogel (1993) Table 8. Step
//! disturbances change an exogenous condition instantly; random-variation
//! disturbances widen the amplitude of the corresponding
//! Ornstein–Uhlenbeck exogenous driver; the two "sticking valve"
//! disturbances enable valve stiction; IDV(16)–IDV(20) are the "unknown"
//! disturbances, implemented here as miscellaneous step/random effects so
//! all 20 switches do something.

use serde::{Deserialize, Serialize};

/// Number of modelled disturbances.
pub const N_IDV: usize = 20;

/// One of the 20 TE process disturbances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Disturbance {
    /// IDV(1): A/C feed-ratio step in stream 4 (B composition constant).
    AcFeedRatioStep,
    /// IDV(2): B composition step in stream 4 (A/C ratio constant).
    BCompositionStep,
    /// IDV(3): D feed temperature step (stream 2).
    DFeedTempStep,
    /// IDV(4): reactor cooling-water inlet temperature step.
    ReactorCwTempStep,
    /// IDV(5): condenser cooling-water inlet temperature step.
    CondenserCwTempStep,
    /// IDV(6): loss of A feed (stream 1) — the paper's headline
    /// disturbance.
    AFeedLoss,
    /// IDV(7): C header pressure loss — reduced availability (stream 4).
    CHeaderPressureLoss,
    /// IDV(8): random variation of the A/B/C composition of stream 4.
    FeedCompositionRandom,
    /// IDV(9): random variation of the D feed temperature.
    DFeedTempRandom,
    /// IDV(10): random variation of the C feed (stream 4) temperature.
    CFeedTempRandom,
    /// IDV(11): random variation of the reactor CW inlet temperature.
    ReactorCwTempRandom,
    /// IDV(12): random variation of the condenser CW inlet temperature.
    CondenserCwTempRandom,
    /// IDV(13): slow drift of the reaction kinetics.
    KineticsDrift,
    /// IDV(14): reactor cooling-water valve sticks.
    ReactorCwValveStick,
    /// IDV(15): condenser cooling-water valve sticks.
    CondenserCwValveStick,
    /// IDV(16): unknown — implemented as a stripper steam-supply
    /// pressure disturbance (random).
    SteamSupplyRandom,
    /// IDV(17): unknown — implemented as reactor heat-transfer fouling
    /// drift.
    ReactorFoulingDrift,
    /// IDV(18): unknown — implemented as an E feed temperature step.
    EFeedTempStep,
    /// IDV(19): unknown — implemented as increased friction on several
    /// valves (small stiction everywhere).
    ValveFrictionRandom,
    /// IDV(20): unknown — implemented as a combined slow random walk on
    /// feed header pressures.
    HeaderPressureRandom,
}

/// All disturbances in IDV order (`ALL_IDV[0]` is IDV(1)).
pub const ALL_IDV: [Disturbance; N_IDV] = [
    Disturbance::AcFeedRatioStep,
    Disturbance::BCompositionStep,
    Disturbance::DFeedTempStep,
    Disturbance::ReactorCwTempStep,
    Disturbance::CondenserCwTempStep,
    Disturbance::AFeedLoss,
    Disturbance::CHeaderPressureLoss,
    Disturbance::FeedCompositionRandom,
    Disturbance::DFeedTempRandom,
    Disturbance::CFeedTempRandom,
    Disturbance::ReactorCwTempRandom,
    Disturbance::CondenserCwTempRandom,
    Disturbance::KineticsDrift,
    Disturbance::ReactorCwValveStick,
    Disturbance::CondenserCwValveStick,
    Disturbance::SteamSupplyRandom,
    Disturbance::ReactorFoulingDrift,
    Disturbance::EFeedTempStep,
    Disturbance::ValveFrictionRandom,
    Disturbance::HeaderPressureRandom,
];

impl Disturbance {
    /// 1-based IDV number as in Downs & Vogel.
    pub fn idv_number(self) -> usize {
        ALL_IDV
            .iter()
            .position(|d| *d == self)
            .expect("disturbance present in ALL_IDV")
            + 1
    }

    /// Disturbance from a 1-based IDV number.
    ///
    /// # Panics
    ///
    /// Panics if `number` is 0 or greater than 20.
    pub fn from_idv_number(number: usize) -> Self {
        assert!(
            (1..=N_IDV).contains(&number),
            "IDV number must be in 1..=20"
        );
        ALL_IDV[number - 1]
    }

    /// Whether the disturbance is of the random-variation kind (as opposed
    /// to a step or a valve effect).
    pub fn is_random_variation(self) -> bool {
        matches!(
            self,
            Disturbance::FeedCompositionRandom
                | Disturbance::DFeedTempRandom
                | Disturbance::CFeedTempRandom
                | Disturbance::ReactorCwTempRandom
                | Disturbance::CondenserCwTempRandom
                | Disturbance::KineticsDrift
                | Disturbance::SteamSupplyRandom
                | Disturbance::ReactorFoulingDrift
                | Disturbance::ValveFrictionRandom
                | Disturbance::HeaderPressureRandom
        )
    }
}

/// The set of currently active disturbances, with activation times.
///
/// # Example
///
/// ```
/// use temspc_tesim::{Disturbance, DisturbanceSet};
///
/// let mut idv = DisturbanceSet::new();
/// idv.schedule(Disturbance::AFeedLoss, 10.0); // activates at hour 10
/// assert!(!idv.is_active(Disturbance::AFeedLoss, 9.9));
/// assert!(idv.is_active(Disturbance::AFeedLoss, 10.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DisturbanceSet {
    scheduled: Vec<(Disturbance, f64)>,
}

impl DisturbanceSet {
    /// Creates an empty set (normal operation).
    pub fn new() -> Self {
        DisturbanceSet::default()
    }

    /// Schedules `disturbance` to activate at `start_hour` (and stay on).
    pub fn schedule(&mut self, disturbance: Disturbance, start_hour: f64) {
        self.scheduled.push((disturbance, start_hour));
    }

    /// Whether `disturbance` is active at simulation time `hour`.
    pub fn is_active(&self, disturbance: Disturbance, hour: f64) -> bool {
        self.scheduled
            .iter()
            .any(|(d, t)| *d == disturbance && hour >= *t)
    }

    /// Iterates over the scheduled `(disturbance, start_hour)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(Disturbance, f64)> {
        self.scheduled.iter()
    }

    /// Whether no disturbances are scheduled at all.
    pub fn is_empty(&self) -> bool {
        self.scheduled.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idv_numbering_roundtrip() {
        for n in 1..=N_IDV {
            assert_eq!(Disturbance::from_idv_number(n).idv_number(), n);
        }
    }

    #[test]
    fn idv6_is_a_feed_loss() {
        assert_eq!(Disturbance::from_idv_number(6), Disturbance::AFeedLoss);
    }

    #[test]
    fn random_variation_classification() {
        assert!(Disturbance::FeedCompositionRandom.is_random_variation());
        assert!(!Disturbance::AFeedLoss.is_random_variation());
        assert!(!Disturbance::ReactorCwValveStick.is_random_variation());
        let n_random = ALL_IDV.iter().filter(|d| d.is_random_variation()).count();
        assert_eq!(n_random, 10);
    }

    #[test]
    fn schedule_and_query() {
        let mut set = DisturbanceSet::new();
        assert!(set.is_empty());
        set.schedule(Disturbance::AFeedLoss, 10.0);
        set.schedule(Disturbance::BCompositionStep, 5.0);
        assert!(!set.is_empty());
        assert!(set.is_active(Disturbance::BCompositionStep, 6.0));
        assert!(!set.is_active(Disturbance::AFeedLoss, 6.0));
        assert!(set.is_active(Disturbance::AFeedLoss, 12.0));
        assert!(!set.is_active(Disturbance::DFeedTempStep, 100.0));
    }

    #[test]
    #[should_panic(expected = "IDV number")]
    fn idv_21_panics() {
        Disturbance::from_idv_number(21);
    }
}
