//! A Tennessee-Eastman–like chemical plant simulator.
//!
//! This crate is a from-scratch Rust implementation of a plant in the image
//! of the Tennessee-Eastman (TE) challenge process (Downs & Vogel 1993): a
//! reactor / condenser+separator / stripper / compressor-recycle flowsheet
//! with eight components (A–H), the four TE gas-phase reactions, **41
//! measured variables (XMEAS)**, **12 manipulated variables (XMV)**, **20
//! process disturbances (IDV)** and the TE safety interlocks.
//!
//! It is *TE-like*, not a port of the original Fortran `TEPROB`: the
//! physical constants are chosen so that the steady state approximates the
//! TE base case and — crucially for the DSN 2016 reproduction — so that the
//! qualitative responses match:
//!
//! * `IDV(6)` (loss of A feed) collapses `XMEAS(1)` and eventually trips
//!   the stripper low-level interlock,
//! * closing valve `XMV(3)` produces a nearly identical `XMEAS(1)` trace,
//! * the plant exhibits correlated, noisy normal operation suitable for
//!   PCA-based monitoring (the Krotofil-style randomness model).
//!
//! The main entry point is [`TePlant`]; see also the `temspc-control` crate
//! for the decentralized control layer that keeps it alive.
//!
//! # Example
//!
//! ```
//! use temspc_tesim::{TePlant, PlantConfig};
//!
//! let mut plant = TePlant::new(PlantConfig::default(), 42);
//! let xmv = plant.nominal_xmv();
//! for _ in 0..100 {
//!     plant.step(&xmv).unwrap();
//! }
//! let xmeas = plant.measurements();
//! assert!(xmeas.reactor_pressure() > 2000.0); // kPa, near TE base case
//! ```

#![warn(missing_docs)]

pub mod component;
pub mod disturbance;
pub mod measurement;
pub mod plant;
pub mod reaction;
pub mod shutdown;
pub mod thermo;
pub mod valve;

pub use component::Component;
pub use disturbance::{Disturbance, DisturbanceSet};
pub use measurement::{MeasurementVector, N_XMEAS};
pub use plant::{
    FlowSummary, PlantConfig, PlantError, PlantState, TePlant, N_XMV, SAMPLES_PER_HOUR, STEP_HOURS,
};
pub use shutdown::{InterlockLimits, ShutdownReason};
