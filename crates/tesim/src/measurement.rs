//! The 41 measured variables (XMEAS) of the TE-like process.

use serde::{Deserialize, Serialize};

/// Number of measured variables.
pub const N_XMEAS: usize = 41;

/// Metadata describing one measured variable.
#[derive(Debug, Clone, Copy)]
pub struct MeasurementInfo {
    /// 1-based XMEAS number, as in Downs & Vogel.
    pub number: usize,
    /// Short name.
    pub name: &'static str,
    /// Engineering unit.
    pub unit: &'static str,
    /// Base-case nominal value (TE base case where applicable).
    pub nominal: f64,
    /// Gaussian measurement-noise standard deviation (same unit).
    pub noise_std: f64,
    /// Analyzer sampling period in hours; 0 for continuous measurements.
    pub sampling_period: f64,
}

/// Metadata for all 41 XMEAS, indexed by `number - 1`.
///
/// Nominal values follow the TE base case (Downs & Vogel Table 5-ish);
/// composition nominals follow the base-case stream compositions. Noise
/// standard deviations are roughly 0.5–1.5% of span, in the spirit of the
/// Krotofil randomness model.
pub const XMEAS_INFO: [MeasurementInfo; N_XMEAS] = [
    m(1, "A feed (stream 1)", "kscmh", 3.913, 0.03, 0.0),
    m(2, "D feed (stream 2)", "kg/h", 3379.5, 25.0, 0.0),
    m(3, "E feed (stream 3)", "kg/h", 4187.0, 30.0, 0.0),
    m(4, "A+C feed (stream 4)", "kscmh", 5.1, 0.05, 0.0),
    m(5, "Recycle flow (stream 5)", "kscmh", 31.61, 0.25, 0.0),
    m(6, "Reactor feed rate (stream 6)", "kscmh", 45.27, 0.3, 0.0),
    m(7, "Reactor pressure", "kPa gauge", 2705.0, 6.0, 0.0),
    m(8, "Reactor level", "%", 65.0, 0.5, 0.0),
    m(9, "Reactor temperature", "degC", 120.4, 0.08, 0.0),
    m(10, "Purge rate (stream 9)", "kscmh", 0.751, 0.008, 0.0),
    m(11, "Separator temperature", "degC", 80.11, 0.15, 0.0),
    m(12, "Separator level", "%", 50.0, 0.6, 0.0),
    m(13, "Separator pressure", "kPa gauge", 2642.6, 6.0, 0.0),
    m(
        14,
        "Separator underflow (stream 10)",
        "m3/h",
        20.52,
        0.2,
        0.0,
    ),
    m(15, "Stripper level", "%", 50.0, 0.6, 0.0),
    m(16, "Stripper pressure", "kPa gauge", 2830.2, 8.0, 0.0),
    m(
        17,
        "Stripper underflow (stream 11)",
        "m3/h",
        19.53,
        0.2,
        0.0,
    ),
    m(18, "Stripper temperature", "degC", 65.73, 0.12, 0.0),
    m(19, "Stripper steam flow", "kg/h", 178.4, 2.5, 0.0),
    m(20, "Compressor work", "kW", 392.6, 2.5, 0.0),
    m(
        21,
        "Reactor CW outlet temperature",
        "degC",
        109.85,
        0.1,
        0.0,
    ),
    m(
        22,
        "Separator CW outlet temperature",
        "degC",
        77.89,
        0.1,
        0.0,
    ),
    // Reactor feed analysis (stream 6), sampled every 0.1 h, mol%.
    m(23, "Reactor feed %A", "mol%", 33.0, 0.1, 0.1),
    m(24, "Reactor feed %B", "mol%", 2.79, 0.04, 0.1),
    m(25, "Reactor feed %C", "mol%", 38.07, 0.1, 0.1),
    m(26, "Reactor feed %D", "mol%", 7.01, 0.05, 0.1),
    m(27, "Reactor feed %E", "mol%", 15.71, 0.08, 0.1),
    m(28, "Reactor feed %F", "mol%", 0.5, 0.02, 0.1),
    // Purge gas analysis (stream 9), sampled every 0.1 h, mol%.
    m(29, "Purge %A", "mol%", 33.11, 0.12, 0.1),
    m(30, "Purge %B", "mol%", 3.9, 0.05, 0.1),
    m(31, "Purge %C", "mol%", 40.21, 0.1, 0.1),
    m(32, "Purge %D", "mol%", 2.55, 0.04, 0.1),
    m(33, "Purge %E", "mol%", 15.68, 0.08, 0.1),
    m(34, "Purge %F", "mol%", 0.48, 0.02, 0.1),
    m(35, "Purge %G", "mol%", 2.88, 0.05, 0.1),
    m(36, "Purge %H", "mol%", 1.19, 0.03, 0.1),
    // Product analysis (stream 11), sampled every 0.25 h, mol%.
    m(37, "Product %D", "mol%", 0.01, 0.005, 0.25),
    m(38, "Product %E", "mol%", 0.77, 0.03, 0.25),
    m(39, "Product %F", "mol%", 0.42, 0.02, 0.25),
    m(40, "Product %G", "mol%", 54.56, 0.15, 0.25),
    m(41, "Product %H", "mol%", 44.2, 0.15, 0.25),
];

const fn m(
    number: usize,
    name: &'static str,
    unit: &'static str,
    nominal: f64,
    noise_std: f64,
    sampling_period: f64,
) -> MeasurementInfo {
    MeasurementInfo {
        number,
        name,
        unit,
        nominal,
        noise_std,
        sampling_period,
    }
}

/// A snapshot of all 41 measured variables.
///
/// Access by 1-based XMEAS number via [`MeasurementVector::xmeas`], or with
/// the named convenience getters for the variables the DSN 2016 scenarios
/// focus on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementVector {
    values: Vec<f64>,
}

impl MeasurementVector {
    /// Creates a measurement vector from 41 raw values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != 41`.
    pub fn from_values(values: Vec<f64>) -> Self {
        assert_eq!(values.len(), N_XMEAS, "expected 41 XMEAS values");
        MeasurementVector { values }
    }

    /// Overwrites this vector with 41 raw values, reusing its allocation
    /// (the in-place counterpart of [`MeasurementVector::from_values`]).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != 41`.
    pub fn copy_from_slice(&mut self, values: &[f64]) {
        assert_eq!(values.len(), N_XMEAS, "expected 41 XMEAS values");
        self.values.clear();
        self.values.extend_from_slice(values);
    }

    /// Creates a vector holding the base-case nominal values.
    pub fn nominal() -> Self {
        MeasurementVector {
            values: XMEAS_INFO.iter().map(|i| i.nominal).collect(),
        }
    }

    /// Value of XMEAS(`number`) — `number` is 1-based as in the paper.
    ///
    /// # Panics
    ///
    /// Panics if `number` is 0 or greater than 41.
    pub fn xmeas(&self, number: usize) -> f64 {
        assert!((1..=N_XMEAS).contains(&number), "XMEAS number out of range");
        self.values[number - 1]
    }

    /// All 41 values as a slice (index 0 = XMEAS(1)).
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// A feed flow, XMEAS(1), kscmh.
    pub fn a_feed(&self) -> f64 {
        self.xmeas(1)
    }

    /// Reactor pressure, XMEAS(7), kPa gauge.
    pub fn reactor_pressure(&self) -> f64 {
        self.xmeas(7)
    }

    /// Reactor level, XMEAS(8), percent.
    pub fn reactor_level(&self) -> f64 {
        self.xmeas(8)
    }

    /// Reactor temperature, XMEAS(9), °C.
    pub fn reactor_temperature(&self) -> f64 {
        self.xmeas(9)
    }

    /// Separator level, XMEAS(12), percent.
    pub fn separator_level(&self) -> f64 {
        self.xmeas(12)
    }

    /// Stripper level, XMEAS(15), percent.
    pub fn stripper_level(&self) -> f64 {
        self.xmeas(15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_table_is_consistent() {
        for (i, info) in XMEAS_INFO.iter().enumerate() {
            assert_eq!(info.number, i + 1);
            assert!(info.noise_std >= 0.0);
            assert!(info.sampling_period >= 0.0);
        }
    }

    #[test]
    fn composition_nominals_sum_to_about_100() {
        let feed: f64 = (23..=28).map(|n| XMEAS_INFO[n - 1].nominal).sum();
        // Stream 6 analysis covers A-F only (G, H are trace in the feed).
        assert!((90.0..=101.0).contains(&feed), "feed sum = {feed}");
        let purge: f64 = (29..=36).map(|n| XMEAS_INFO[n - 1].nominal).sum();
        assert!((80.0..=101.0).contains(&purge), "purge sum = {purge}");
        let product: f64 = (37..=41).map(|n| XMEAS_INFO[n - 1].nominal).sum();
        assert!((95.0..=101.0).contains(&product), "product sum = {product}");
    }

    #[test]
    fn nominal_vector_matches_info() {
        let v = MeasurementVector::nominal();
        assert_eq!(v.xmeas(1), 3.913);
        assert_eq!(v.reactor_pressure(), 2705.0);
        assert_eq!(v.xmeas(41), 44.2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn xmeas_zero_panics() {
        MeasurementVector::nominal().xmeas(0);
    }

    #[test]
    #[should_panic(expected = "expected 41")]
    fn wrong_length_panics() {
        MeasurementVector::from_values(vec![0.0; 40]);
    }

    #[test]
    fn named_getters_match_indices() {
        let mut vals = vec![0.0; N_XMEAS];
        vals[0] = 1.0;
        vals[6] = 7.0;
        vals[14] = 15.0;
        let v = MeasurementVector::from_values(vals);
        assert_eq!(v.a_feed(), 1.0);
        assert_eq!(v.reactor_pressure(), 7.0);
        assert_eq!(v.stripper_level(), 15.0);
    }
}
